"""Dataset objects: N-dimensional arrays with three storage layouts.

* ``contiguous`` — one C-ordered buffer in the file; hyperslab reads touch
  only the needed byte runs.
* ``chunked`` — the array is split on a regular chunk grid, each chunk a
  contiguous buffer; reads open only the chunks a selection intersects.
* ``virtual`` — the data live in *other* files (see
  :mod:`repro.hdf5lite.virtual`); reads are delegated to the source files.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.errors import FormatError, ReproError, SelectionError
from repro.hdf5lite import dtype as _dtype
from repro.hdf5lite.attributes import Attributes
from repro.hdf5lite.checksum import (
    ChecksumInfo,
    checksum_info,
    update_chunk_crc,
    update_contiguous_crcs,
    verify_block,
)
from repro.hdf5lite.codecs import CODEC_ATTR, Codec, resolve_codec
from repro.hdf5lite.hyperslab import (
    Hyperslab,
    coalesce_runs,
    contiguous_runs,
    normalize_selection,
    selection_shape,
)
from repro.hdf5lite.virtual import VirtualSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdf5lite.cache import BlockCache
    from repro.hdf5lite.file import File

LAYOUT_CONTIGUOUS = "contiguous"
LAYOUT_CHUNKED = "chunked"
LAYOUT_VIRTUAL = "virtual"


def _chunk_key(coord: Sequence[int]) -> str:
    return ",".join(str(c) for c in coord)


def _strided_chunk_overlap(
    hs: Hyperslab, chunk_start: Sequence[int], chunk_count: Sequence[int]
) -> tuple[tuple[slice, ...], tuple[slice, ...]] | None:
    """Intersect a (possibly strided) selection with one chunk.

    Returns ``(local, vals)`` slices — ``local`` indexes the chunk's own
    array, ``vals`` the caller's value array of shape ``hs.count`` — or
    ``None`` when the selection's lattice misses the chunk entirely.
    """
    local, vals = [], []
    for a, n, st, c0, cn in zip(
        hs.start, hs.count, hs.stride, chunk_start, chunk_count
    ):
        if n == 0:
            return None
        first = max(0, -(-(c0 - a) // st))
        last = min(n - 1, (c0 + cn - 1 - a) // st)
        if first > last:
            return None
        local.append(slice(a + first * st - c0, a + last * st - c0 + 1, st))
        vals.append(slice(first, last + 1))
    return tuple(local), tuple(vals)


_CODEC_UNSET = object()


class Dataset:
    """A dataset inside an hdf5lite file.

    Supports numpy-style basic indexing for reads (``ds[...]``,
    ``ds[2:5, ::3]``) and, for contiguous datasets in writable files,
    hyperslab writes (``ds[2:5] = values``).
    """

    def __init__(self, file: "File", path: str, meta: dict[str, Any]):
        self._file = file
        self.path = path
        self._meta = meta
        self.attrs = Attributes(
            meta.setdefault("attrs", {}),
            on_change=file._mark_dirty,
            writable=file.writable,
        )
        # Attributes copies the dict; rebind so mutations persist into meta.
        self._meta["attrs"] = self.attrs._data
        self._codec_resolved = _CODEC_UNSET

    # -- basic properties ----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self._meta["shape"])

    @property
    def ndim(self) -> int:
        return len(self._meta["shape"])

    @property
    def size(self) -> int:
        return int(np.prod(self._meta["shape"], dtype=np.int64))

    @property
    def dtype(self) -> np.dtype:
        return _dtype.token_dtype(self._meta["dtype"])

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    @property
    def layout(self) -> str:
        return self._meta["layout"]

    @property
    def chunks(self) -> tuple[int, ...] | None:
        if self.layout != LAYOUT_CHUNKED:
            return None
        return tuple(self._meta["chunks"])

    @property
    def codec(self) -> "Codec | None":
        """The per-chunk codec named by the ``repro:codec`` attribute, or
        ``None`` for raw (uncompressed) storage.  Resolved once per
        Dataset object; unknown codec names raise ``FormatError`` at
        first data access, not at open."""
        if self._codec_resolved is _CODEC_UNSET:
            spec = (
                self.attrs.get(CODEC_ATTR)
                if self.layout == LAYOUT_CHUNKED
                else None
            )
            self._codec_resolved = resolve_codec(spec) if spec is not None else None
        return self._codec_resolved

    @property
    def virtual_sources(self) -> list[VirtualSource]:
        if self.layout != LAYOUT_VIRTUAL:
            return []
        return [VirtualSource.from_dict(raw) for raw in self._meta["sources"]]

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.path!r} shape={self.shape} dtype={self.dtype} "
            f"layout={self.layout}>"
        )

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a 0-d dataset")
        return self.shape[0]

    # -- checksums ---------------------------------------------------------------
    def _checksums(self) -> "ChecksumInfo | None":
        """The parsed checksum sidecar when read-side verification applies.

        ``None`` when the dataset carries no sidecar or the file was opened
        with ``verify_checksums=False``.  Parsed once per Dataset object.
        """
        if not self._file.verify_checksums:
            return None
        cache = self._file._crc_cache
        if self.path in cache:
            return cache[self.path]
        info = checksum_info(self)
        cache[self.path] = info
        return info

    def _load_block(
        self, base: int, region_nbytes: int, info: "ChecksumInfo", block_idx: int
    ) -> bytes:
        """Read checksum block ``block_idx`` of the data region, verified."""
        bs = info.block_size
        off = block_idx * bs
        n = min(bs, region_nbytes - off)
        data = self._file._backend.read_at(base + off, n)
        if block_idx < len(info.crcs):
            verify_block(
                self._file.filename, base + off, data, info.crcs[block_idx],
                what=f"block {block_idx}",
            )
        return data

    # -- reading ---------------------------------------------------------------
    def __getitem__(self, selection: object) -> np.ndarray:
        hs, squeeze = normalize_selection(selection, self.shape)
        out = self.read_hyperslab(hs)
        final_shape = selection_shape(hs, squeeze)
        return out.reshape(final_shape)

    def read(self) -> np.ndarray:
        """Read the full dataset."""
        return self.read_hyperslab(Hyperslab.full(self.shape))

    def read_hyperslab(self, hs: Hyperslab) -> np.ndarray:
        """Read a hyperslab; returns an array of shape ``hs.count``."""
        if not hs.within(self.shape):
            raise SelectionError(
                f"hyperslab {hs} outside dataset shape {self.shape}"
            )
        layout = self.layout
        if layout == LAYOUT_CONTIGUOUS:
            return self._read_contiguous(hs)
        if layout == LAYOUT_CHUNKED:
            return self._read_chunked(hs)
        if layout == LAYOUT_VIRTUAL:
            return self._read_virtual(hs)
        raise FormatError(f"unknown dataset layout {layout!r}")

    def _read_contiguous(self, hs: Hyperslab) -> np.ndarray:
        cache = self._file._cache
        if cache is not None and cache.enabled:
            return self._read_contiguous_cached(hs, cache)
        info = self._checksums()
        if info is not None and not info.chunked:
            return self._read_contiguous_verified(hs, info)
        base = int(self._meta["offset"])
        itemsize = self.itemsize
        out = np.empty(hs.size, dtype=self.dtype)
        view = memoryview(out.view(np.uint8)).cast("B")
        cursor = 0
        backend = self._file._backend
        for elem_offset, elem_count in contiguous_runs(hs, self.shape):
            nbytes = elem_count * itemsize
            backend.readinto_at(
                base + elem_offset * itemsize,
                view[cursor : cursor + nbytes],
            )
            cursor += nbytes
        return out.reshape(hs.count)

    def _read_contiguous_verified(self, hs: Hyperslab, info: "ChecksumInfo") -> np.ndarray:
        """Uncached contiguous read with CRC verification.

        Bytes can only be verified at checksum-block granularity, so each
        needed element run is served from whole blocks, each read and
        verified once per call.  Runs arrive in ascending offset order;
        blocks behind the current run are dropped to bound memory.
        """
        base = int(self._meta["offset"])
        itemsize = self.itemsize
        region = self.nbytes
        bs = info.block_size
        out = np.empty(hs.size, dtype=self.dtype)
        view = memoryview(out.view(np.uint8)).cast("B")
        cursor = 0
        blocks: dict[int, bytes] = {}
        for elem_offset, elem_count in contiguous_runs(hs, self.shape):
            lo = elem_offset * itemsize
            hi = lo + elem_count * itemsize
            first = lo // bs
            for stale in [b for b in blocks if b < first]:
                del blocks[stale]
            dest = view[cursor : cursor + (hi - lo)]
            pos = 0
            for b in range(first, (hi - 1) // bs + 1):
                data = blocks.get(b)
                if data is None:
                    data = blocks[b] = self._load_block(base, region, info, b)
                blo = max(lo, b * bs)
                bhi = min(hi, b * bs + len(data))
                dest[pos : pos + (bhi - blo)] = data[blo - b * bs : bhi - b * bs]
                pos += bhi - blo
            cursor += hi - lo
        return out.reshape(hs.count)

    def _page_read(
        self,
        cache: "BlockCache",
        base: int,
        region_nbytes: int,
        rel_offset: int,
        dest: memoryview,
        info: "ChecksumInfo | None" = None,
    ) -> None:
        """Fill ``dest`` with dataset bytes ``[rel_offset, rel_offset+len)``
        via the page cache.

        Pages are ``page_size``-aligned within the dataset's own data
        region (byte 0 = ``base`` in the file), so a page never straddles
        the metadata footer or another dataset.  A missing page costs one
        backend request for the whole page; hits cost nothing.  With a
        checksum sidecar (``info``), a missing page is assembled from
        verified checksum blocks — cache hits are verified-at-admission,
        so the warm path pays no CRC cost.
        """
        backend = self._file._backend
        stats = backend.iostats
        ps = cache.config.page_size
        nbytes = len(dest)
        first = rel_offset // ps
        last = (rel_offset + nbytes - 1) // ps
        for page in range(first, last + 1):
            page_off = page * ps
            page_len = min(ps, region_nbytes - page_off)
            key = (self._file._cache_key, "page", base, page)
            data = cache.get(key, stats)
            if data is None:
                if info is not None:
                    data = self._page_from_blocks(
                        base, region_nbytes, info, page_off, page_len
                    )
                else:
                    buf = bytearray(page_len)
                    backend.readinto_at(base + page_off, memoryview(buf))
                    data = bytes(buf)
                cache.put(key, data, stats)
            lo = max(rel_offset, page_off)
            hi = min(rel_offset + nbytes, page_off + page_len)
            dest[lo - rel_offset : hi - rel_offset] = data[lo - page_off : hi - page_off]

    def _page_from_blocks(
        self,
        base: int,
        region_nbytes: int,
        info: "ChecksumInfo",
        page_off: int,
        page_len: int,
    ) -> bytes:
        """Assemble one cache page from verified checksum blocks.

        With the default configuration (page size == checksum block size,
        both region-aligned) this is exactly one backend read plus one CRC.
        """
        bs = info.block_size
        first = page_off // bs
        last = (page_off + page_len - 1) // bs
        parts = []
        for b in range(first, last + 1):
            data = self._load_block(base, region_nbytes, info, b)
            lo = max(page_off, b * bs)
            hi = min(page_off + page_len, b * bs + len(data))
            parts.append(data[lo - b * bs : hi - b * bs])
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def _read_contiguous_cached(self, hs: Hyperslab, cache: "BlockCache") -> np.ndarray:
        base = int(self._meta["offset"])
        itemsize = self.itemsize
        region_nbytes = self.nbytes
        info = self._checksums()
        if info is not None and info.chunked:
            info = None
        out = np.empty(hs.size, dtype=self.dtype)
        view = memoryview(out.view(np.uint8)).cast("B")
        cursor = 0
        gap_elems = cache.config.coalesce_gap // itemsize
        for span_off, span_count, pieces in coalesce_runs(
            contiguous_runs(hs, self.shape), gap_elems
        ):
            if len(pieces) == 1:
                nbytes = span_count * itemsize
                self._page_read(
                    cache, base, region_nbytes, span_off * itemsize,
                    view[cursor : cursor + nbytes], info,
                )
                cursor += nbytes
                continue
            # Gap-coalesced span: one cached fetch, then scatter the runs.
            scratch = memoryview(bytearray(span_count * itemsize))
            self._page_read(
                cache, base, region_nbytes, span_off * itemsize, scratch, info
            )
            for elem_offset, elem_count in pieces:
                nbytes = elem_count * itemsize
                rel = (elem_offset - span_off) * itemsize
                view[cursor : cursor + nbytes] = scratch[rel : rel + nbytes]
                cursor += nbytes
        return out.reshape(hs.count)

    def _read_chunked(self, hs: Hyperslab) -> np.ndarray:
        chunks = self.chunks
        assert chunks is not None
        codec = self.codec
        info = self._checksums()
        chunk_crcs = info.chunk_crcs if info is not None and info.chunked else None
        out = np.empty(hs.count, dtype=self.dtype)
        if out.size == 0:
            return out
        index: dict[str, int] = self._meta["chunk_index"]
        itemsize = self.itemsize
        backend = self._file._backend
        cache = self._file._cache
        if cache is not None and not cache.enabled:
            cache = None

        # Chunk-grid bounds of the selection *lattice*: the last touched
        # element along each axis sits at start + (count-1)*stride, so a
        # strided selection visits (and pays for) only the chunks its
        # lattice actually lands on.
        lo = [s // c for s, c in zip(hs.start, chunks)]
        hi = [
            (s + (n - 1) * st) // c
            for s, n, st, c in zip(hs.start, hs.count, hs.stride, chunks)
        ]
        coord = list(lo)
        while True:
            chunk_start = tuple(ci * c for ci, c in zip(coord, chunks))
            chunk_count = tuple(
                min(c, dim - cs)
                for c, cs, dim in zip(chunks, chunk_start, self.shape)
            )
            overlap = _strided_chunk_overlap(hs, chunk_start, chunk_count)
            if overlap is not None:
                local, vals = overlap
                ckey = _chunk_key(coord)
                if ckey not in index:
                    raise FormatError(f"missing chunk {ckey} in {self.path}")
                chunk_offset = int(index[ckey])
                crc_expected = (
                    chunk_crcs.get(ckey) if chunk_crcs is not None else None
                )
                crc_what = f"chunk {ckey}"
                chunk_nbytes = (
                    int(np.prod(chunk_count, dtype=np.int64)) * itemsize
                )
                if codec is not None:
                    chunk_arr = self._load_codec_chunk(
                        codec, ckey, chunk_offset, chunk_count,
                        crc_expected, cache,
                    )
                    out[vals] = chunk_arr[local]
                elif cache is not None and chunk_nbytes <= cache.config.byte_budget:
                    # Chunk-granular caching: a miss loads the whole chunk in
                    # one request (run-coalescing for free); later touches of
                    # any part of the chunk are memory copies.
                    key = (self._file._cache_key, "chunk", chunk_offset)
                    raw = cache.get(key, backend.iostats)
                    if raw is None:
                        buf = bytearray(chunk_nbytes)
                        backend.readinto_at(chunk_offset, memoryview(buf))
                        raw = bytes(buf)
                        if crc_expected is not None:
                            verify_block(
                                self._file.filename, chunk_offset, raw,
                                crc_expected, what=crc_what,
                            )
                        cache.put(key, raw, backend.iostats)
                    chunk_arr = np.frombuffer(raw, dtype=self.dtype).reshape(
                        chunk_count
                    )
                    out[vals] = chunk_arr[local]
                elif crc_expected is not None:
                    # Verification needs the whole chunk's bytes; read it
                    # once, verify, slice in memory.
                    raw = backend.read_at(chunk_offset, chunk_nbytes)
                    verify_block(
                        self._file.filename, chunk_offset, raw,
                        crc_expected, what=crc_what,
                    )
                    chunk_arr = np.frombuffer(raw, dtype=self.dtype).reshape(
                        chunk_count
                    )
                    out[vals] = chunk_arr[local]
                else:
                    # Raw uncached chunk: read only the lattice's byte runs,
                    # so a stride-q read moves ~1/q of the chunk's bytes.
                    counts = tuple(v.stop - v.start for v in vals)
                    local_slab = Hyperslab(
                        start=tuple(sl.start for sl in local),
                        count=counts,
                        stride=tuple(sl.step for sl in local),
                    )
                    n_elems = 1
                    for n in counts:
                        n_elems *= n
                    piece = np.empty(n_elems, dtype=self.dtype)
                    view = memoryview(piece.view(np.uint8)).cast("B")
                    cursor = 0
                    for elem_offset, elem_count in contiguous_runs(
                        local_slab, chunk_count
                    ):
                        nbytes = elem_count * itemsize
                        backend.readinto_at(
                            chunk_offset + elem_offset * itemsize,
                            view[cursor : cursor + nbytes],
                        )
                        cursor += nbytes
                    out[vals] = piece.reshape(counts)
            # Odometer over chunk grid coordinates.
            dim_idx = len(coord) - 1
            while dim_idx >= 0:
                coord[dim_idx] += 1
                if coord[dim_idx] <= hi[dim_idx]:
                    break
                coord[dim_idx] = lo[dim_idx]
                dim_idx -= 1
            if dim_idx < 0:
                break
        return out

    def _encoded_nbytes(self, ckey: str) -> int:
        """On-disk payload size of one encoded chunk (``chunk_enc``)."""
        enc = self._meta.get("chunk_enc", {})
        if ckey not in enc:
            raise FormatError(
                f"missing encoded size for chunk {ckey} in {self.path}"
            )
        return int(enc[ckey])

    def _load_codec_chunk(
        self,
        codec: "Codec",
        ckey: str,
        chunk_offset: int,
        chunk_count: tuple[int, ...],
        crc_expected: int | None,
        cache: "BlockCache | None",
    ) -> np.ndarray:
        """One decoded chunk, via the cache when possible.

        The cache holds *decoded* bytes under the same ``(file, "chunk",
        offset)`` key raw chunks use, so decompression runs once per
        cached block; the CRC covers the *encoded* payload and is checked
        before decode, only on the miss path.
        """
        backend = self._file._backend
        enc_nbytes = self._encoded_nbytes(ckey)
        dec_nbytes = (
            int(np.prod(chunk_count, dtype=np.int64)) * self.itemsize
        )
        if cache is not None and dec_nbytes <= cache.config.byte_budget:
            cache_key = (self._file._cache_key, "chunk", chunk_offset)
            raw = cache.get(cache_key, backend.iostats)
            if raw is not None:
                return np.frombuffer(raw, dtype=self.dtype).reshape(chunk_count)
            payload = backend.read_at(chunk_offset, enc_nbytes)
            if crc_expected is not None:
                verify_block(
                    self._file.filename, chunk_offset, payload,
                    crc_expected, what=f"chunk {ckey}",
                )
            arr = np.ascontiguousarray(
                codec.decode(payload, chunk_count, self.dtype)
            )
            cache.put(cache_key, arr.tobytes(), backend.iostats)
            return arr
        payload = backend.read_at(chunk_offset, enc_nbytes)
        if crc_expected is not None:
            verify_block(
                self._file.filename, chunk_offset, payload,
                crc_expected, what=f"chunk {ckey}",
            )
        return codec.decode(payload, chunk_count, self.dtype)

    def _read_virtual(self, hs: Hyperslab) -> np.ndarray:
        fill = self._meta.get("fill", 0)
        out = np.full(hs.count, fill, dtype=self.dtype)
        handler = self._file.on_source_error
        skip = self._file.skip_sources
        unit = all(s == 1 for s in hs.stride)
        for source in self.virtual_sources:
            ov = _strided_chunk_overlap(hs, source.dst_start, source.count)
            if ov is None:
                continue
            local, vals = ov
            dst_region = Hyperslab(
                start=tuple(
                    d + sl.start for d, sl in zip(source.dst_start, local)
                ),
                count=tuple(v.stop - v.start for v in vals),
                stride=tuple(sl.step for sl in local),
            )
            # Degraded-read bookkeeping stays in unit-stride *bounding*
            # coordinates: gap spans must keep their raw meaning on the
            # virtual axis however sparsely the failed span was sampled.
            if unit:
                overlap = dst_region
            else:
                overlap = Hyperslab(
                    start=dst_region.start,
                    count=tuple(
                        (n - 1) * st + 1
                        for n, st in zip(dst_region.count, dst_region.stride)
                    ),
                    stride=tuple(1 for _ in dst_region.start),
                )
            if skip and source.file in skip:
                # Blacklisted by a previous degraded read: don't touch the
                # source again, leave its span masked.
                if self._file.source_fill is not None:
                    out[vals] = self._file.source_fill
                continue
            src_slab = source.src_slab_for(dst_region)
            try:
                src_file = self._file._resolve_source(source.file)
                src_ds = src_file.dataset(source.dataset)
                piece = src_ds.read_hyperslab(src_slab)
            except (ReproError, OSError, KeyError) as exc:
                if handler is None:
                    raise
                mask_fill = handler(source, overlap, exc)
                if mask_fill is None:
                    raise
                out[vals] = mask_fill
                continue
            out[vals] = piece.astype(self.dtype, copy=False)
        return out

    # -- writing ---------------------------------------------------------------
    def __setitem__(self, selection: object, values: object) -> None:
        hs, squeeze = normalize_selection(selection, self.shape)
        arr = np.asarray(values, dtype=self.dtype)
        target_shape = selection_shape(hs, squeeze)
        arr = np.broadcast_to(arr, target_shape).reshape(hs.count)
        self.write_hyperslab(hs, arr)

    def write_hyperslab(self, hs: Hyperslab, values: np.ndarray) -> None:
        """Write ``values`` (shape ``hs.count``) into the hyperslab."""
        if not self._file.writable:
            raise FormatError("file is not writable")
        if self.layout not in (LAYOUT_CONTIGUOUS, LAYOUT_CHUNKED):
            raise FormatError(
                f"writes are only supported on contiguous or chunked "
                f"datasets, not {self.layout}"
            )
        if not hs.within(self.shape):
            raise SelectionError(
                f"hyperslab {hs} outside dataset shape {self.shape}"
            )
        values = np.ascontiguousarray(values, dtype=self.dtype)
        if values.shape != hs.count:
            raise SelectionError(
                f"value shape {values.shape} != selection shape {hs.count}"
            )
        if self.layout == LAYOUT_CHUNKED:
            self._write_chunked(hs, values)
            return
        base = int(self._meta["offset"])
        itemsize = self.itemsize
        flat = values.reshape(-1).view(np.uint8)
        view = memoryview(flat).cast("B")
        cursor = 0
        backend = self._file._backend
        byte_lo, byte_hi = None, 0
        for elem_offset, elem_count in contiguous_runs(hs, self.shape):
            nbytes = elem_count * itemsize
            backend.write_at(
                base + elem_offset * itemsize,
                view[cursor : cursor + nbytes],
            )
            cursor += nbytes
            run_lo = elem_offset * itemsize
            byte_lo = run_lo if byte_lo is None else min(byte_lo, run_lo)
            byte_hi = max(byte_hi, run_lo + nbytes)
        self._file._invalidate_cache()
        if byte_lo is not None:
            # Keep any checksum sidecar true to the new bytes (writers
            # update it even when read-side verification is off).
            update_contiguous_crcs(self, byte_lo, byte_hi)

    def _write_chunked(self, hs: Hyperslab, values: np.ndarray) -> None:
        """Read-modify-rewrite every chunk the selection touches.

        On codec datasets the touched chunk is decoded, patched, and
        re-encoded; a payload that grew past its old slot is appended to
        the data region and the chunk index repointed (the old bytes are
        dead — acceptable for an append-only format).  Each stored
        payload refreshes its sidecar CRC, so checksums always cover the
        encoded bytes actually on disk.
        """
        if hs.size == 0:
            return
        chunks = self.chunks
        assert chunks is not None
        codec = self.codec
        index: dict[str, int] = self._meta["chunk_index"]
        lo = [s // c for s, c in zip(hs.start, chunks)]
        hi = [
            (s + (n - 1) * st) // c
            for s, n, st, c in zip(hs.start, hs.count, hs.stride, chunks)
        ]
        coord = list(lo)
        while True:
            chunk_start = tuple(ci * c for ci, c in zip(coord, chunks))
            chunk_count = tuple(
                min(c, dim - cs)
                for c, cs, dim in zip(chunks, chunk_start, self.shape)
            )
            sel = _strided_chunk_overlap(hs, chunk_start, chunk_count)
            if sel is not None:
                local_sel, vals_sel = sel
                ckey = _chunk_key(coord)
                if ckey not in index:
                    raise FormatError(f"missing chunk {ckey} in {self.path}")
                chunk_arr = self._chunk_for_update(ckey, chunk_count, codec)
                chunk_arr[local_sel] = values[vals_sel]
                self._store_chunk(ckey, chunk_arr, codec)
            dim_idx = len(coord) - 1
            while dim_idx >= 0:
                coord[dim_idx] += 1
                if coord[dim_idx] <= hi[dim_idx]:
                    break
                coord[dim_idx] = lo[dim_idx]
                dim_idx -= 1
            if dim_idx < 0:
                break
        self._file._mark_dirty()
        self._file._invalidate_cache()

    def _chunk_for_update(
        self, ckey: str, chunk_count: tuple[int, ...], codec: "Codec | None"
    ) -> np.ndarray:
        """The chunk's current contents as a writable array (CRC-verified
        when the file verifies reads — a read-modify-write must not
        silently launder corruption into a fresh checksum)."""
        backend = self._file._backend
        chunk_offset = int(self._meta["chunk_index"][ckey])
        info = self._checksums()
        crc = (
            info.chunk_crcs.get(ckey)
            if info is not None and info.chunked
            else None
        )
        if codec is not None:
            payload = backend.read_at(chunk_offset, self._encoded_nbytes(ckey))
            if crc is not None:
                verify_block(
                    self._file.filename, chunk_offset, payload, crc,
                    what=f"chunk {ckey}",
                )
            arr = np.asarray(codec.decode(payload, chunk_count, self.dtype))
            return arr if arr.flags.writeable else arr.copy()
        nbytes = int(np.prod(chunk_count, dtype=np.int64)) * self.itemsize
        raw = backend.read_at(chunk_offset, nbytes)
        if crc is not None:
            verify_block(
                self._file.filename, chunk_offset, raw, crc,
                what=f"chunk {ckey}",
            )
        return np.frombuffer(raw, dtype=self.dtype).reshape(chunk_count).copy()

    def _store_chunk(
        self, ckey: str, chunk_arr: np.ndarray, codec: "Codec | None"
    ) -> None:
        backend = self._file._backend
        index: dict[str, int] = self._meta["chunk_index"]
        chunk_offset = int(index[ckey])
        chunk_arr = np.ascontiguousarray(chunk_arr)
        if codec is None:
            payload = chunk_arr.tobytes()
            backend.write_at(chunk_offset, payload)
        else:
            payload = codec.encode(chunk_arr)
            if len(payload) <= self._encoded_nbytes(ckey):
                backend.write_at(chunk_offset, payload)
            else:
                chunk_offset = self._file._append_data(payload)
                index[ckey] = chunk_offset
            self._meta["chunk_enc"][ckey] = len(payload)
        update_chunk_crc(self, ckey, payload)

    # -- streaming ---------------------------------------------------------------
    def iter_blocks(self, rows_per_block: int):
        """Stream the dataset as ``(row_slice, array)`` row blocks.

        Lets callers process arrays larger than memory (RCA construction,
        whole-day scans) one bounded block at a time.
        """
        if rows_per_block < 1:
            raise SelectionError("rows_per_block must be >= 1")
        if self.ndim == 0:
            raise SelectionError("cannot iterate a 0-d dataset")
        rows = self.shape[0]
        for start in range(0, rows, rows_per_block):
            stop = min(rows, start + rows_per_block)
            hs = Hyperslab(
                (start,) + (0,) * (self.ndim - 1),
                (stop - start,) + self.shape[1:],
                (1,) * self.ndim,
            )
            yield slice(start, stop), self.read_hyperslab(hs)

    # -- conversion --------------------------------------------------------------
    def __array__(self, dtype: object = None, copy: object = None) -> np.ndarray:
        arr = self.read()
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        return arr
