"""A tiny composable stage pipeline with per-stage timing.

Both execution styles of Fig. 9 are expressed over the same stages:
the MATLAB-style baseline runs them stage-at-a-time over the whole
array (materialising every intermediate), while DASSA fuses the whole
chain per data chunk inside threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigError
from repro.utils.timer import Timer


@dataclass
class Stage:
    """One named transformation."""

    name: str
    fn: Callable[[Any], Any]


@dataclass
class Pipeline:
    """An ordered chain of stages."""

    stages: list[Stage] = field(default_factory=list)

    def add(self, name: str, fn: Callable[[Any], Any]) -> "Pipeline":
        if any(stage.name == name for stage in self.stages):
            raise ConfigError(f"duplicate stage name {name!r}")
        self.stages.append(Stage(name, fn))
        return self

    def run(self, data: Any, timer: Timer | None = None) -> Any:
        """Run all stages in order; per-stage wall time lands in ``timer``."""
        if not self.stages:
            raise ConfigError("empty pipeline")
        timer = timer if timer is not None else Timer()
        for stage in self.stages:
            with timer.phase(stage.name):
                data = stage.fn(data)
        return data

    def fused(self) -> Callable[[Any], Any]:
        """A single callable running the whole chain (DASSA's fusion)."""
        if not self.stages:
            raise ConfigError("empty pipeline")

        def fused_fn(data: Any) -> Any:
            for stage in self.stages:
                data = stage.fn(data)
            return data

        return fused_fn

    @property
    def names(self) -> list[str]:
        return [stage.name for stage in self.stages]
