"""Zero-phase filtering (``filtfilt``, MATLAB semantics).

Forward-backward application of an IIR filter with odd-reflection edge
padding and steady-state initial conditions — the standard transient
suppression recipe (Gustafsson-style padding as in MATLAB/scipy).
"""

from __future__ import annotations

import numpy as np

from repro.daslib.lfilter import lfilter, lfilter_zi


def _odd_ext(x: np.ndarray, n: int, axis: int = -1) -> np.ndarray:
    """Odd (antisymmetric) extension of ``x`` by ``n`` samples per edge."""
    if n < 1:
        return x
    if n > x.shape[axis] - 1:
        raise ValueError(
            f"padding {n} exceeds signal length {x.shape[axis]} - 1 along axis"
        )
    moved = np.moveaxis(x, axis, -1)
    left = 2 * moved[..., :1] - moved[..., n:0:-1]
    right = 2 * moved[..., -1:] - moved[..., -2 : -n - 2 : -1]
    out = np.concatenate([left, moved, right], axis=-1)
    return np.moveaxis(out, -1, axis)


def settle_length(
    b: np.ndarray,
    a: np.ndarray,
    tol: float = 1e-10,
    cap: int = 1 << 17,
) -> int:
    """Samples after which the filter's impulse response falls below ``tol``.

    Estimated from the slowest pole: ``|h[n]|`` decays like ``r**n`` with
    ``r`` the largest pole magnitude, so ``n = log(tol) / log(r)``.  Used
    by the streaming executor to size the overlap (ghost zone) a chunked
    ``filtfilt`` needs so that chunk edges match whole-array output to
    within ``tol``.  Returns at least ``3 * max(len(a), len(b))`` (the
    ``filtfilt`` edge padding) and at most ``cap``.
    """
    if not (0.0 < tol < 1.0):
        raise ValueError("tol must be in (0, 1)")
    b = np.atleast_1d(np.asarray(b, dtype=np.float64))
    a = np.atleast_1d(np.asarray(a, dtype=np.float64))
    floor = 3 * max(len(a), len(b))
    if len(a) < 2:  # FIR: support is the tap count
        return max(floor, len(b))
    radius = float(np.max(np.abs(np.roots(a))))
    if not np.isfinite(radius) or radius >= 1.0:
        return cap
    if radius <= 0.0:
        return floor
    settle = int(np.ceil(np.log(tol) / np.log(radius)))
    return int(min(cap, max(floor, settle)))


def filtfilt(
    b: np.ndarray,
    a: np.ndarray,
    x: np.ndarray,
    axis: int = -1,
    padlen: int | None = None,
    engine: str = "auto",
) -> np.ndarray:
    """Apply filter ``(b, a)`` forward and backward along ``axis``.

    The result has zero phase distortion and the squared magnitude
    response of the single-pass filter.  ``padlen`` defaults to
    ``3 * max(len(a), len(b))`` (the MATLAB/scipy default).
    """
    b = np.atleast_1d(np.asarray(b, dtype=np.float64))
    a = np.atleast_1d(np.asarray(a, dtype=np.float64))
    x = np.asarray(x, dtype=np.float64)
    ntaps = max(len(a), len(b))
    if padlen is None:
        padlen = 3 * ntaps
    if padlen < 0:
        raise ValueError("padlen must be >= 0")
    if x.shape[axis] <= padlen:
        raise ValueError(
            f"signal length {x.shape[axis]} must exceed padlen {padlen}"
        )

    ext = _odd_ext(x, padlen, axis=axis) if padlen > 0 else x
    moved = np.moveaxis(ext, axis, -1)
    zi = lfilter_zi(b, a)
    zi_shape = (len(zi),) + moved.shape[:-1]
    zi_full = np.broadcast_to(zi.reshape((len(zi),) + (1,) * (moved.ndim - 1)), zi_shape)

    x0 = moved[..., 0]
    y, _ = lfilter(b, a, moved, axis=-1, zi=zi_full * x0, engine=engine)
    y0 = y[..., -1]
    y, _ = lfilter(b, a, y[..., ::-1], axis=-1, zi=zi_full * y0, engine=engine)
    y = y[..., ::-1]
    if padlen > 0:
        y = y[..., padlen:-padlen]
    return np.moveaxis(y, -1, axis)
