"""Checks fixture: public-API violations.

Expected at any path: API001 (``missing_name`` is exported but never
defined).  Scanned under a ``src/repro/hdf5lite/...`` rel the import of
``repro.rt`` adds an API003 (hdf5lite is rank 2, rt is rank 7).
"""

from repro.rt import service

__all__ = ["widget", "missing_name"]


def widget():
    return service and 1
