"""Ambient noise models for synthetic DAS recordings."""

from __future__ import annotations

import numpy as np

from repro.daslib import butter, lfilter


def ambient_noise(
    n_channels: int,
    n_samples: int,
    fs: float = 500.0,
    band: tuple[float, float] = (0.5, 40.0),
    amplitude: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Band-limited Gaussian ambient noise, independent per channel.

    White noise filtered into ``band`` — the traffic/wind/microseism
    background every DAS channel records.
    """
    if rng is None:
        rng = np.random.default_rng()
    white = rng.standard_normal((n_channels, n_samples))
    nyq = fs / 2.0
    lo = max(band[0] / nyq, 1e-4)
    hi = min(band[1] / nyq, 0.999)
    b, a = butter(2, (lo, hi), "bandpass")
    shaped = lfilter(b, a, white, axis=-1)
    scale = np.std(shaped)
    if scale > 0:
        shaped = shaped / scale
    return amplitude * shaped


def persistent_vibration(
    n_channels: int,
    n_samples: int,
    fs: float = 500.0,
    center_channel: int = 0,
    width: int = 10,
    freq: float = 20.0,
    amplitude: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A narrow-band hum confined to a channel neighbourhood.

    Models stationary machinery near the cable — the "persistent
    vibrating" band visible in the paper's Fig. 10.
    """
    if rng is None:
        rng = np.random.default_rng()
    t = np.arange(n_samples) / fs
    channels = np.arange(n_channels)
    envelope = np.exp(-0.5 * ((channels - center_channel) / max(width, 1)) ** 2)
    phase = rng.uniform(0, 2 * np.pi)
    # Slow amplitude wobble so the hum is not perfectly periodic.
    wobble = 1.0 + 0.2 * np.sin(2 * np.pi * 0.05 * t + phase)
    carrier = np.sin(2 * np.pi * freq * t + phase) * wobble
    return amplitude * envelope[:, None] * carrier[None, :]
