"""Top-level API surface, block iteration, and rendering utilities."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigError, SelectionError
from repro.hdf5lite import File
from repro.synthetic.render import to_ascii, wiggle_summary


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_dassa_import(self):
        assert repro.DASSA.__name__ == "DASSA"

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_exception_hierarchy(self):
        assert issubclass(repro.FormatError, repro.ReproError)
        assert issubclass(repro.MPIError, repro.ReproError)
        assert issubclass(repro.OutOfMemoryError, repro.ReproError)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestIterBlocks:
    def test_blocks_cover_dataset(self, tmp_path):
        data = np.arange(100.0).reshape(20, 5)
        with File(str(tmp_path / "f.h5"), "w") as f:
            f.create_dataset("d", data=data)
        with File(str(tmp_path / "f.h5"), "r") as f:
            ds = f.dataset("d")
            rebuilt = np.empty_like(data)
            sizes = []
            for sl, block in ds.iter_blocks(7):
                rebuilt[sl] = block
                sizes.append(block.shape[0])
            np.testing.assert_array_equal(rebuilt, data)
            assert sizes == [7, 7, 6]

    def test_block_larger_than_dataset(self, tmp_path):
        data = np.ones((3, 4))
        with File(str(tmp_path / "f.h5"), "w") as f:
            f.create_dataset("d", data=data)
        with File(str(tmp_path / "f.h5"), "r") as f:
            blocks = list(f.dataset("d").iter_blocks(100))
            assert len(blocks) == 1
            np.testing.assert_array_equal(blocks[0][1], data)

    def test_works_on_virtual(self, tmp_path):
        from repro.hdf5lite import VirtualSource

        src = str(tmp_path / "s.h5")
        data = np.arange(24.0).reshape(6, 4)
        with File(src, "w") as f:
            f.create_dataset("d", data=data)
        with File(str(tmp_path / "v.h5"), "w") as f:
            ds = f.create_dataset(
                "v",
                shape=(6, 4),
                dtype=np.float64,
                virtual_sources=[VirtualSource(src, "/d", (0, 0), (0, 0), (6, 4))],
            )
        with File(str(tmp_path / "v.h5"), "r") as f:
            rebuilt = np.concatenate(
                [block for _, block in f.dataset("v").iter_blocks(4)]
            )
            np.testing.assert_array_equal(rebuilt, data)

    def test_invalid(self, tmp_path):
        with File(str(tmp_path / "f.h5"), "w") as f:
            ds = f.create_dataset("d", data=np.zeros((4, 4)))
            with pytest.raises(SelectionError):
                list(ds.iter_blocks(0))


class TestRender:
    def test_ascii_shape(self):
        art = to_ascii(np.random.default_rng(0).normal(size=(100, 200)), rows=10, cols=40)
        lines = art.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_bright_spot_renders_bright(self):
        arr = np.zeros((20, 20))
        arr[10, 10] = 100.0
        art = to_ascii(arr, rows=20, cols=20)
        assert "@" in art.splitlines()[10]

    def test_small_array_not_upsampled(self):
        art = to_ascii(np.eye(3), rows=10, cols=10)
        assert len(art.splitlines()) == 3

    def test_clip_percentile(self):
        rng = np.random.default_rng(1)
        arr = rng.uniform(0, 1, size=(10, 10))
        arr[0, 0] = 1e9  # outlier flattens everything without clipping
        art_raw = to_ascii(arr)
        art_clip = to_ascii(arr, clip_percentile=95.0)
        # Unclipped: only the outlier is bright, the rest is one shade.
        assert len(set(art_raw.replace("\n", ""))) <= 2
        # Clipped: the background regains contrast (several shades used).
        assert len(set(art_clip.replace("\n", ""))) > 3

    def test_invalid(self):
        with pytest.raises(ConfigError):
            to_ascii(np.zeros(5))
        with pytest.raises(ConfigError):
            to_ascii(np.zeros((2, 2)), rows=0)
        with pytest.raises(ConfigError):
            to_ascii(np.zeros((2, 2)), clip_percentile=10.0)

    def test_wiggle_summary(self):
        data = np.vstack([np.ones(100) * (i + 1) for i in range(4)])
        text = wiggle_summary(data, n_channels=4, width=20)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[-1].count("#") == 20  # loudest channel fills the bar

    def test_wiggle_invalid(self):
        with pytest.raises(ConfigError):
            wiggle_summary(np.zeros(3))
