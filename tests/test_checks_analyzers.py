"""Unit tests for the repro.checks analyzer suite against fixture files.

Each analyzer gets a good/bad fixture pair under
``tests/fixtures/checks/``; bad fixtures document the exact findings
they seed.  Library-context rules (TAX002, API002, API003) are
exercised by loading the same fixture under a synthetic ``src/repro/...``
rel, since fixture files live outside the library tree.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.checks.api import PublicApiAnalyzer
from repro.checks.baseline import Baseline, Waiver
from repro.checks.contracts import OperatorContractAnalyzer
from repro.checks.locks import LockDisciplineAnalyzer
from repro.checks.pln import PlannerGeometryAnalyzer
from repro.checks.runner import load_project, run_analyzers
from repro.checks.source import Project, load_module
from repro.checks.taxonomy import ExceptionTaxonomyAnalyzer
from repro.errors import ConfigError

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "checks"
ROOT_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def project_for(name: str, rel: str | None = None) -> Project:
    mod = load_module(FIXTURES / name, rel or f"tests/fixtures/checks/{name}")
    return Project(root=FIXTURES, modules=[mod])


def codes(findings) -> Counter:
    return Counter(f.code for f in findings)


# -- lock discipline ---------------------------------------------------------

def test_locks_good_is_clean():
    findings = list(LockDisciplineAnalyzer().run(project_for("locks_good.py")))
    assert findings == []


def test_locks_bad_findings():
    findings = list(LockDisciplineAnalyzer().run(project_for("locks_bad.py")))
    assert codes(findings) == {"LCK001": 3, "LCK002": 1}


def test_locks_flags_mutation_moved_outside_with_block():
    """The acceptance case: a mutation that used to sit inside
    ``with self._lock:`` and was moved below the block is flagged."""
    text = (FIXTURES / "locks_bad.py").read_text()
    moved_line = next(
        i for i, raw in enumerate(text.splitlines(), start=1)
        if "moved outside the with-block" in raw
    )
    findings = list(LockDisciplineAnalyzer().run(project_for("locks_bad.py")))
    flagged = [f for f in findings if f.code == "LCK001" and f.line == moved_line]
    assert len(flagged) == 1
    assert "count" in flagged[0].message


def test_locks_closure_does_not_inherit_with_block():
    findings = list(LockDisciplineAnalyzer().run(project_for("locks_bad.py")))
    assert any(
        f.code == "LCK001" and "closure_trap" in f.message for f in findings
    )


# -- exception taxonomy ------------------------------------------------------

def test_taxonomy_good_is_clean():
    findings = list(
        ExceptionTaxonomyAnalyzer().run(project_for("taxonomy_good.py"))
    )
    assert findings == []


def test_taxonomy_bad_outside_library():
    findings = list(
        ExceptionTaxonomyAnalyzer().run(project_for("taxonomy_bad.py"))
    )
    # TAX002 needs library (src/repro) context; the rest fire anywhere.
    assert codes(findings) == {"TAX001": 2, "TAX003": 1}


def test_taxonomy_bad_as_library_adds_builtin_raise():
    findings = list(ExceptionTaxonomyAnalyzer().run(
        project_for("taxonomy_bad.py", rel="src/repro/utils/taxonomy_bad.py")
    ))
    assert codes(findings) == {"TAX001": 2, "TAX002": 1, "TAX003": 1}
    tax2 = next(f for f in findings if f.code == "TAX002")
    assert "ValueError" in tax2.message
    assert "ConfigError" in tax2.hint


def test_taxonomy_ble001_alias_still_suppresses(tmp_path):
    path = tmp_path / "legacy.py"
    path.write_text(
        "def f(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:  # noqa: BLE001 - legacy boundary\n"
        "        return None\n"
    )
    mod = load_module(path, "src/repro/utils/legacy.py")
    findings = list(
        ExceptionTaxonomyAnalyzer().run(Project(root=tmp_path, modules=[mod]))
    )
    assert findings == []


# -- operator contract -------------------------------------------------------

def test_contracts_good_is_clean():
    findings = list(
        OperatorContractAnalyzer().run(project_for("contracts_good.py"))
    )
    assert findings == []


def test_contracts_bad_findings():
    findings = list(
        OperatorContractAnalyzer().run(project_for("contracts_bad.py"))
    )
    assert codes(findings) == {
        "OPC001": 1,
        "OPC002": 1,
        "OPC003": 2,
        "OPC004": 2,
        "OPC005": 1,
        "OPC006": 2,
        "OPC007": 1,
    }


def test_contracts_inherited_hooks_count():
    """DerivedSink (contracts_good) inherits init/finalize from GoodSink
    and must not be flagged OPC007."""
    findings = list(
        OperatorContractAnalyzer().run(project_for("contracts_good.py"))
    )
    assert not any("DerivedSink" in f.message for f in findings)


# -- planner geometry --------------------------------------------------------

def test_pln_good_is_clean():
    findings = list(
        PlannerGeometryAnalyzer().run(project_for("pln_good.py"))
    )
    assert findings == []


def test_pln_bad_findings():
    findings = list(
        PlannerGeometryAnalyzer().run(project_for("pln_bad.py"))
    )
    assert codes(findings) == {
        "PLN001": 1,
        "PLN002": 2,
        "PLN003": 1,
        "PLN004": 1,
    }


def test_pln_partial_trio_not_double_reported():
    """A partial trio is PLN001 only — PLN002 must not re-flag the same
    incoherence."""
    findings = list(
        PlannerGeometryAnalyzer().run(project_for("pln_bad.py"))
    )
    partial = [f for f in findings if "PartialTrioOp" in f.message]
    assert [f.code for f in partial] == ["PLN001"]


def test_pln_inherited_grid_not_reflagged():
    """DerivedGridOp (pln_good) inherits the complete custom grid and
    must not be flagged."""
    findings = list(
        PlannerGeometryAnalyzer().run(project_for("pln_good.py"))
    )
    assert not any("DerivedGridOp" in f.message for f in findings)


def test_pln_real_operator_stack_is_clean():
    """The shipped operator stack's declarations must pass their own
    lint: LocalSimilarityOp overrides the full trio, SubsampleOp's
    decimate is non-literal, FusedOp's halo is computed."""
    project = load_project(ROOT_SRC.parent.parent)
    findings = [
        f for f in run_analyzers(project) if f.code.startswith("PLN")
    ]
    assert findings == []


# -- public API --------------------------------------------------------------

def test_api_good_is_clean():
    findings = list(PublicApiAnalyzer().run(project_for("api_good.py")))
    assert findings == []


def test_api_bad_stale_export():
    findings = list(PublicApiAnalyzer().run(project_for("api_bad.py")))
    assert codes(findings) == {"API001": 1}
    assert "missing_name" in findings[0].message


def test_api_bad_layer_violation_under_library_rel():
    findings = list(PublicApiAnalyzer().run(
        project_for("api_bad.py", rel="src/repro/hdf5lite/api_bad.py")
    ))
    assert codes(findings) == {"API001": 1, "API003": 1}
    layered = next(f for f in findings if f.code == "API003")
    assert "hdf5lite" in layered.message and "rt" in layered.message


def test_api_serve_layer_may_import_below():
    findings = list(PublicApiAnalyzer().run(
        project_for("api_serve_good.py", rel="src/repro/serve/api_serve_good.py")
    ))
    assert findings == []


def test_api_nothing_may_import_serve():
    findings = list(PublicApiAnalyzer().run(
        project_for("api_serve_bad.py", rel="src/repro/rt/api_serve_bad.py")
    ))
    assert codes(findings) == {"API003": 1}
    assert "rt" in findings[0].message and "serve" in findings[0].message
    assert "higher layer" in findings[0].message


def test_api_serve_checks_same_rank_coupling_flagged():
    findings = list(PublicApiAnalyzer().run(
        project_for("api_serve_bad.py", rel="src/repro/checks/api_serve_bad.py")
    ))
    assert codes(findings) == {"API003": 1}
    assert "same-rank" in findings[0].message


def test_api_missing_all_on_top_level_library_module():
    findings = list(PublicApiAnalyzer().run(
        project_for("taxonomy_bad.py", rel="src/repro/taxonomy_bad.py")
    ))
    assert codes(findings) == {"API002": 1}


# -- baseline mechanics ------------------------------------------------------

def test_waiver_matching_and_split_multiplicity():
    project = project_for("locks_bad.py")
    findings = run_analyzers(project, only=["lock-discipline"])
    assert findings  # sorted by Finding.sort_key already
    waived = Baseline(waivers=[
        Waiver(path="tests/fixtures/checks/*", reason="fixture", rule="lock-discipline")
    ])
    new, baselined = waived.split(findings)
    assert new == [] and len(baselined) == len(findings)

    # Pin one fingerprint once: duplicates beyond the pinned count stay new.
    pinned = Baseline()
    pinned.pinned[findings[0].fingerprint] += 1
    new, baselined = pinned.split(findings)
    assert len(baselined) == 1
    assert len(new) == len(findings) - 1


def test_update_baseline_preserves_reasons(tmp_path):
    project = project_for("locks_bad.py")
    findings = run_analyzers(project, only=["lock-discipline"])
    baseline = Baseline()
    baseline.pinned[findings[0].fingerprint] += 1
    baseline.pinned_meta[findings[0].fingerprint] = {
        "fingerprint": findings[0].fingerprint,
        "reason": "known debt, tracked in ISSUE-42",
    }
    doc = baseline.updated_document(findings)
    by_fp = {entry["fingerprint"]: entry for entry in doc["findings"]}
    assert by_fp[findings[0].fingerprint]["reason"] == "known debt, tracked in ISSUE-42"
    other = next(fp for fp in by_fp if fp != findings[0].fingerprint)
    assert "unreviewed" in by_fp[other]["reason"]

    # Round-trip through disk.
    out = tmp_path / "baseline.json"
    baseline.save(out, findings)
    reloaded = Baseline.load(out)
    new, baselined = reloaded.split(findings)
    assert new == []


def test_runner_rejects_unknown_only_token():
    project = project_for("locks_good.py")
    with pytest.raises(ConfigError, match="BOGUS999"):
        run_analyzers(project, only=["BOGUS999"])


def test_parse_error_surfaces_as_par001(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    project = load_project(tmp_path, [bad])
    findings = run_analyzers(project)
    assert codes(findings) == {"PAR001": 1}
