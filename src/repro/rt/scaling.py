"""Shard-count → throughput / p95 projection on the machine model.

The sharded RT service is a fan-in: N shard ranks each ingest one
spool (one interrogator) and stream event batches + heartbeats to one
aggregator rank.  This module projects how that topology scales on a
modelled machine (the paper's 1456-node Cori regime): per-shard
ingest is embarrassingly parallel, so the ceiling is the aggregator —
its apply cost plus the α-β network cost of every batch and heartbeat
crossing the fan-in.

The queueing treatment is deliberately simple (M/M/1 sojourn at the
shard and at the aggregator, p95 = ln(20)·mean for the exponential
tail): good enough to place the knee of the curve — the shard count
where aggregator utilisation approaches 1 and p95 detaches from the
service time — which is the number a capacity plan needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.machine import ClusterSpec
from repro.errors import ConfigError

__all__ = ["ShardScalingPoint", "project_shard_scaling"]

#: p95 of an exponential sojourn is ln(20) ≈ 3.0 times its mean.
_P95_FACTOR = math.log(20.0)


@dataclass(frozen=True)
class ShardScalingPoint:
    """One point of the shard-scaling curve."""

    shards: int
    offered_files_per_s: float
    throughput_files_per_s: float
    shard_utilization: float
    aggregator_utilization: float
    mean_latency_s: float
    p95_latency_s: float
    saturated: bool

    def to_json(self) -> dict:
        return {
            "shards": self.shards,
            "offered_files_per_s": self.offered_files_per_s,
            "throughput_files_per_s": self.throughput_files_per_s,
            "shard_utilization": round(self.shard_utilization, 6),
            "aggregator_utilization": round(self.aggregator_utilization, 6),
            "mean_latency_s": (
                None if math.isinf(self.mean_latency_s)
                else round(self.mean_latency_s, 6)
            ),
            "p95_latency_s": (
                None if math.isinf(self.p95_latency_s)
                else round(self.p95_latency_s, 6)
            ),
            "saturated": self.saturated,
        }


def project_shard_scaling(
    cluster: ClusterSpec,
    shard_counts,
    file_interval_s: float = 60.0,
    process_s_per_file: float = 1.0,
    event_bytes_per_file: float = 2048.0,
    aggregator_apply_s: float = 1e-4,
    heartbeat_interval_s: float = 1.0,
    heartbeat_bytes: float = 256.0,
) -> list[ShardScalingPoint]:
    """Project the fan-in's throughput and p95 per shard count.

    Each shard is offered one file every ``file_interval_s`` (one
    interrogator writing minute files) and spends
    ``process_s_per_file`` of compute on it; every file yields an
    event batch of ``event_bytes_per_file`` shipped to the aggregator,
    which spends ``aggregator_apply_s`` merging it.  Heartbeats add a
    fixed background load.  Calibrate ``process_s_per_file`` and
    ``event_bytes_per_file`` from a measured single-shard run (the RT
    benchmark does exactly that).
    """
    if file_interval_s <= 0 or process_s_per_file <= 0:
        raise ConfigError("file interval and per-file cost must be > 0")
    if heartbeat_interval_s <= 0:
        raise ConfigError("heartbeat_interval_s must be > 0")
    network = cluster.network
    points: list[ShardScalingPoint] = []
    for shards in shard_counts:
        shards = int(shards)
        if shards < 1:
            raise ConfigError("shard counts must be >= 1")
        rate_per_shard = 1.0 / file_interval_s
        offered = shards * rate_per_shard
        # Shard side: compute plus pushing the batch onto the wire.
        t_shard = process_s_per_file + network.p2p_time(
            int(event_bytes_per_file)
        )
        rho_shard = rate_per_shard * t_shard
        # Aggregator side: per-batch receive + merge, plus the steady
        # heartbeat background from every shard.
        t_agg = aggregator_apply_s + network.p2p_time(
            int(event_bytes_per_file)
        )
        t_beat = aggregator_apply_s + network.p2p_time(int(heartbeat_bytes))
        rho_agg = offered * t_agg + (shards / heartbeat_interval_s) * t_beat
        saturated = rho_shard >= 1.0 or rho_agg >= 1.0
        if saturated:
            throughput = min(shards / t_shard, 1.0 / t_agg)
            mean = math.inf
            p95 = math.inf
        else:
            throughput = offered
            mean = t_shard / (1.0 - rho_shard) + t_agg / (1.0 - rho_agg)
            p95 = _P95_FACTOR * mean
        points.append(
            ShardScalingPoint(
                shards=shards,
                offered_files_per_s=offered,
                throughput_files_per_s=throughput,
                shard_utilization=min(rho_shard, 1.0),
                aggregator_utilization=min(rho_agg, 1.0),
                mean_latency_s=mean,
                p95_latency_s=p95,
                saturated=saturated,
            )
        )
    return points
