"""Node and cluster specifications."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import NetworkModel
from repro.cluster.storage import StorageModel
from repro.errors import ConfigError
from repro.utils.units import parse_bytes


@dataclass(frozen=True)
class NodeSpec:
    """One computing node: core count and memory capacity."""

    cores: int = 32
    memory: int = 128 * 2**30

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("a node needs at least one core")
        if self.memory <= 0:
            raise ConfigError("node memory must be positive")

    @classmethod
    def create(cls, cores: int, memory: int | str) -> "NodeSpec":
        return cls(cores=cores, memory=parse_bytes(memory))


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: N nodes + interconnect + storage models."""

    nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkModel = field(default_factory=NetworkModel)
    storage: StorageModel = field(default_factory=StorageModel)
    name: str = "generic"
    # Per-core sustained compute throughput, used to convert work units
    # (bytes of DAS samples processed) into seconds.  Calibrated per
    # workload by the benchmark harness.
    core_flops: float = 2.0e9

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError("a cluster needs at least one node")
        if self.core_flops <= 0:
            raise ConfigError("core_flops must be positive")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    @property
    def total_memory(self) -> int:
        return self.nodes * self.node.memory

    def node_of_rank(self, rank: int, ranks_per_node: int) -> int:
        """Block mapping of MPI ranks onto nodes."""
        if ranks_per_node < 1:
            raise ConfigError("ranks_per_node must be >= 1")
        node = rank // ranks_per_node
        if node >= self.nodes:
            raise ConfigError(
                f"rank {rank} does not fit: {self.nodes} nodes x "
                f"{ranks_per_node} ranks/node"
            )
        return node

    def same_node(self, rank_a: int, rank_b: int, ranks_per_node: int) -> bool:
        return self.node_of_rank(rank_a, ranks_per_node) == self.node_of_rank(
            rank_b, ranks_per_node
        )

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        """The same machine at a different allocation size."""
        return ClusterSpec(
            nodes=nodes,
            node=self.node,
            network=self.network,
            storage=self.storage,
            name=self.name,
            core_flops=self.core_flops,
        )
