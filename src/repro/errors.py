"""Exception hierarchy for the repro (DASSA) package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework-level failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormatError",
    "SelectionError",
    "StorageError",
    "CorruptDataError",
    "DegradedReadError",
    "MPIError",
    "OutOfMemoryError",
    "UDFError",
    "ConfigError",
    "ServeError",
    "QuotaExceededError",
    "AdmissionQueueFullError",
    "CheckpointCorruptError",
    "InjectedFaultError",
    "StaleReadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FormatError(ReproError):
    """Raised when an hdf5lite file is malformed or unsupported."""


class SelectionError(ReproError):
    """Raised for invalid hyperslab / LAV selections."""


class StorageError(ReproError):
    """Raised by the DASS storage engine (search, VCA/RCA, readers)."""


class CorruptDataError(StorageError):
    """Raised when stored bytes fail an integrity check (CRC32 mismatch,
    impossible extents) — the data on disk is not what was written.

    Carries structured context so degraded-read layers and quarantine
    records can reason about the failure instead of string-matching:
    ``path`` the file holding the bad bytes, ``offset`` the byte offset of
    the failing block (``None`` when unknown), ``reason`` a short
    machine-friendly cause (e.g. ``"crc32 mismatch"``).
    """

    def __init__(self, path: str, offset: "int | None" = None, reason: str = "corrupt data"):
        self.path = str(path)
        self.offset = offset
        self.reason = reason
        at = f" at offset {offset}" if offset is not None else ""
        super().__init__(f"{self.path}: {reason}{at}")


class DegradedReadError(StorageError):
    """Raised when a read could not be satisfied from a source and the
    caller's error policy says to surface (rather than mask) the loss.

    Same structured fields as :class:`CorruptDataError`: ``path`` names
    the failing source, ``offset`` the sample/byte position when known,
    ``reason`` the short cause (``"truncated"``, ``"vanished"``,
    ``"unreadable"``, ...).
    """

    def __init__(self, path: str, offset: "int | None" = None, reason: str = "unreadable"):
        self.path = str(path)
        self.offset = offset
        self.reason = reason
        at = f" at offset {offset}" if offset is not None else ""
        super().__init__(f"{self.path}: degraded read ({reason}){at}")


class CheckpointCorruptError(StorageError):
    """Raised (or recorded) when a checkpoint file fails to parse or its
    payload checksum does not match — a torn write or on-disk corruption.

    ``path`` names the failing checkpoint file, ``reason`` the short
    cause (``"torn json"``, ``"crc mismatch"``, ``"bad version"``).  A
    :class:`~repro.rt.checkpoint.CheckpointStore` with a valid previous
    generation *records* this error and falls back; it raises only when
    no valid generation remains.
    """

    def __init__(self, path: str, reason: str = "corrupt checkpoint"):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


class InjectedFaultError(ReproError):
    """Raised by the chaos harness to simulate a process crash at a
    seeded point (kill-at-Nth-file and friends).  Deliberately a direct
    :class:`ReproError` subclass so supervision code can recognise an
    injected death without confusing it with real storage loss."""


class StaleReadError(ReproError):
    """Raised by a bounded-staleness catalog read when some live shard's
    contribution is older than the caller's staleness bound.

    ``stale_shards`` maps shard id → seconds since that shard's last
    applied update; ``bound_s`` is the bound that was violated.
    """

    def __init__(self, stale_shards: "dict[int, float]", bound_s: float):
        self.stale_shards = dict(stale_shards)
        self.bound_s = float(bound_s)
        worst = max(self.stale_shards.values(), default=0.0)
        super().__init__(
            f"catalog read exceeds staleness bound {self.bound_s:.3f}s: "
            f"shards {sorted(self.stale_shards)} up to {worst:.3f}s stale"
        )


class MPIError(ReproError):
    """Raised by the simulated MPI runtime."""


class OutOfMemoryError(ReproError):
    """Raised by the cluster memory model when a node's memory is exceeded.

    Mirrors the pure-MPI ArrayUDF out-of-memory failure reported in the
    paper's Fig. 8 (91-node case).
    """

    def __init__(self, node: int, requested: float, available: float):
        self.node = node
        self.requested = requested
        self.available = available
        super().__init__(
            f"node {node}: requested {requested / 2**30:.2f} GiB "
            f"but only {available / 2**30:.2f} GiB available"
        )


class UDFError(ReproError):
    """Raised when a user-defined function fails inside the ArrayUDF engine."""


class ServeError(ReproError):
    """Raised by the read-serving layer (:mod:`repro.serve`) for request
    failures that are not storage corruption: bad window geometry against
    an archive, a missing pyramid level, or an admission decision."""


class QuotaExceededError(ServeError):
    """Raised when a tenant's token-bucket quota cannot admit a request
    (and the caller asked not to wait, or the wait timed out).

    ``tenant`` names the quota bucket, ``kind`` which budget ran out
    (``"requests"`` or ``"bytes"``), ``retry_after`` the seconds until
    the bucket could admit the request — clients are expected to back
    off by at least that much.
    """

    def __init__(self, tenant: str, kind: str = "requests", retry_after: float = 0.0):
        self.tenant = str(tenant)
        self.kind = kind
        self.retry_after = float(retry_after)
        super().__init__(
            f"tenant {self.tenant!r}: {kind} quota exceeded "
            f"(retry after {self.retry_after:.3f}s)"
        )


class AdmissionQueueFullError(ServeError):
    """Raised when a request cannot even *wait*: the tenant's bounded
    admission queue is already at capacity.  Distinct from
    :class:`QuotaExceededError` so load shedding (drop now, no backoff
    hint) and pacing (retry after) stay separable failure modes.

    ``tenant`` names the queue, ``depth`` its configured bound.
    """

    def __init__(self, tenant: str, depth: int):
        self.tenant = str(tenant)
        self.depth = int(depth)
        super().__init__(
            f"tenant {self.tenant!r}: admission queue full ({self.depth} waiting)"
        )


class ConfigError(ReproError, ValueError):
    """Raised for invalid framework / machine-model configuration or
    arguments.

    Subclasses :class:`ValueError` so call sites converted from
    ``raise ValueError`` keep their contract: callers (and tests)
    catching ``ValueError`` continue to work, while new code can catch
    the taxonomy root instead.
    """
