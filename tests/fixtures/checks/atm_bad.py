"""Checks fixture: atomic-persistence violations.

Expected: two ATM001 (bare open-for-write onto the final path;
``write_text`` straight to the destination), one ATM002 (tmp-staged
write published by ``os.replace`` without fsync), and one ATM003
(append to a durable log with no flush + fsync).
"""

import json
import os


def save_bare(path, payload):
    with open(path, "w") as fh:  # no staging at all
        json.dump(payload, fh)


def save_write_text(path, payload):
    path.write_text(json.dumps(payload))


def save_unsynced(path, payload):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)  # the name flips before the bytes land


def append_row(path, row):
    with open(path, "a") as fh:
        fh.write(row + "\n")
