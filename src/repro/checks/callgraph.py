"""Project call graph and module dependency graph.

Resolution is name-based and intentionally conservative: we resolve
calls we can attribute to a project-internal function with confidence —

* direct calls to module-level and nested ``def``s in the same module,
* ``self.method()`` to a method of the lexically enclosing class,
* ``alias.f()`` through ``import repro.pkg.mod as alias``,
* ``g()`` through ``from repro.pkg.mod import f as g``,
* names pulled in by ``from repro.pkg.mod import *`` (via the target
  module's ``__all__``; star imports without one resolve nothing),

— and attribute no edge otherwise.  A missing edge makes interprocedural
analyzers *less* sensitive (they treat the callee as opaque), never
wrong, which is the right failure mode for CI lints.

The same import scan yields the module-level dependency graph that the
incremental engine uses: :meth:`CallGraph.dependents_closure` answers
"which modules must be re-analyzed because this one changed".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.checks.source import Project, SourceModule

__all__ = [
    "CallGraph", "FunctionInfo", "build_callgraph", "module_name_for",
    "own_calls",
]


def module_name_for(rel: str) -> str | None:
    """Dotted module name for a repo-relative path, or None if it is
    not importable project code (``src/repro/a/b.py`` -> ``repro.a.b``)."""
    if not rel.startswith("src/") or not rel.endswith(".py"):
        return None
    parts = rel[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


@dataclass
class FunctionInfo:
    """One project function: where it lives and its definition node."""

    rel: str  # module repo-relative path
    qualname: str  # "f", "Class.method", "outer.<locals>.inner"
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def key(self) -> tuple[str, str]:
        return (self.rel, self.qualname)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class _ModuleSymbols:
    """Name-resolution context for one module."""

    mod: SourceModule
    module: str | None
    #: top-level function/method defs by qualname
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local name -> dotted module (``import repro.a.b as m``)
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (dotted module, remote symbol) (``from m import f as g``)
    imported: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: dotted modules star-imported (resolved via their __all__)
    star_imports: list[str] = field(default_factory=list)
    #: dotted modules imported without an alias (dependency edges only)
    plain_imports: list[str] = field(default_factory=list)
    #: names exported by this module's __all__ (empty when absent)
    exports: set[str] = field(default_factory=set)


@dataclass
class CallGraph:
    """Functions, call edges, and module import dependencies."""

    #: (rel, qualname) -> FunctionInfo
    functions: dict[tuple[str, str], FunctionInfo] = field(default_factory=dict)
    #: caller key -> callee keys
    calls: dict[tuple[str, str], set[tuple[str, str]]] = field(default_factory=dict)
    #: (module rel, id(ast.Call)) -> callee key, for per-site lookup
    call_sites: dict[tuple[str, int], tuple[str, str]] = field(default_factory=dict)
    #: module rel -> rels of project modules it imports
    module_deps: dict[str, set[str]] = field(default_factory=dict)

    def resolve_site(self, rel: str, call) -> FunctionInfo | None:
        """The project function a specific call expression resolves to."""
        key = self.call_sites.get((rel, id(call)))
        return self.functions.get(key) if key else None

    def callees(self, func: FunctionInfo) -> list[FunctionInfo]:
        return [
            self.functions[key]
            for key in sorted(self.calls.get(func.key, ()))
            if key in self.functions
        ]

    def callers(self, func: FunctionInfo) -> list[FunctionInfo]:
        out = []
        for caller_key, callee_keys in sorted(self.calls.items()):
            if func.key in callee_keys and caller_key in self.functions:
                out.append(self.functions[caller_key])
        return out

    def functions_in(self, rel: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.rel == rel]

    def dependents_closure(self, rels: set[str]) -> set[str]:
        """``rels`` plus every module that (transitively) imports one of
        them — the re-analysis set for the incremental engine."""
        reverse: dict[str, set[str]] = {}
        for src, deps in self.module_deps.items():
            for dep in deps:
                reverse.setdefault(dep, set()).add(src)
        closure = set(rels)
        stack = list(rels)
        while stack:
            rel = stack.pop()
            for dependent in reverse.get(rel, ()):
                if dependent not in closure:
                    closure.add(dependent)
                    stack.append(dependent)
        return closure

    def transitive_closure_calls(
        self, start: FunctionInfo, limit: int = 10_000
    ) -> set[tuple[str, str]]:
        """Every function key reachable from ``start`` along call edges
        (``start`` excluded unless recursive)."""
        seen: set[tuple[str, str]] = set()
        stack = [start.key]
        while stack and len(seen) < limit:
            key = stack.pop()
            for callee in sorted(self.calls.get(key, ())):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen


def _collect_functions(symbols: _ModuleSymbols) -> None:
    """Index every def: module-level, methods, and nested functions."""

    def walk(body: list[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                symbols.functions[qual] = FunctionInfo(
                    rel=symbols.mod.rel, qualname=qual, node=stmt
                )
                walk(stmt.body, f"{qual}.<locals>.")
            elif isinstance(stmt, ast.ClassDef):
                walk(stmt.body, f"{prefix}{stmt.name}.")
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                # defs nested under module-level control flow still count
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        walk([sub], prefix)

    tree = symbols.mod.tree
    if tree is not None:
        walk(tree.body, "")


def _collect_imports(symbols: _ModuleSymbols) -> None:
    tree = symbols.mod.tree
    if tree is None:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import repro.a.b`` binds ``repro``; only the
                    # asname form gives a usable module alias.
                    if alias.asname:
                        symbols.module_aliases[local] = alias.name
                    else:
                        symbols.plain_imports.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(symbols, node.level, node.module)
            else:
                base = node.module
            if not base or not base.startswith("repro"):
                continue
            for alias in node.names:
                if alias.name == "*":
                    symbols.star_imports.append(base)
                else:
                    local = alias.asname or alias.name
                    symbols.imported[local] = (base, alias.name)


def _resolve_relative(symbols: _ModuleSymbols, level: int, module: str | None) -> str | None:
    if symbols.module is None:
        return None
    parts = symbols.module.split(".")
    # level 1 = current package; the module's own name is dropped first
    # unless this IS a package __init__.
    if not symbols.mod.rel.endswith("__init__.py"):
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if not parts:
        return None
    return ".".join(parts + ([module] if module else []))


def _collect_exports(symbols: _ModuleSymbols) -> None:
    tree = symbols.mod.tree
    if tree is None:
        return
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "__all__"
            and isinstance(stmt.value, (ast.List, ast.Tuple))
        ):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    symbols.exports.add(elt.value)


def _resolve_call(
    call: ast.Call,
    func: FunctionInfo,
    symbols: _ModuleSymbols,
    by_module: dict[str, _ModuleSymbols],
    module_rels: dict[str, str],
) -> tuple[str, str] | None:
    target = call.func
    if isinstance(target, ast.Name):
        name = target.id
        # Nearest lexical def scope first (a nested def in the caller
        # itself), then each enclosing def, then module level.
        prefix_parts = func.qualname.split(".")
        while True:
            qual = ".".join(prefix_parts + ["<locals>", name]) if prefix_parts else name
            if qual in symbols.functions:
                return (symbols.mod.rel, qual)
            if not prefix_parts:
                break
            prefix_parts = prefix_parts[:-1]
            if prefix_parts and prefix_parts[-1] == "<locals>":
                prefix_parts = prefix_parts[:-1]
        if name in symbols.imported:
            module, remote = symbols.imported[name]
            return _resolve_remote(module, remote, by_module, module_rels)
        for module in symbols.star_imports:
            remote_symbols = _symbols_for(module, by_module, module_rels)
            if remote_symbols and name in remote_symbols.exports:
                return _resolve_remote(module, name, by_module, module_rels)
        return None
    if isinstance(target, ast.Attribute):
        attr = target.attr
        base = target.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                # method on the lexically enclosing class
                parts = func.qualname.split(".")
                if len(parts) >= 2 and parts[-2] != "<locals>":
                    cls_prefix = ".".join(parts[:-1])
                    qual = f"{cls_prefix}.{attr}"
                    if qual in symbols.functions:
                        return (symbols.mod.rel, qual)
                return None
            if base.id in symbols.module_aliases:
                module = symbols.module_aliases[base.id]
                return _resolve_remote(module, attr, by_module, module_rels)
            if base.id in symbols.imported:
                # ``from repro.a import b`` then ``b.f()``: b may be a module
                module, remote = symbols.imported[base.id]
                return _resolve_remote(f"{module}.{remote}", attr, by_module, module_rels)
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name):
            # ``ClassName(...).method()`` — local or imported class
            cls_name = base.func.id
            qual = f"{cls_name}.{attr}"
            if qual in symbols.functions:
                return (symbols.mod.rel, qual)
            if cls_name in symbols.imported:
                module, remote = symbols.imported[cls_name]
                remote_symbols = _symbols_for(module, by_module, module_rels)
                if (
                    remote_symbols is not None
                    and f"{remote}.{attr}" in remote_symbols.functions
                ):
                    return (remote_symbols.mod.rel, f"{remote}.{attr}")
    return None


def _symbols_for(
    module: str,
    by_module: dict[str, _ModuleSymbols],
    module_rels: dict[str, str],
) -> _ModuleSymbols | None:
    rel = module_rels.get(module)
    return by_module.get(rel) if rel else None


def _resolve_remote(
    module: str,
    symbol: str,
    by_module: dict[str, _ModuleSymbols],
    module_rels: dict[str, str],
) -> tuple[str, str] | None:
    remote = _symbols_for(module, by_module, module_rels)
    if remote is None:
        return None
    if symbol in remote.functions:
        return (remote.mod.rel, symbol)
    # re-export chase, one hop: ``from .x import f`` in a package __init__
    if symbol in remote.imported:
        inner_module, inner_symbol = remote.imported[symbol]
        inner = _symbols_for(inner_module, by_module, module_rels)
        if inner is not None and inner_symbol in inner.functions:
            return (inner.mod.rel, inner_symbol)
    return None


def build_callgraph(project: Project) -> CallGraph:
    """Build functions, call edges, and module deps for the project."""
    by_module: dict[str, _ModuleSymbols] = {}
    module_rels: dict[str, str] = {}
    for mod in project.modules:
        symbols = _ModuleSymbols(mod=mod, module=module_name_for(mod.rel))
        _collect_functions(symbols)
        _collect_imports(symbols)
        _collect_exports(symbols)
        by_module[mod.rel] = symbols
        if symbols.module is not None:
            module_rels[symbols.module] = mod.rel

    graph = CallGraph()
    for rel, symbols in by_module.items():
        deps: set[str] = set()
        for module in (
            list(symbols.module_aliases.values())
            + symbols.star_imports
            + symbols.plain_imports
        ):
            target_rel = _nearest_module_rel(module, module_rels)
            if target_rel and target_rel != rel:
                deps.add(target_rel)
        for module, _symbol in symbols.imported.values():
            target_rel = _nearest_module_rel(module, module_rels)
            if target_rel and target_rel != rel:
                deps.add(target_rel)
        graph.module_deps[rel] = deps
        for func in symbols.functions.values():
            graph.functions[func.key] = func

    for rel, symbols in by_module.items():
        for func in symbols.functions.values():
            edges: set[tuple[str, str]] = set()
            for call in own_calls(func.node):
                resolved = _resolve_call(call, func, symbols, by_module, module_rels)
                if resolved is not None and resolved in graph.functions:
                    edges.add(resolved)
                    graph.call_sites[(rel, id(call))] = resolved
            graph.calls[func.key] = edges
    return graph


def own_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Call]:
    """Call expressions lexically owned by ``func`` itself — nested
    ``def``/``lambda`` bodies are pruned (their calls belong to the
    nested function's own entry)."""
    out: list[ast.Call] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _nearest_module_rel(module: str, module_rels: dict[str, str]) -> str | None:
    """Map a dotted module to a scanned file, falling back to parent
    packages (``repro.rt.shard`` -> src/repro/rt/shard.py, else
    src/repro/rt/__init__.py's rel if only that was scanned)."""
    parts = module.split(".")
    while parts:
        rel = module_rels.get(".".join(parts))
        if rel is not None:
            return rel
        parts = parts[:-1]
    return None
