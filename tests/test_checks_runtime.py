"""Runtime lock sanitizer: order-inversion and guarded-write detection.

The seeded cases model the two real concurrency bugs the static
analyzer cannot see: lock-order inversions established across *calls*
(not lexically), and guarded state reached without its lock through an
alias.  The clean cases prove the annotated production classes
(BlockCache) survive a sanitized hammering, and that nothing is
instrumented when the sanitizer is not installed.
"""

import threading

import pytest

from repro.checks.runtime import LockSanitizer, LockSanitizerError, SanitizedLock
from repro.hdf5lite.cache import BlockCache


class Account:
    """Seeded bug: ``transfer`` takes locks in argument order, so
    transfer(a, b) concurrent with transfer(b, a) can deadlock."""

    def __init__(self):
        self.lock = threading.Lock()
        self.balance = 0


def transfer(src: Account, dst: Account, amount: int) -> None:
    with src.lock:
        with dst.lock:
            src.balance -= amount
            dst.balance += amount


def test_seeded_lock_order_inversion_is_caught(lock_sanitizer):
    a, b = Account(), Account()
    transfer(a, b, 5)
    transfer(b, a, 5)  # the opposite order: the classic deadlock seed
    violations = lock_sanitizer.violations_of("lock-order-inversion")
    assert len(violations) == 1
    assert "potential deadlock" in violations[0].message
    with pytest.raises(LockSanitizerError, match="lock-discipline violation"):
        lock_sanitizer.raise_on_violations()


def test_consistent_order_is_clean(lock_sanitizer):
    a, b = Account(), Account()
    transfer(a, b, 5)
    transfer(a, b, 3)  # same order every time: no inversion
    assert lock_sanitizer.violations == []


def test_inversion_detected_without_a_second_thread():
    sanitizer = LockSanitizer()
    first = sanitizer.Lock("A")
    second = sanitizer.Lock("B")
    with first:
        with second:
            pass
    with second:
        with first:
            pass
    assert len(sanitizer.violations_of("lock-order-inversion")) == 1
    # The reverse pair is known now; repeating it is not re-reported.
    with second:
        with first:
            pass
    assert len(sanitizer.violations_of("lock-order-inversion")) == 1


def test_guarded_write_without_lock_is_caught():
    sanitizer = LockSanitizer()
    with sanitizer:
        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0  # guarded-by: _lock

            def bump_locked(self):
                with self._lock:
                    self.count += 1

            def bump_racy(self):
                self.count += 1  # the seeded race

        stats = Stats()
    sanitizer.guard_attributes(stats, ["count"])
    stats.bump_locked()
    assert sanitizer.violations == []
    stats.bump_racy()
    violations = sanitizer.violations_of("unguarded-write")
    assert len(violations) == 1
    assert "count" in violations[0].message
    assert stats.count == 2  # detection does not corrupt the write


def test_guard_attributes_requires_sanitized_lock():
    sanitizer = LockSanitizer()

    class Plain:
        def __init__(self):
            self._lock = threading.Lock()
            self.x = 0

    with pytest.raises(LockSanitizerError, match="not a sanitized lock"):
        sanitizer.guard_attributes(Plain(), ["x"])


def test_blockcache_is_clean_under_sanitized_hammer():
    sanitizer = LockSanitizer()
    with sanitizer:
        cache = BlockCache()
    sanitizer.guard_attributes(
        cache, ["hits", "misses", "evictions", "_current_bytes"], "_lock"
    )

    def hammer(seed: int) -> None:
        for i in range(200):
            key = ("file", seed % 2, i % 17)
            if cache.get(key) is None:
                cache.put(key, bytes(64))

    workers = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    sanitizer.raise_on_violations()  # annotated discipline holds at runtime
    assert cache.hits + cache.misses == 4 * 200


def test_reentrant_rlock_is_not_an_inversion():
    sanitizer = LockSanitizer()
    outer = sanitizer.RLock("R")
    inner = sanitizer.Lock("L")
    with outer:
        with outer:  # re-entry: no self-edge, no violation
            with inner:
                pass
    assert sanitizer.violations == []


def test_condition_works_over_sanitized_rlock():
    sanitizer = LockSanitizer()
    condition = threading.Condition(sanitizer.RLock("cv"))
    ready = []

    def waiter():
        with condition:
            while not ready:
                condition.wait(timeout=1.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    with condition:
        ready.append(1)
        condition.notify()
    thread.join(timeout=2.0)
    assert not thread.is_alive()


def test_thread_start_while_installed_does_not_recurse(lock_sanitizer):
    # Regression: a starting thread fires its ``_started`` Event (a
    # sanitized lock) *before* registering in ``threading._active``;
    # the acquire hook must not call ``current_thread()`` there — the
    # ``_DummyThread`` it builds constructs another sanitized Event and
    # recurses forever, hanging ``Thread.start()``.
    ran = []
    thread = threading.Thread(target=lambda: ran.append(1))
    thread.start()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert ran == [1]
    assert lock_sanitizer.violations == []


def test_condition_works_over_sanitized_plain_lock():
    # Condition binds the RLock protocol hooks by hasattr; the wrapper
    # always exposes them, so its non-reentrant branch must reproduce
    # Condition's own plain-lock fallbacks.
    sanitizer = LockSanitizer()
    condition = threading.Condition(sanitizer.Lock("plain-cv"))
    ready = []

    def waiter():
        with condition:
            while not ready:
                condition.wait(timeout=1.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    with condition:
        ready.append(1)
        condition.notify()
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert sanitizer.violations == []


def test_no_instrumentation_when_not_installed():
    # Production default: plain threading locks, zero sanitizer overhead.
    assert not isinstance(threading.Lock(), SanitizedLock)
    assert not isinstance(BlockCache()._lock, SanitizedLock)


def test_install_uninstall_restores_factories():
    sanitizer = LockSanitizer()
    with sanitizer:
        assert isinstance(threading.Lock(), SanitizedLock)
        assert isinstance(threading.RLock(), SanitizedLock)
    assert not isinstance(threading.Lock(), SanitizedLock)
    assert not isinstance(threading.RLock(), SanitizedLock)
