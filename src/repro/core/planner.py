"""Automatic system-setting selection (the paper's stated future work).

"How to automatically select system settings, such as the number of
nodes, to run the analysis code is another topic we will explore in
future" (paper §VIII).  With the machine model in hand this is a
search: evaluate engine geometries (node count, engine kind, threads)
against the workload's estimate and pick by objective — fastest,
cheapest (node-hours), or best parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arrayudf.engine import (
    BaseEngine,
    ComputeModel,
    EngineReport,
    HybridEngine,
    MPIEngine,
    WorkloadSpec,
)
from repro.cluster.machine import ClusterSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class PlanOption:
    """One evaluated configuration."""

    engine: str
    nodes: int
    ranks_per_node: int
    threads_per_rank: int
    total_time: float
    node_hours: float
    feasible: bool
    reason: str = ""

    @property
    def cores_used(self) -> int:
        return self.nodes * self.ranks_per_node * self.threads_per_rank


def _evaluate(engine: BaseEngine, workload: WorkloadSpec, read_pattern: str) -> PlanOption:
    report: EngineReport = engine.estimate(workload, read_pattern=read_pattern)
    if report.failed:
        return PlanOption(
            engine=engine.name,
            nodes=engine.nodes,
            ranks_per_node=engine.ranks_per_node,
            threads_per_rank=engine.threads_per_rank,
            total_time=float("inf"),
            node_hours=float("inf"),
            feasible=False,
            reason=report.failed,
        )
    return PlanOption(
        engine=engine.name,
        nodes=engine.nodes,
        ranks_per_node=engine.ranks_per_node,
        threads_per_rank=engine.threads_per_rank,
        total_time=report.total_time,
        node_hours=engine.nodes * report.total_time / 3600.0,
        feasible=True,
    )


def plan(
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    node_counts: list[int] | None = None,
    cores_per_node: int | None = None,
    objective: str = "time",
    read_pattern: str = "comm-avoiding",
    compute: ComputeModel | None = None,
    include_mpi_engine: bool = True,
) -> list[PlanOption]:
    """Evaluate configurations; returns options sorted best-first.

    ``objective``: ``"time"`` (fastest wall clock), ``"node_hours"``
    (cheapest allocation), or ``"balanced"`` (node-hours x time — a
    compromise that penalises both stragglers and waste).
    """
    if objective not in ("time", "node_hours", "balanced"):
        raise ConfigError(f"unknown objective {objective!r}")
    if node_counts is None:
        node_counts = [n for n in (8, 16, 32, 64, 91, 182, 364, 728, 1456) if n <= cluster.nodes]
    if not node_counts:
        raise ConfigError("no node counts to evaluate")
    if any(n < 1 or n > cluster.nodes for n in node_counts):
        raise ConfigError(f"node counts must be within [1, {cluster.nodes}]")
    cores = cores_per_node if cores_per_node is not None else cluster.node.cores
    if not (1 <= cores <= cluster.node.cores):
        raise ConfigError(f"cores_per_node must be within [1, {cluster.node.cores}]")

    options: list[PlanOption] = []
    for nodes in node_counts:
        sized = cluster.with_nodes(max(cluster.nodes, nodes))
        options.append(
            _evaluate(
                HybridEngine(sized, nodes, threads_per_rank=cores, compute=compute),
                workload,
                read_pattern,
            )
        )
        if include_mpi_engine:
            options.append(
                _evaluate(
                    MPIEngine(sized, nodes, ranks_per_node=cores, compute=compute),
                    workload,
                    read_pattern,
                )
            )

    def score(option: PlanOption) -> float:
        if not option.feasible:
            return float("inf")
        if objective == "time":
            return option.total_time
        if objective == "node_hours":
            return option.node_hours
        return option.node_hours * option.total_time

    options.sort(key=lambda option: (score(option), option.nodes))
    return options


def best_plan(
    cluster: ClusterSpec,
    workload: WorkloadSpec,
    **kwargs,
) -> PlanOption:
    """The single best feasible configuration; raises if none fits."""
    options = plan(cluster, workload, **kwargs)
    for option in options:
        if option.feasible:
            return option
    raise ConfigError(
        "no feasible configuration: every evaluated geometry fails "
        f"(first reason: {options[0].reason if options else 'none evaluated'})"
    )


# ---------------------------------------------------------------------------
# streaming chunk/thread tuning (used by the query optimizer)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamTuning:
    """The chunk size and thread count selected for one streamed run."""

    chunk_samples: int
    threads: int
    est_seconds: float
    candidates: int


def tune_stream(
    cluster: ClusterSpec,
    n_channels: int,
    n_samples: int,
    halo: tuple[int, int] = (0, 0),
    itemsize: int = 8,
    memory_fraction: float = 0.25,
    work_per_byte: float = 40.0,
) -> StreamTuning:
    """Select ``(chunk_samples, threads)`` for a single-node streamed run.

    The search space is power-of-two chunk lengths (>= 4096, capped at the
    record) whose resident block — including the operator chain's declared
    ``halo`` re-read on every chunk — fits ``memory_fraction`` of one
    node's memory, crossed with thread counts up to the node's cores.
    The cost model charges :meth:`~repro.cluster.storage.StorageModel.
    sequential_read_time` for the total bytes moved (halos are re-read
    once per chunk, so small chunks pay more) plus compute at
    ``core_flops`` with the ApplyMT diminishing-returns efficiency
    ``n / (1 + 0.05 * (n - 1))``.  Deterministic: depends only on the
    machine model and the declared geometry, never on the data.
    """
    if n_channels < 1 or n_samples < 1:
        raise ConfigError("tune_stream needs a non-empty record")
    left, right = halo
    if left < 0 or right < 0:
        raise ConfigError("halo must be non-negative")
    node = cluster.node
    mem_budget = node.memory * memory_fraction
    row_bytes = n_channels * itemsize

    chunks = []
    c = 4096
    while c < n_samples:
        chunks.append(c)
        c *= 2
    chunks.append(n_samples)
    chunks = [
        c for c in chunks if (c + left + right) * row_bytes <= mem_budget
    ] or [max(1, int(mem_budget // row_bytes) - left - right)]

    threads_grid = sorted(
        {1, 2, 4, 8, 16, 32, node.cores} & set(range(1, node.cores + 1))
    )

    best = None
    for chunk in chunks:
        n_chunks = -(-n_samples // chunk)
        read_bytes = (n_samples + (n_chunks - 1) * (left + right)) * row_bytes
        io = cluster.storage.sequential_read_time(read_bytes, n_chunks)
        work = n_samples * row_bytes * work_per_byte
        for threads in threads_grid:
            eff = threads / (1.0 + 0.05 * (threads - 1))
            total = io + work / (cluster.core_flops * eff)
            key = (total, chunk, threads)
            if best is None or key < best[0]:
                best = (key, chunk, threads, total)
    _, chunk, threads, total = best
    return StreamTuning(
        chunk_samples=int(chunk),
        threads=int(threads),
        est_seconds=float(total),
        candidates=len(chunks) * len(threads_grid),
    )
