"""Tests for simmpi point-to-point messaging and the fabric."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.simmpi import run_spmd
from repro.simmpi.fabric import ANY_SOURCE, ANY_TAG, Fabric, Message


class TestFabric:
    def test_post_and_match(self):
        fabric = Fabric(2)
        fabric.post(1, Message(source=0, tag=5, payload="x", nbytes=1, send_time=0.0))
        msg = fabric.match(1, 0, 5)
        assert msg.payload == "x"

    def test_match_wildcards(self):
        fabric = Fabric(2)
        fabric.post(0, Message(source=1, tag=7, payload="a", nbytes=1, send_time=0.0))
        msg = fabric.match(0, ANY_SOURCE, ANY_TAG)
        assert msg.payload == "a"

    def test_fifo_per_pair(self):
        fabric = Fabric(2)
        for i in range(3):
            fabric.post(
                0, Message(source=1, tag=0, payload=i, nbytes=1, send_time=0.0)
            )
        got = [fabric.match(0, 1, 0).payload for _ in range(3)]
        assert got == [0, 1, 2]

    def test_tag_selective(self):
        fabric = Fabric(2)
        fabric.post(0, Message(source=1, tag=1, payload="one", nbytes=1, send_time=0.0))
        fabric.post(0, Message(source=1, tag=2, payload="two", nbytes=1, send_time=0.0))
        assert fabric.match(0, 1, 2).payload == "two"
        assert fabric.match(0, 1, 1).payload == "one"

    def test_timeout(self):
        fabric = Fabric(1)
        with pytest.raises(MPIError, match="timeout"):
            fabric.match(0, ANY_SOURCE, ANY_TAG, timeout=0.05)

    def test_bad_dest(self):
        fabric = Fabric(2)
        with pytest.raises(MPIError):
            fabric.post(5, Message(source=0, tag=0, payload=None, nbytes=0, send_time=0.0))

    def test_abort_wakes_matcher(self):
        fabric = Fabric(2)
        fabric.abort(RuntimeError("boom"))
        with pytest.raises(MPIError, match="aborted"):
            fabric.match(0, ANY_SOURCE, ANY_TAG, timeout=5.0)

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            Fabric(0)


class TestPointToPoint:
    def test_ping(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        result = run_spmd(fn, 2)
        assert result.results[1] == {"a": 7}

    def test_numpy_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(100, dtype=np.float64), dest=1)
                return None
            buf = np.empty(100, dtype=np.float64)
            comm.Recv(buf, source=0)
            return buf

        result = run_spmd(fn, 2)
        np.testing.assert_array_equal(result.results[1], np.arange(100.0))

    def test_recv_buffer_size_mismatch(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10.0), dest=1)
            else:
                buf = np.empty(5)
                comm.Recv(buf, source=0)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_ring(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            if comm.rank == 0:
                comm.send(comm.rank, dest=right)
                total = comm.recv(source=left)
            else:
                total = comm.recv(source=left)
                comm.send(total + comm.rank, dest=right)
                total = None
            return total

        result = run_spmd(fn, 5)
        assert result.results[0] == sum(range(5))

    def test_send_to_self_rejected(self):
        def fn(comm):
            comm.send(1, dest=comm.rank)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_sendrecv_shift(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        result = run_spmd(fn, 4)
        assert result.results == [3, 0, 1, 2]

    def test_happens_before_clock(self):
        """A receiver's clock never shows the message arriving before the
        sender finished sending it."""

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(2**20), dest=1)
                return comm.clock.now
            comm.recv(source=0)
            return comm.clock.now

        result = run_spmd(fn, 2)
        send_done, recv_done = result.results
        assert recv_done >= send_done

    def test_trace_records_ops(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(b"xyz", dest=1)
            else:
                comm.recv(source=0)

        result = run_spmd(fn, 2)
        assert result.tracers[0].schedule() == [("send", 3, 1)]
        assert result.tracers[1].schedule() == [("recv", 3, 0)]


class TestExecutor:
    def test_single_rank_fast_path(self):
        result = run_spmd(lambda comm: comm.rank * 10, 1)
        assert result.results == [0]

    def test_results_in_rank_order(self):
        result = run_spmd(lambda comm: comm.rank, 6)
        assert result.results == list(range(6))

    def test_exception_propagates_with_rank(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("bad rank")
            comm.barrier()

        with pytest.raises(MPIError, match="rank 2.*ValueError"):
            run_spmd(fn, 4)

    def test_failure_does_not_deadlock_blocked_recv(self):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("dies before sending")
            comm.recv(source=0)

        with pytest.raises(MPIError, match="RuntimeError"):
            run_spmd(fn, 2)

    def test_args_passed_through(self):
        def fn(comm, base, scale=1):
            return base + comm.rank * scale

        result = run_spmd(fn, 3, args=(100,), kwargs={"scale": 2})
        assert result.results == [100, 102, 104]

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            run_spmd(lambda comm: None, 0)

    def test_makespan_positive_after_comm(self):
        def fn(comm):
            comm.barrier()

        result = run_spmd(fn, 4)
        assert result.makespan > 0.0

    def test_node_mapping_with_cluster(self):
        from repro.cluster import cori_haswell

        def fn(comm):
            return comm.node

        result = run_spmd(fn, 8, cluster=cori_haswell(4), ranks_per_node=2)
        assert result.results == [0, 0, 1, 1, 2, 2, 3, 3]
