"""Tests for Stencil, partitioning, Apply, and ApplyMT (Algorithm 1)."""

import numpy as np
import pytest

from repro.arrayudf import Stencil, apply, apply_mt, partition_1d, partition_rows
from repro.arrayudf.apply_mt import static_schedule
from repro.errors import UDFError


@pytest.fixture
def block():
    return np.arange(6 * 10, dtype=np.float64).reshape(6, 10)


class TestStencil:
    def test_center_value(self, block):
        s = Stencil(block, 2, 3)
        assert s.value() == block[2, 3]
        assert s(0, 0) == block[2, 3]

    def test_offsets(self, block):
        s = Stencil(block, 2, 3)
        assert s(1, 0) == block[3, 3]
        assert s(-1, 2) == block[1, 5]

    def test_paper_moving_average(self, block):
        """The paper's 3-point moving average example."""
        s = Stencil(block, 2, 3)
        avg = (s(0, -1) + s(0, 0) + s(0, 1)) / 3
        assert avg == pytest.approx(block[2, 2:5].mean())

    def test_window_1d_row(self, block):
        s = Stencil(block, 2, 5)
        np.testing.assert_array_equal(s.window(0, (-2, 2)), block[2, 3:8])

    def test_window_across_channels(self, block):
        """Algorithm 2's access: windows at neighbouring channels."""
        s = Stencil(block, 2, 5)
        np.testing.assert_array_equal(s.window(1, (-2, 2)), block[3, 3:8])
        np.testing.assert_array_equal(s.window(-1, (-2, 2)), block[1, 3:8])

    def test_window_2d(self, block):
        s = Stencil(block, 2, 5)
        np.testing.assert_array_equal(s.window((-1, 1), (0, 2)), block[1:4, 5:8])

    def test_window_is_view(self, block):
        s = Stencil(block, 2, 5)
        w = s.window((-1, 1), (0, 2))
        assert w.base is not None

    def test_out_of_range_error_policy(self, block):
        s = Stencil(block, 0, 0)
        with pytest.raises(UDFError, match="halo"):
            s(-1, 0)
        with pytest.raises(UDFError, match="halo"):
            s.window((-2, 0), 0)

    def test_clamp_policy(self, block):
        s = Stencil(block, 0, 0, boundary="clamp")
        assert s(-1, 0) == block[0, 0]
        np.testing.assert_array_equal(s.window((-1, 0), 0), [block[0, 0], block[0, 0]])

    def test_zero_policy(self, block):
        s = Stencil(block, 0, 0, boundary="zero")
        assert s(-1, 0) == 0.0
        np.testing.assert_array_equal(s.window((-1, 0), 0), [0.0, block[0, 0]])

    def test_empty_window_rejected(self, block):
        with pytest.raises(UDFError):
            Stencil(block, 2, 2).window((1, -1), 0)

    def test_non_2d_rejected(self):
        with pytest.raises(UDFError):
            Stencil(np.zeros(5), 0, 0)

    def test_unknown_boundary_rejected(self, block):
        with pytest.raises(UDFError):
            Stencil(block, 0, 0, boundary="wrap")


class TestPartition:
    def test_partition_1d_even(self):
        assert partition_1d(12, 4, 1) == (3, 6)

    def test_partition_1d_uneven_covers(self):
        parts = [partition_1d(10, 3, r) for r in range(3)]
        assert parts[0][0] == 0 and parts[-1][1] == 10
        assert all(a[1] == b[0] for a, b in zip(parts, parts[1:]))

    def test_partition_rows_with_halo(self):
        part = partition_rows((100, 50), 4, 1, halo=3)
        assert (part.core_row_lo, part.core_row_hi) == (25, 50)
        assert (part.read_row_lo, part.read_row_hi) == (22, 53)
        assert part.core_offset == 3
        assert part.read_shape == (31, 50)

    def test_halo_clipped_at_edges(self):
        part = partition_rows((100, 50), 4, 0, halo=5)
        assert part.read_row_lo == 0
        assert part.core_offset == 0
        last = partition_rows((100, 50), 4, 3, halo=5)
        assert last.read_row_hi == 100

    def test_col_range(self):
        part = partition_rows((10, 50), 2, 0, col_range=(10, 30))
        assert part.cols == 20

    def test_read_nbytes(self):
        part = partition_rows((8, 10), 2, 0)
        assert part.read_nbytes(4) == 4 * 10 * 4

    def test_invalid(self):
        with pytest.raises(UDFError):
            partition_1d(10, 0, 0)
        with pytest.raises(UDFError):
            partition_rows((10, 10), 2, 0, halo=-1)
        with pytest.raises(UDFError):
            partition_rows((10, 10), 2, 0, col_range=(5, 50))


class TestApply:
    def test_identity_udf(self, block):
        out = apply(block, lambda s: s.value())
        np.testing.assert_array_equal(out, block)

    def test_moving_average_udf(self, block):
        out = apply(
            block,
            lambda s: (s(0, -1) + s(0, 0) + s(0, 1)) / 3,
            core_cols=(1, 9),
        )
        expected = (block[:, 0:8] + block[:, 1:9] + block[:, 2:10]) / 3
        np.testing.assert_allclose(out, expected)

    def test_core_rows_only(self, block):
        out = apply(block, lambda s: s.value(), core_rows=(2, 4))
        np.testing.assert_array_equal(out, block[2:4])

    def test_strides(self, block):
        out = apply(block, lambda s: s.value(), row_stride=2, col_stride=5)
        np.testing.assert_array_equal(out, block[::2, ::5])

    def test_invalid_core(self, block):
        with pytest.raises(UDFError):
            apply(block, lambda s: 0.0, core_rows=(0, 99))
        with pytest.raises(UDFError):
            apply(block, lambda s: 0.0, row_stride=0)


class TestStaticSchedule:
    def test_covers_all_items(self):
        chunks = [static_schedule(100, 7, h) for h in range(7)]
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(chunks, chunks[1:]))

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in (static_schedule(100, 7, h) for h in range(7))]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid(self):
        with pytest.raises(UDFError):
            static_schedule(10, 0, 0)


class TestApplyMT:
    @pytest.mark.parametrize("threads", [1, 2, 4, 7])
    def test_matches_sequential_apply(self, block, threads):
        udf = lambda s: (s(0, -1) + s(0, 0) + s(0, 1)) / 3  # noqa: E731
        seq = apply(block, udf, core_cols=(1, 9))
        par = apply_mt(block, udf, threads=threads, core_cols=(1, 9))
        np.testing.assert_allclose(par, seq)

    def test_result_order_preserved(self, block):
        """The prefix merge must put thread results at the right offsets."""
        out = apply_mt(block, lambda s: s.value(), threads=5)
        np.testing.assert_array_equal(out, block)

    def test_more_threads_than_cells(self):
        tiny = np.ones((1, 3))
        out = apply_mt(tiny, lambda s: s.value() * 2, threads=16)
        np.testing.assert_array_equal(out, 2 * tiny)

    def test_strided(self, block):
        out = apply_mt(block, lambda s: s.value(), threads=3, col_stride=3)
        np.testing.assert_array_equal(out, block[:, ::3])

    def test_udf_exception_propagates(self, block):
        def bad(s):
            if s.row == 3 and s.col == 5:
                raise ValueError("poison cell")
            return 0.0

        with pytest.raises(UDFError, match="poison cell"):
            apply_mt(block, bad, threads=4)

    def test_udf_exception_does_not_hang_other_threads(self, block):
        def bad(s):
            raise RuntimeError("all cells fail")

        with pytest.raises(UDFError):
            apply_mt(block, bad, threads=8)

    def test_invalid_threads(self, block):
        with pytest.raises(UDFError):
            apply_mt(block, lambda s: 0.0, threads=0)

    def test_shared_block_no_copy(self):
        """All threads see the same block object (the hybrid engine's
        memory story: data shared, not duplicated)."""
        seen_ids = []
        block = np.arange(12, dtype=np.float64).reshape(3, 4)

        def udf(s):
            seen_ids.append(id(s.block))
            return 0.0

        apply_mt(block, udf, threads=3)
        assert len(set(seen_ids)) == 1
