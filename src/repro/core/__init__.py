"""DASSA core — the framework facade and the two case-study pipelines.

* :mod:`repro.core.local_similarity` — earthquake detection via local
  similarity (paper Algorithm 2, after Li et al. 2018),
* :mod:`repro.core.interferometry` — traffic-noise / ambient-noise
  interferometry (paper Algorithm 3, after Dou et al. 2017),
* :mod:`repro.core.detection` — event picking and classification on
  similarity maps (the Fig. 10 analysis),
* :mod:`repro.core.baseline` — the MATLAB-style serial pipeline DASSA is
  compared against in Fig. 9,
* :mod:`repro.core.framework` — the ``DASSA`` facade: search → merge →
  analyse in three calls (the paper's future-work "Python API"),
* :mod:`repro.core.pipeline` / :mod:`repro.core.operators` — the
  streaming chunked execution core: overlap-aware operators, the
  chunk-at-a-time runner, and the materialised (MATLAB-style) execution
  of the same graphs.
"""

from repro.core.detection import DetectedEvent, detect_events
from repro.core.framework import DASSA, AnalysisPlan
from repro.core.interferometry import (
    InterferometryConfig,
    interferometry_block,
    interferometry_operators,
    preprocess_operators,
    streamed_interferometry,
    traffic_noise_udf,
)
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    LocalSimilarityOp,
    local_similarity_block,
    local_similarity_udf,
    streamed_local_similarity,
)
from repro.core.operators import (
    CorrelateOp,
    DecimateOp,
    DetrendOp,
    FFTSink,
    FiltFiltOp,
    TaperOp,
    WhitenOp,
)
from repro.core.pipeline import (
    OpContext,
    Operator,
    Pipeline,
    PipelineProfile,
    PipelineResult,
    SinkOp,
    Stage,
    StreamPipeline,
    run_materialized,
)
from repro.core.stacking import (
    NCFStackSink,
    linear_stack,
    phase_weighted_stack,
    stack_snr,
    streamed_stack,
    window_ncfs,
)
from repro.core.stalta import (
    StaLtaOp,
    array_detections,
    classic_sta_lta,
    recursive_sta_lta,
    streamed_sta_lta,
    trigger_onset,
)
from repro.core.graph import (
    ChannelSelectOp,
    CoordFrame,
    Query,
    SubsampleOp,
    verify_geometry,
)
from repro.core.optimizer import (
    FusedOp,
    PhysicalPlan,
    execute,
    explain,
    fuse_operators,
    optimize,
    plan_incremental,
)
from repro.core.planner import (
    PlanOption,
    StreamTuning,
    best_plan,
    plan,
    tune_stream,
)
from repro.core.velocity import VelocityFit, fit_moveout, pick_arrivals

__all__ = [
    "DASSA",
    "AnalysisPlan",
    "LocalSimilarityConfig",
    "LocalSimilarityOp",
    "local_similarity_block",
    "local_similarity_udf",
    "streamed_local_similarity",
    "InterferometryConfig",
    "interferometry_block",
    "interferometry_operators",
    "preprocess_operators",
    "streamed_interferometry",
    "traffic_noise_udf",
    "DetectedEvent",
    "detect_events",
    "window_ncfs",
    "linear_stack",
    "phase_weighted_stack",
    "stack_snr",
    "NCFStackSink",
    "streamed_stack",
    "classic_sta_lta",
    "recursive_sta_lta",
    "trigger_onset",
    "array_detections",
    "StaLtaOp",
    "streamed_sta_lta",
    "VelocityFit",
    "fit_moveout",
    "pick_arrivals",
    "plan",
    "best_plan",
    "PlanOption",
    "tune_stream",
    "StreamTuning",
    # lazy query layer
    "Query",
    "CoordFrame",
    "ChannelSelectOp",
    "SubsampleOp",
    "verify_geometry",
    "FusedOp",
    "fuse_operators",
    "PhysicalPlan",
    "optimize",
    "execute",
    "explain",
    "plan_incremental",
    # streaming execution core
    "Stage",
    "Pipeline",
    "OpContext",
    "Operator",
    "SinkOp",
    "StreamPipeline",
    "run_materialized",
    "PipelineProfile",
    "PipelineResult",
    "DetrendOp",
    "TaperOp",
    "FiltFiltOp",
    "DecimateOp",
    "FFTSink",
    "WhitenOp",
    "CorrelateOp",
]
