"""Tests for hdf5lite Dataset layouts (contiguous, chunked, virtual)."""

import numpy as np
import pytest

from repro.errors import FormatError, SelectionError
from repro.hdf5lite import File, Hyperslab, VirtualSource
from repro.utils.iostats import IOStats


@pytest.fixture
def tmpfile(tmp_path):
    return str(tmp_path / "ds.h5")


class TestContiguous:
    def test_roundtrip_2d(self, tmpfile):
        data = np.arange(6 * 8, dtype=np.float32).reshape(6, 8)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data)
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d").read(), data)

    @pytest.mark.parametrize("dtype", ["<i2", "<i4", "<u1", "<f4", "<f8", "<c8"])
    def test_dtypes(self, tmpfile, dtype):
        data = np.arange(10).astype(dtype)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data)
        with File(tmpfile, "r") as f:
            ds = f.dataset("d")
            assert ds.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(ds.read(), data)

    def test_unsupported_dtype_rejected(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.create_dataset("d", data=np.array(["a", "b"]))

    @pytest.mark.parametrize(
        "sel",
        [
            np.s_[2:5],
            np.s_[:, 3],
            np.s_[1, 1:7:2],
            np.s_[...],
            np.s_[::2, ::3],
            np.s_[4],
        ],
    )
    def test_getitem_matches_numpy(self, tmpfile, sel):
        data = np.arange(6 * 8, dtype=np.float64).reshape(6, 8)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data)
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d")[sel], data[sel])

    def test_allocate_then_write(self, tmpfile):
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", shape=(4, 4), dtype=np.float32)
            np.testing.assert_array_equal(ds.read(), np.zeros((4, 4)))
            ds[1:3, 1:3] = [[1, 2], [3, 4]]
        with File(tmpfile, "r") as f:
            out = f.dataset("d").read()
        expected = np.zeros((4, 4), dtype=np.float32)
        expected[1:3, 1:3] = [[1, 2], [3, 4]]
        np.testing.assert_array_equal(out, expected)

    def test_setitem_broadcast_scalar(self, tmpfile):
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", shape=(3, 3), dtype=np.float64)
            ds[1] = 7.0
            np.testing.assert_array_equal(ds[1], np.full(3, 7.0))

    def test_write_shape_mismatch(self, tmpfile):
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", shape=(4,), dtype=np.float32)
            with pytest.raises(SelectionError):
                ds.write_hyperslab(
                    Hyperslab((0,), (4,), (1,)), np.zeros(3, dtype=np.float32)
                )

    def test_shape_contradiction_rejected(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.create_dataset("d", data=np.zeros(4), shape=(5,))

    def test_properties(self, tmpfile):
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", data=np.zeros((3, 5), dtype=np.float32))
            assert ds.shape == (3, 5)
            assert ds.ndim == 2
            assert ds.size == 15
            assert ds.nbytes == 60
            assert len(ds) == 3
            assert ds.chunks is None
            assert ds.layout == "contiguous"

    def test_full_read_is_one_request(self, tmpfile):
        data = np.arange(100, dtype=np.float64).reshape(10, 10)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data)
        stats = IOStats()
        with File(tmpfile, "r", iostats=stats) as f:
            reads_before = stats.reads
            f.dataset("d").read()
            assert stats.reads - reads_before == 1

    def test_column_read_is_one_request_per_row(self, tmpfile):
        data = np.arange(100, dtype=np.float64).reshape(10, 10)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data)
        stats = IOStats()
        with File(tmpfile, "r", iostats=stats) as f:
            reads_before = stats.reads
            f.dataset("d")[:, 4]
            assert stats.reads - reads_before == 10

    def test_array_protocol(self, tmpfile):
        data = np.arange(4.0)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data)
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(np.asarray(f.dataset("d")), data)


class TestChunked:
    def test_roundtrip(self, tmpfile):
        data = np.arange(20 * 30, dtype=np.float32).reshape(20, 30)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(8, 8))
        with File(tmpfile, "r") as f:
            ds = f.dataset("d")
            assert ds.layout == "chunked"
            assert ds.chunks == (8, 8)
            np.testing.assert_array_equal(ds.read(), data)

    @pytest.mark.parametrize(
        "sel",
        [np.s_[3:17, 5:25], np.s_[0], np.s_[:, 29], np.s_[::3, ::7], np.s_[19, 29]],
    )
    def test_partial_reads(self, tmpfile, sel):
        data = np.arange(20 * 30, dtype=np.int32).reshape(20, 30)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(7, 9))
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d")[sel], data[sel])

    def test_chunks_require_data(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.create_dataset("d", shape=(4, 4), chunks=(2, 2))

    def test_bad_chunk_rank(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.create_dataset("d", data=np.zeros((4, 4)), chunks=(2,))

    def test_chunked_accepts_writes(self, tmpfile):
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", data=np.zeros((4, 4)), chunks=(2, 2))
            ds[0] = 1.0
            ds[1:3, ::2] = 2.0
        expected = np.zeros((4, 4))
        expected[0] = 1.0
        expected[1:3, ::2] = 2.0
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d").read(), expected)

    def test_read_touches_only_needed_chunks(self, tmpfile):
        data = np.arange(16 * 16, dtype=np.float64).reshape(16, 16)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(4, 4))
        stats = IOStats()
        with File(tmpfile, "r", iostats=stats) as f:
            before = stats.reads
            f.dataset("d")[0:4, 0:4]  # exactly one chunk, contiguous inside
            assert stats.reads - before == 1

    def test_1d_chunked(self, tmpfile):
        data = np.arange(100, dtype=np.float32)
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=data, chunks=(7,))
        with File(tmpfile, "r") as f:
            np.testing.assert_array_equal(f.dataset("d")[13:64], data[13:64])


class TestVirtual:
    def _write_sources(self, tmp_path, n_files=3, rows=4, cols=5):
        paths = []
        blocks = []
        for i in range(n_files):
            path = str(tmp_path / f"src{i}.h5")
            block = np.full((rows, cols), float(i), dtype=np.float32) + np.arange(
                rows * cols, dtype=np.float32
            ).reshape(rows, cols) / 100.0
            with File(path, "w") as f:
                f.create_dataset("data", data=block)
            paths.append(path)
            blocks.append(block)
        return paths, blocks

    def test_concatenation_along_time(self, tmp_path):
        paths, blocks = self._write_sources(tmp_path)
        rows, cols = blocks[0].shape
        vpath = str(tmp_path / "vca.h5")
        sources = [
            VirtualSource(
                file=paths[i],
                dataset="/data",
                src_start=(0, 0),
                dst_start=(0, i * cols),
                count=(rows, cols),
            )
            for i in range(len(paths))
        ]
        with File(vpath, "w") as f:
            f.create_dataset(
                "merged",
                shape=(rows, cols * len(paths)),
                dtype=np.float32,
                virtual_sources=sources,
            )
        expected = np.concatenate(blocks, axis=1)
        with File(vpath, "r") as f:
            ds = f.dataset("merged")
            assert ds.layout == "virtual"
            np.testing.assert_array_equal(ds.read(), expected)
            # Partial read crossing a file boundary:
            np.testing.assert_array_equal(
                ds[1:3, cols - 2 : cols + 2], expected[1:3, cols - 2 : cols + 2]
            )
            # Strided read:
            np.testing.assert_array_equal(ds[::2, ::3], expected[::2, ::3])

    def test_relative_source_paths(self, tmp_path):
        paths, blocks = self._write_sources(tmp_path, n_files=2)
        rows, cols = blocks[0].shape
        vpath = str(tmp_path / "vca.h5")
        sources = [
            VirtualSource(
                file=f"src{i}.h5",  # relative to the VCA file's directory
                dataset="/data",
                src_start=(0, 0),
                dst_start=(0, i * cols),
                count=(rows, cols),
            )
            for i in range(2)
        ]
        with File(vpath, "w") as f:
            f.create_dataset(
                "merged", shape=(rows, 2 * cols), dtype=np.float32, virtual_sources=sources
            )
        with File(vpath, "r") as f:
            np.testing.assert_array_equal(
                f.dataset("merged").read(), np.concatenate(blocks, axis=1)
            )

    def test_gap_filled_with_fill_value(self, tmp_path):
        paths, blocks = self._write_sources(tmp_path, n_files=1)
        rows, cols = blocks[0].shape
        vpath = str(tmp_path / "v.h5")
        with File(vpath, "w") as f:
            f.create_dataset(
                "v",
                shape=(rows, 2 * cols),
                dtype=np.float32,
                virtual_sources=[
                    VirtualSource(paths[0], "/data", (0, 0), (0, 0), (rows, cols))
                ],
                fill=-1,
            )
        with File(vpath, "r") as f:
            out = f.dataset("v").read()
        np.testing.assert_array_equal(out[:, :cols], blocks[0])
        np.testing.assert_array_equal(out[:, cols:], np.full((rows, cols), -1.0))

    def test_source_shape_validation(self, tmp_path):
        with File(str(tmp_path / "v.h5"), "w") as f:
            with pytest.raises(FormatError):
                f.create_dataset(
                    "v",
                    shape=(4, 4),
                    virtual_sources=[
                        VirtualSource("x.h5", "/d", (0, 0), (0, 2), (4, 4))
                    ],
                )

    def test_virtual_requires_shape(self, tmp_path):
        with File(str(tmp_path / "v.h5"), "w") as f:
            with pytest.raises(FormatError):
                f.create_dataset("v", virtual_sources=[])

    def test_virtual_rejects_writes(self, tmp_path):
        paths, blocks = self._write_sources(tmp_path, n_files=1)
        rows, cols = blocks[0].shape
        with File(str(tmp_path / "v.h5"), "w") as f:
            ds = f.create_dataset(
                "v",
                shape=(rows, cols),
                dtype=np.float32,
                virtual_sources=[
                    VirtualSource(paths[0], "/data", (0, 0), (0, 0), (rows, cols))
                ],
            )
            with pytest.raises(FormatError):
                ds[0] = 1.0

    def test_source_opens_counted(self, tmp_path):
        paths, blocks = self._write_sources(tmp_path, n_files=3)
        rows, cols = blocks[0].shape
        vpath = str(tmp_path / "v.h5")
        sources = [
            VirtualSource(paths[i], "/data", (0, 0), (0, i * cols), (rows, cols))
            for i in range(3)
        ]
        with File(vpath, "w") as f:
            f.create_dataset(
                "v", shape=(rows, 3 * cols), dtype=np.float32, virtual_sources=sources
            )
        stats = IOStats()
        with File(vpath, "r", iostats=stats) as f:
            opens_before = stats.opens
            f.dataset("v").read()
            # one open per source file
            assert stats.opens - opens_before == 3
