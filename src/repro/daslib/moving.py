"""Moving statistics and sliding-window views."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def moving_average(x: np.ndarray, width: int, axis: int = -1) -> np.ndarray:
    """Centered moving average with edge shrinkage (same-length output).

    Within ``width//2`` of an edge the average is taken over the samples
    that exist, so the output has no ramp-in bias toward zero.

    NaN samples (degraded-read fill) produce NaN for exactly the windows
    that contain them — they are zeroed out of the running sum first, so
    a masked span cannot poison the cumulative sums for every window
    after it.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    if width == 1 or n == 0:
        return x.copy()
    moved = np.moveaxis(x, axis, -1)
    half_left = (width - 1) // 2
    half_right = width // 2
    contaminated = np.isnan(moved)
    any_bad = bool(contaminated.any())
    summand = np.where(contaminated, 0.0, moved) if any_bad else moved
    cumsum = np.cumsum(summand, axis=-1)
    zero = np.zeros(moved.shape[:-1] + (1,))
    cumsum = np.concatenate([zero, cumsum], axis=-1)
    idx = np.arange(n)
    lo = np.clip(idx - half_left, 0, n)
    hi = np.clip(idx + half_right + 1, 0, n)
    sums = cumsum[..., hi] - cumsum[..., lo]
    counts = (hi - lo).astype(np.float64)
    out = sums / counts
    if any_bad:
        badcum = np.concatenate([zero, np.cumsum(contaminated, axis=-1)], axis=-1)
        out[(badcum[..., hi] - badcum[..., lo]) > 0] = np.nan
    return np.moveaxis(out, -1, axis)


def sliding_windows(x: np.ndarray, width: int, step: int = 1, axis: int = -1) -> np.ndarray:
    """Strided view of overlapping windows (no copy).

    Output gains a trailing axis of length ``width``; windows advance by
    ``step`` along ``axis``.  This is the batch form of the Stencil's
    window extraction used by the vectorised local-similarity kernel.
    """
    if width < 1 or step < 1:
        raise ValueError("width and step must be >= 1")
    x = np.asarray(x)
    if x.shape[axis] < width:
        raise ValueError(
            f"window width {width} exceeds axis length {x.shape[axis]}"
        )
    view = sliding_window_view(x, width, axis=axis)
    # sliding_window_view puts the window axis last; stride the window-start axis.
    slicer = [slice(None)] * view.ndim
    start_axis = axis if axis >= 0 else x.ndim + axis
    slicer[start_axis] = slice(None, None, step)
    return view[tuple(slicer)]
