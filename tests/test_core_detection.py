"""Tests for event detection/classification on similarity maps."""

import numpy as np
import pytest

from repro.core.detection import DetectedEvent, detect_events, _connected_components
from repro.errors import ConfigError


def make_map(n_channels=40, n_centers=60):
    rng = np.random.default_rng(0)
    simi = 0.30 + 0.02 * rng.standard_normal((n_channels, n_centers))
    centers = np.arange(n_centers) * 100 + 50
    return simi, centers


class TestConnectedComponents:
    def test_empty(self):
        labels = _connected_components(np.zeros((3, 3), dtype=bool))
        assert labels.max() == 0

    def test_single_blob(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:3, 1:4] = True
        labels = _connected_components(mask)
        assert labels.max() == 1
        assert (labels > 0).sum() == 6

    def test_two_blobs(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        labels = _connected_components(mask)
        assert labels.max() == 2

    def test_diagonal_not_connected(self):
        mask = np.zeros((2, 2), dtype=bool)
        mask[0, 0] = mask[1, 1] = True
        assert _connected_components(mask).max() == 2


class TestDetectEvents:
    def test_no_events_in_pure_noise(self):
        simi, centers = make_map()
        events = detect_events(simi, centers, fs=100.0, threshold_sigmas=5.0)
        assert events == []

    def test_earthquake_classification(self):
        simi, centers = make_map()
        simi[:, 30:34] = 0.9  # whole array lights up briefly
        events = detect_events(simi, centers, fs=100.0)
        assert len(events) == 1
        ev = events[0]
        assert ev.kind == "earthquake"
        assert ev.channel_span == simi.shape[0]
        assert ev.peak_similarity == pytest.approx(0.9)

    def test_vehicle_classification(self):
        simi, centers = make_map()
        # a moving diagonal ridge: channel ~ time
        for col in range(10, 40):
            ch = col - 5
            simi[max(0, ch - 1) : ch + 2, col] = 0.85
        events = detect_events(simi, centers, fs=100.0)
        kinds = [e.kind for e in events]
        assert "vehicle" in kinds
        vehicle = next(e for e in events if e.kind == "vehicle")
        assert vehicle.speed_channels_per_s > 0

    def test_persistent_classification(self):
        simi, centers = make_map()
        simi[20:23, :] = 0.8  # fixed channels, whole record
        events = detect_events(simi, centers, fs=100.0)
        assert len(events) == 1
        assert events[0].kind == "persistent"

    def test_min_cells_filters_specks(self):
        simi, centers = make_map()
        simi[5, 5] = 0.95  # one-cell spike
        events = detect_events(simi, centers, fs=100.0, min_cells=4)
        assert events == []

    def test_events_sorted_by_time(self):
        simi, centers = make_map()
        simi[:, 50:53] = 0.9
        simi[10:13, 5:15] = 0.85
        events = detect_events(simi, centers, fs=100.0)
        starts = [e.t_start for e in events]
        assert starts == sorted(starts)

    def test_fields_consistent(self):
        simi, centers = make_map()
        simi[:, 30:33] = 0.9
        ev = detect_events(simi, centers, fs=100.0)[0]
        assert ev.duration >= 0
        assert ev.t_end >= ev.t_start
        assert ev.n_cells >= 6
        assert isinstance(ev, DetectedEvent)

    def test_validation(self):
        simi, centers = make_map()
        with pytest.raises(ConfigError):
            detect_events(simi, centers[:-1], fs=100.0)
        with pytest.raises(ConfigError):
            detect_events(simi, centers, fs=0.0)
        with pytest.raises(ConfigError):
            detect_events(np.zeros(5), centers, fs=100.0)

    def test_empty_map(self):
        assert detect_events(np.zeros((0, 0)), np.zeros(0), fs=100.0) == []

    def test_flat_map_no_division_error(self):
        simi = np.full((10, 10), 0.5)
        centers = np.arange(10) * 10
        assert detect_events(simi, centers, fs=100.0) == []
