"""Fig. 9 — the same pipeline in DASSA vs MATLAB, single node, 12 cores.

Paper result (one ~700 MB 1-minute file): MATLAB is at most 16x slower
than DASSA in compute; read and write are comparable (one node, one
file).  The MATLAB code relies on per-kernel implicit threading, while
DASSA parallelises the *entire* fused pipeline.

Here: (a) the MATLAB-structured baseline (stage-at-a-time, interpreted
channel loops) and the DASSA execution both really run on a scaled
1-minute block — wall times measured; (b) the calibrated Amdahl +
interpreter model projects the paper-scale 16x.
"""

import time

import numpy as np
import pytest

from repro.core.baseline import Fig9Model, dassa_pipeline, matlab_style_pipeline
from repro.core.interferometry import InterferometryConfig

CONFIG = InterferometryConfig(fs=100.0, band=(0.5, 12.0), resample_q=4)


@pytest.fixture(scope="module")
def minute_block():
    # a scaled "1-minute file": 48 channels x 3000 samples
    return np.random.default_rng(1).normal(size=(48, 3000))


def test_fig9_matlab_style_benchmark(benchmark, minute_block):
    out = benchmark.pedantic(
        matlab_style_pipeline, args=(minute_block, CONFIG), rounds=3, iterations=1
    )
    assert out.shape == (48,)


def test_fig9_dassa_benchmark(benchmark, minute_block):
    out = benchmark.pedantic(
        dassa_pipeline,
        args=(minute_block, CONFIG),
        kwargs={"threads": 4},
        rounds=3,
        iterations=1,
    )
    assert out.shape == (48,)


def test_fig9_table(benchmark, minute_block, report):
    benchmark.pedantic(
        _fig9_table, args=(minute_block, report), rounds=1, iterations=1
    )


def _fig9_table(minute_block, report):
    lines = ["Fig. 9 - DASSA vs MATLAB-style pipeline (single node)", ""]

    # --- really executed at scaled size ---------------------------------
    t0 = time.perf_counter()
    matlab_out = matlab_style_pipeline(minute_block, CONFIG)
    t_matlab = time.perf_counter() - t0
    t0 = time.perf_counter()
    dassa_out = dassa_pipeline(minute_block, CONFIG, threads=4)
    t_dassa = time.perf_counter() - t0
    np.testing.assert_allclose(matlab_out, dassa_out, atol=1e-9)

    lines += [
        "measured (48 channels x 3000 samples, 4 threads):",
        f"  MATLAB-style compute : {t_matlab:8.3f} s",
        f"  DASSA compute        : {t_dassa:8.3f} s",
        f"  speedup              : {t_matlab / t_dassa:8.1f}x",
        "",
    ]
    assert t_dassa < t_matlab
    assert np.allclose(matlab_out, dassa_out, atol=1e-9)

    # --- projected at paper scale (12 cores, 700 MB file) ---------------
    model = Fig9Model(threads=12)
    speedup = model.speedup()
    # Normalise to the paper's plotted scale: DASSA compute on the 700 MB
    # file took seconds; express both bars relative to DASSA = 1.
    lines += [
        "projected (12 cores, one 700 MB minute file):",
        f"  compute  : DASSA = 1.0, MATLAB = {speedup:.1f}   (paper: <= 16x)",
        "  read     : comparable (single node, single file - same I/O path)",
        "  write    : comparable (same output array)",
    ]
    assert 10.0 < speedup < 20.0
    report("fig9_matlab", lines)
