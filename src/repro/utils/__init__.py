"""Shared utilities: unit parsing/formatting, timers, I/O statistics."""

from repro.utils.iostats import IOStats
from repro.utils.timer import Timer, VirtualTimer, timed
from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    TIB,
    format_bytes,
    format_count,
    format_seconds,
    parse_bytes,
)

__all__ = [
    "IOStats",
    "Timer",
    "VirtualTimer",
    "timed",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "format_bytes",
    "format_count",
    "format_seconds",
    "parse_bytes",
]
