"""Tests for VCA, RCA, and LAV — the merge/subset machinery of DASS."""

import os

import numpy as np
import pytest

from repro.errors import SelectionError, StorageError
from repro.hdf5lite import File
from repro.storage.lav import LAV
from repro.storage.rca import RCA_DATASET, create_rca
from repro.storage.search import scan_directory
from repro.storage.vca import create_vca, open_vca
from repro.utils.iostats import IOStats


class TestVCA:
    def test_merged_content_matches_concatenation(self, das_dir, tmp_path):
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, das_dir["paths"])
        with open_vca(vca_path) as vca:
            np.testing.assert_array_equal(vca.dataset.read(), das_dir["full"])

    def test_shape_and_metadata(self, das_dir, tmp_path):
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, das_dir["paths"])
        with open_vca(vca_path) as vca:
            assert vca.shape == (16, 720)
            assert vca.metadata.sampling_frequency == 2.0
            assert vca.metadata.timestamp == das_dir["stamps"][0]
            assert vca.source_timestamps == das_dir["stamps"]

    def test_construction_reads_no_array_data(self, das_dir, tmp_path):
        stats = IOStats()
        create_vca(str(tmp_path / "v.h5"), das_dir["paths"], iostats=stats)
        # Each file contributes its header + metadata footer (2 reads);
        # array data (120*16*4 = 7680 B/file) is never touched.
        per_file_data = 16 * 120 * 4
        assert stats.bytes_read < len(das_dir["paths"]) * per_file_data / 2

    def test_partial_read_crosses_file_boundary(self, das_dir, tmp_path):
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, das_dir["paths"])
        with open_vca(vca_path) as vca:
            got = vca.dataset[5:9, 110:130]
        np.testing.assert_array_equal(got, das_dir["full"][5:9, 110:130])

    def test_reading_one_minute_opens_one_source(self, das_dir, tmp_path):
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, das_dir["paths"])
        stats = IOStats()
        with open_vca(vca_path, iostats=stats) as vca:
            opens_before = stats.opens
            vca.dataset[:, 130:200]  # entirely inside file 1
            assert stats.opens - opens_before == 1

    def test_source_paths_absolute(self, das_dir, tmp_path):
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, das_dir["paths"])
        with open_vca(vca_path) as vca:
            for path, orig in zip(vca.source_paths(), das_dir["paths"]):
                assert os.path.isabs(path)
                assert os.path.samefile(path, orig)

    def test_same_file_in_two_vcas_no_copy(self, das_dir, tmp_path):
        """Table I: VCA has no duplication across groups — the same minute
        can be merged into two different VCAs and both read it in place."""
        a = str(tmp_path / "a.h5")
        b = str(tmp_path / "b.h5")
        create_vca(a, das_dir["paths"][:3])
        create_vca(b, das_dir["paths"][1:4])
        source_size = os.path.getsize(das_dir["paths"][1])
        assert os.path.getsize(a) < source_size / 4
        assert os.path.getsize(b) < source_size / 4
        with open_vca(a) as va, open_vca(b) as vb:
            np.testing.assert_array_equal(
                va.dataset[:, 120:240], vb.dataset[:, 0:120]
            )

    def test_assume_uniform_fast_path(self, das_dir, tmp_path):
        """The name-catalog construction path: only the first footer is
        read, yet the merged content is identical."""
        stats = IOStats()
        catalog = scan_directory(das_dir["dir"])
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, catalog, assume_uniform=True, iostats=stats)
        assert stats.opens == 2  # first source + the output file
        with open_vca(vca_path) as vca:
            np.testing.assert_array_equal(vca.dataset.read(), das_dir["full"])
            assert vca.source_timestamps == das_dir["stamps"]

    def test_catalog_entries_accepted(self, das_dir, tmp_path):
        catalog = scan_directory(das_dir["dir"])
        vca_path = create_vca(str(tmp_path / "v.h5"), catalog[:2])
        with open_vca(vca_path) as vca:
            assert vca.shape == (16, 240)

    def test_zero_files_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            create_vca(str(tmp_path / "v.h5"), [])

    def test_channel_mismatch_rejected(self, das_dir, tmp_path):
        from repro.storage.dasfile import write_das_file
        from repro.storage.metadata import DASMetadata

        odd = str(tmp_path / "odd.h5")
        write_das_file(
            odd, np.zeros((7, 120), dtype=np.float32),
            DASMetadata(sampling_frequency=2.0, timestamp="170620103000", n_channels=7),
        )
        with pytest.raises(StorageError, match="channel count"):
            create_vca(str(tmp_path / "v.h5"), das_dir["paths"][:1] + [odd])

    def test_fs_mismatch_rejected(self, das_dir, tmp_path):
        from repro.storage.dasfile import write_das_file
        from repro.storage.metadata import DASMetadata

        odd = str(tmp_path / "odd.h5")
        write_das_file(
            odd, np.zeros((16, 120), dtype=np.float32),
            DASMetadata(sampling_frequency=99.0, timestamp="170620103000", n_channels=16),
        )
        with pytest.raises(StorageError, match="sampling frequency"):
            create_vca(str(tmp_path / "v.h5"), das_dir["paths"][:1] + [odd])

    def test_open_non_vca_rejected(self, das_dir):
        with pytest.raises(StorageError):
            open_vca(das_dir["paths"][0])


class TestRCA:
    def test_content_matches_concatenation(self, das_dir, tmp_path):
        rca_path = str(tmp_path / "r.h5")
        create_rca(rca_path, das_dir["paths"])
        with File(rca_path, "r") as f:
            np.testing.assert_array_equal(
                f.dataset(RCA_DATASET).read(), das_dir["full"]
            )

    def test_doubles_storage(self, das_dir, tmp_path):
        """Table I: RCA needs ~100% extra space (a physical copy)."""
        rca_path = str(tmp_path / "r.h5")
        create_rca(rca_path, das_dir["paths"])
        total_source_data = sum(b.nbytes for b in das_dir["blocks"])
        assert os.path.getsize(rca_path) >= total_source_data

    def test_construction_reads_all_data(self, das_dir, tmp_path):
        """Table I: RCA construction has high overhead — it moves every
        byte (reads all sources and writes them again)."""
        stats = IOStats()
        create_rca(str(tmp_path / "r.h5"), das_dir["paths"], iostats=stats)
        total = sum(b.nbytes for b in das_dir["blocks"])
        assert stats.bytes_read >= total
        assert stats.bytes_written >= total

    def test_vca_construction_much_cheaper_than_rca(self, das_dir, tmp_path):
        """The Fig. 6 contrast, measured in bytes moved rather than
        seconds (single-machine wall time is noise at this scale)."""
        vca_stats = IOStats()
        rca_stats = IOStats()
        create_vca(str(tmp_path / "v.h5"), das_dir["paths"], iostats=vca_stats)
        create_rca(str(tmp_path / "r.h5"), das_dir["paths"], iostats=rca_stats)
        moved_vca = vca_stats.bytes_read + vca_stats.bytes_written
        moved_rca = rca_stats.bytes_read + rca_stats.bytes_written
        assert moved_rca > 10 * moved_vca

    def test_zero_files_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            create_rca(str(tmp_path / "r.h5"), [])

    def test_metadata_preserved(self, das_dir, tmp_path):
        rca_path = str(tmp_path / "r.h5")
        create_rca(rca_path, das_dir["paths"])
        with File(rca_path, "r") as f:
            assert f.attrs["TimeStamp(yymmddhhmmss)"] == das_dir["stamps"][0]
            assert f.attrs["RCA source count"] == 6


class TestLAV:
    @pytest.fixture
    def dataset(self, das_dir, tmp_path):
        vca_path = str(tmp_path / "v.h5")
        create_vca(vca_path, das_dir["paths"])
        vca = open_vca(vca_path)
        yield vca.dataset, das_dir["full"]
        vca.close()

    def test_channel_subset(self, dataset):
        ds, full = dataset
        view = LAV(ds, channels=slice(4, 10))
        assert view.shape == (6, 720)
        np.testing.assert_array_equal(view.read(), full[4:10])

    def test_time_subset(self, dataset):
        ds, full = dataset
        view = LAV(ds, times=slice(100, 300))
        np.testing.assert_array_equal(view.read(), full[:, 100:300])

    def test_composed_views(self, dataset):
        ds, full = dataset
        view = LAV(ds, channels=slice(2, 14)).select(channels=slice(1, 5))
        np.testing.assert_array_equal(view.read(), full[3:7])

    def test_strided_view(self, dataset):
        ds, full = dataset
        view = LAV(ds, channels=slice(0, 16, 4))
        np.testing.assert_array_equal(view.read(), full[::4])

    def test_getitem_on_view(self, dataset):
        ds, full = dataset
        view = LAV(ds, channels=slice(4, 12), times=slice(60, 660))
        np.testing.assert_array_equal(view[2:4, 10:20], full[6:8, 70:80])
        np.testing.assert_array_equal(view[0], full[4, 60:660])

    def test_channel_and_time_ranges(self, dataset):
        ds, _ = dataset
        view = LAV(ds, channels=slice(4, 12, 2), times=slice(0, 100))
        assert list(view.channel_range) == [4, 6, 8, 10]
        assert view.time_range == range(0, 100)

    def test_numpy_protocol(self, dataset):
        ds, full = dataset
        arr = np.asarray(LAV(ds, channels=slice(0, 2)))
        np.testing.assert_array_equal(arr, full[:2])

    def test_scalar_bounds_rejected(self, dataset):
        ds, _ = dataset
        with pytest.raises(SelectionError):
            LAV(ds, channels=3)

    def test_escaping_selection_rejected(self, dataset):
        ds, _ = dataset
        view = LAV(ds, channels=slice(0, 4))
        with pytest.raises(SelectionError):
            view[10, :]

    def test_non_2d_rejected(self, tmp_path):
        with File(str(tmp_path / "x.h5"), "w") as f:
            ds = f.create_dataset("d", data=np.zeros(5))
            with pytest.raises(SelectionError):
                LAV(ds)
