"""The Stencil abstraction (paper §II-B).

A ``Stencil`` represents one logical cell of a 2-D array together with
its neighbourhood.  UDFs access neighbours by offset::

    def three_point_average(S):
        return (S(0, -1) + S(0, 0) + S(0, 1)) / 3

and windows by inclusive offset ranges, matching the paper's
``S(-M:M, 0)`` notation::

    window = S.window((-M, M), 0)          # the paper's S(-M:M, 0)
    left   = S.window((l - M, l + M), -K)  # Algorithm 2's W1/W2

The stencil never copies the underlying block; windows are numpy views.
Out-of-range accesses follow the configured boundary policy ("error"
for strict ghost-zone semantics, "clamp" to repeat edge values, "zero"
to zero-fill).
"""

from __future__ import annotations

import numpy as np

from repro.errors import UDFError

_BOUNDARIES = ("error", "clamp", "zero")


class Stencil:
    """One cell (``row``, ``col``) of a 2-D block, with neighbourhood access.

    ``row``/``col`` index into ``block`` directly; engines position the
    stencil so that the cell plus the declared halo stay inside the block
    (that is what ghost zones are for).
    """

    __slots__ = ("block", "row", "col", "boundary")

    def __init__(
        self, block: np.ndarray, row: int, col: int, boundary: str = "error"
    ):
        if block.ndim != 2:
            raise UDFError("Stencil requires a 2-D block")
        if boundary not in _BOUNDARIES:
            raise UDFError(f"unknown boundary policy {boundary!r}")
        self.block = block
        self.row = row
        self.col = col
        self.boundary = boundary

    # -- scalar access -----------------------------------------------------------
    def __call__(self, row_offset: int, col_offset: int = 0) -> float:
        """Value at ``(row + row_offset, col + col_offset)``."""
        r = self.row + row_offset
        c = self.col + col_offset
        rows, cols = self.block.shape
        if 0 <= r < rows and 0 <= c < cols:
            return self.block[r, c]
        if self.boundary == "error":
            raise UDFError(
                f"stencil access ({row_offset}, {col_offset}) at cell "
                f"({self.row}, {self.col}) leaves the block {self.block.shape}; "
                "declare a larger halo"
            )
        if self.boundary == "zero":
            return 0.0
        r = min(max(r, 0), rows - 1)
        c = min(max(c, 0), cols - 1)
        return self.block[r, c]

    # -- window access ------------------------------------------------------------
    def window(
        self,
        row_range: tuple[int, int] | int,
        col_range: tuple[int, int] | int = 0,
    ) -> np.ndarray:
        """Inclusive offset-range access, the paper's ``S(a:b, c:d)``.

        Each argument is either a single offset or an inclusive
        ``(low, high)`` offset pair.  Returns a view when the window lies
        inside the block; boundary policies "clamp"/"zero" return padded
        copies.
        """
        r_lo, r_hi = (row_range, row_range) if isinstance(row_range, int) else row_range
        c_lo, c_hi = (col_range, col_range) if isinstance(col_range, int) else col_range
        if r_lo > r_hi or c_lo > c_hi:
            raise UDFError(f"empty window range ({row_range}, {col_range})")
        rows, cols = self.block.shape
        r0, r1 = self.row + r_lo, self.row + r_hi
        c0, c1 = self.col + c_lo, self.col + c_hi
        if 0 <= r0 and r1 < rows and 0 <= c0 and c1 < cols:
            view = self.block[r0 : r1 + 1, c0 : c1 + 1]
            return view[0] if r0 == r1 else (view[:, 0] if c0 == c1 else view)
        if self.boundary == "error":
            raise UDFError(
                f"stencil window ({row_range}, {col_range}) at cell "
                f"({self.row}, {self.col}) leaves the block {self.block.shape}; "
                "declare a larger halo"
            )
        out = np.zeros((r1 - r0 + 1, c1 - c0 + 1), dtype=self.block.dtype)
        rr = np.arange(r0, r1 + 1)
        cc = np.arange(c0, c1 + 1)
        if self.boundary == "clamp":
            src = self.block[np.clip(rr, 0, rows - 1)[:, None], np.clip(cc, 0, cols - 1)[None, :]]
            out[:, :] = src
        else:  # zero
            r_in = (rr >= 0) & (rr < rows)
            c_in = (cc >= 0) & (cc < cols)
            out[np.ix_(r_in, c_in)] = self.block[rr[r_in][:, None], cc[c_in][None, :]]
        return out[0] if r0 == r1 else (out[:, 0] if c0 == c1 else out)

    def value(self) -> float:
        """The cell's own value (the paper's ``S(0)``)."""
        return self.block[self.row, self.col]

    def __repr__(self) -> str:
        return (
            f"<Stencil cell=({self.row}, {self.col}) "
            f"block={self.block.shape} boundary={self.boundary!r}>"
        )
