"""``das_search`` — find DAS files by time range or regex (paper §IV-A).

Two query types, exactly as the paper's command-line tool:

* **Type 1** (``-s``/``-c``): a start timestamp plus a count of files at
  or after it, e.g. ``das_search -s 170728224510 -c 2``.
* **Type 2** (``-e``): a regular expression matched against each file's
  timestamp, e.g. ``das_search -e '170728224[567]10'``.

Searches read only metadata (the file name carries the stamp; the
attribute footer is consulted when it does not), which is why search is
orders of magnitude cheaper than touching the data — the Fig. 6 result.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.dasfile import read_das_metadata
from repro.storage.metadata import parse_timestamp
from repro.utils.iostats import IOStats

_STAMP_RE = re.compile(r"(\d{12})")


@dataclass(frozen=True)
class DASFileInfo:
    """Catalog entry for one DAS file."""

    path: str
    timestamp: str
    n_channels: int = 0
    n_samples: int = 0

    @property
    def start_time(self):
        return parse_timestamp(self.timestamp)


def timestamp_from_filename(name: str) -> str | None:
    """Extract the 12-digit stamp from an acquisition file name."""
    match = _STAMP_RE.search(os.path.basename(name))
    return match.group(1) if match else None


def scan_directory(
    directory: str | os.PathLike,
    read_shapes: bool = False,
    iostats: IOStats | None = None,
) -> list[DASFileInfo]:
    """Catalog a directory of DAS files, sorted by timestamp.

    With ``read_shapes`` each file's metadata footer is opened to record
    the array shape (one metadata op per file); otherwise only file names
    are used — the fast path ``das_search`` takes.
    """
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        raise StorageError(f"not a directory: {directory!r}")
    infos: list[DASFileInfo] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".h5"):
            continue
        path = os.path.join(directory, name)
        stamp = timestamp_from_filename(name)
        if read_shapes or stamp is None:
            try:
                metadata, shape = read_das_metadata(path, iostats=iostats)
            except StorageError:
                continue  # not a DAS file; skip
            infos.append(
                DASFileInfo(
                    path=path,
                    timestamp=metadata.timestamp,
                    n_channels=shape[0],
                    n_samples=shape[1],
                )
            )
        else:
            infos.append(DASFileInfo(path=path, timestamp=stamp))
    infos.sort(key=lambda info: info.timestamp)
    return infos


def das_search(
    directory: str | os.PathLike | list[DASFileInfo],
    start: str | None = None,
    count: int | None = None,
    pattern: str | None = None,
    iostats: IOStats | None = None,
) -> list[DASFileInfo]:
    """Search DAS files by timestamp range (type 1) or regex (type 2).

    ``directory`` may be a path or a pre-built catalog from
    :func:`scan_directory`.  Exactly one query form must be given:
    ``start`` (+ optional ``count``) or ``pattern``.
    """
    if (start is None) == (pattern is None):
        raise StorageError(
            "give either start (+count) for a range query or pattern for a regex query"
        )
    if isinstance(directory, (str, os.PathLike)):
        catalog = scan_directory(directory, iostats=iostats)
    else:
        catalog = sorted(directory, key=lambda info: info.timestamp)

    if pattern is not None:
        try:
            regex = re.compile(pattern)
        except re.error as exc:
            raise StorageError(f"bad regex {pattern!r}: {exc}") from exc
        return [info for info in catalog if regex.search(info.timestamp)]

    parse_timestamp(start)  # validate
    selected = [info for info in catalog if info.timestamp >= start]
    if count is not None:
        if count < 0:
            raise StorageError("count must be >= 0")
        selected = selected[:count]
    return selected
