"""Traffic-noise / ambient-noise interferometry (paper Algorithm 3).

The most expensive stage of the Dou et al. (2017) imaging pipeline:
convert raw DAS noise into per-channel noise cross-correlations against
a *master channel* (virtual source).  Per channel:

    detrend → bandpass filtfilt → resample → FFT → correlate with Mfft

Three entry points:

* :func:`traffic_noise_udf` — Algorithm 3 verbatim, as an ArrayUDF UDF
  over a whole-channel stencil,
* :func:`interferometry_block` — the vectorised batch kernel (all
  channels at once; what the engines run),
* :func:`noise_correlation_functions` — the extended product: time-
  domain NCFs per channel (inverse FFT of the whitened cross-spectrum),
  which is what the geophysicist actually stacks into a virtual shot
  gather.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.arrayudf.stencil import Stencil
from repro.daslib import (
    abscorr,
    butter,
    detrend,
    fft,
    filtfilt,
    irfft,
    next_fast_len,
    resample,
    rfft,
    taper,
    whiten,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class InterferometryConfig:
    """Algorithm 3 parameters (defaults follow Dou et al.'s processing:
    0.5-12 Hz band, decimation to ~4x the high corner)."""

    fs: float = 500.0
    band: tuple[float, float] = (0.5, 12.0)
    filter_order: int = 4
    resample_q: int = 10  # keep 1/q of the samples
    master_channel: int = 0
    taper_fraction: float = 0.05
    whiten_spectra: bool = False

    def __post_init__(self) -> None:
        if self.fs <= 0:
            raise ConfigError("fs must be positive")
        lo, hi = self.band
        if not (0 < lo < hi < self.fs / 2):
            raise ConfigError(
                f"band {self.band} must lie inside (0, Nyquist={self.fs / 2})"
            )
        if self.resample_q < 1 or self.filter_order < 1:
            raise ConfigError("resample_q and filter_order must be >= 1")
        if self.fs / self.resample_q < 2 * hi:
            raise ConfigError(
                f"decimated rate {self.fs / self.resample_q} Hz would alias the "
                f"{hi} Hz corner"
            )

    @property
    def out_fs(self) -> float:
        return self.fs / self.resample_q

    def coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``Das_butter(n, fc)`` design of Algorithm 3."""
        return butter(self.filter_order, self.band, "bandpass", fs=self.fs)


def preprocess(data: np.ndarray, config: InterferometryConfig) -> np.ndarray:
    """The per-channel preprocessing chain (detrend → taper → bandpass →
    resample), vectorised over channels.  Input ``(channels, samples)``
    or 1-D."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    b, a = config.coefficients()
    stage = detrend(data, axis=-1)  # Das_detrend
    if config.taper_fraction > 0:
        stage = taper(stage, config.taper_fraction, axis=-1)
    stage = filtfilt(b, a, stage, axis=-1)  # Das_filtfilt
    stage = resample(stage, 1, config.resample_q, axis=-1)  # Das_resample
    return stage


def master_spectrum(
    data: np.ndarray, config: InterferometryConfig, nfft: int | None = None
) -> np.ndarray:
    """``Mfft``: the preprocessed, transformed master channel."""
    master = preprocess(data, config)[0]
    if nfft is None:
        nfft = next_fast_len(len(master))
    spec = fft(master, n=nfft)
    if config.whiten_spectra:
        spec = whiten(spec)
    return spec


def traffic_noise_udf(
    config: InterferometryConfig, master_fft: np.ndarray, series_len: int
) -> Callable[[Stencil], float]:
    """Algorithm 3 verbatim: the UDF over a whole-channel window.

    The stencil's cell is a channel's first sample; ``S(0, 0:W-1)``
    extracts the channel's series, exactly as the paper writes it.
    """
    W = series_len

    def TrafficNoiseUDF(S: Stencil) -> float:
        w0 = S.window(0, (0, W - 1))  # time series per channel
        w3 = preprocess(w0, config)[0]  # detrend/filtfilt/resample
        wfft = fft(w3, n=len(master_fft))  # Das_fft
        return float(abscorr(wfft, master_fft))  # vs the master channel

    return TrafficNoiseUDF


def interferometry_block(
    data: np.ndarray,
    config: InterferometryConfig,
    master_fft: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised Algorithm 3 over a ``(channels, samples)`` block.

    Returns one absolute correlation per channel.  ``master_fft`` may be
    precomputed (the engine computes it once per node — the shared state
    whose duplication is Fig. 8's memory story); otherwise the
    configured master channel of this block is used.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("interferometry needs a 2-D (channels, time) block")
    processed = preprocess(data, config)
    nfft = (
        len(master_fft)
        if master_fft is not None
        else next_fast_len(processed.shape[-1])
    )
    spectra = fft(processed, n=nfft, axis=-1)
    if config.whiten_spectra:
        spectra = whiten(spectra, axis=-1)
    if master_fft is None:
        master_fft = spectra[config.master_channel]
    return np.asarray(abscorr(spectra, master_fft[None, :], axis=-1))


def noise_correlation_functions(
    data: np.ndarray,
    config: InterferometryConfig,
    max_lag_seconds: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Time-domain noise cross-correlations against the master channel.

    Returns ``(lags_seconds, ncfs)`` with ``ncfs`` of shape
    ``(channels, n_lags)`` — the empirical Green's function estimates the
    interferometry pipeline feeds into dispersion imaging.  Spectra are
    whitened before correlation (standard ambient-noise practice).
    """
    data = np.asarray(data, dtype=np.float64)
    processed = preprocess(data, config)
    n = processed.shape[-1]
    nfft = next_fast_len(2 * n - 1)
    spectra = rfft(processed, n=nfft, axis=-1)
    spectra = whiten(spectra, axis=-1)
    master = spectra[config.master_channel]
    cross = spectra * np.conj(master)[None, :]
    cc = irfft(cross, n=nfft, axis=-1)
    # Reorder to lags -(n-1) .. +(n-1)
    cc = np.concatenate([cc[:, -(n - 1) :], cc[:, :n]], axis=-1)
    lags = np.arange(-(n - 1), n) / config.out_fs
    if max_lag_seconds is not None:
        keep = np.abs(lags) <= max_lag_seconds
        lags, cc = lags[keep], cc[:, keep]
    return lags, cc


# ---------------------------------------------------------------------------
# Algorithm 3 as an operator chain (the streaming execution core)
# ---------------------------------------------------------------------------


def preprocess_operators(config: InterferometryConfig) -> list:
    """The :func:`preprocess` chain as streaming operators
    (detrend → taper → filtfilt → resample), each with its overlap
    contract, runnable chunk-at-a-time by
    :class:`~repro.core.pipeline.StreamPipeline`."""
    from repro.core.operators import DecimateOp, DetrendOp, FiltFiltOp, TaperOp

    b, a = config.coefficients()
    ops: list = [DetrendOp()]
    if config.taper_fraction > 0:
        ops.append(TaperOp(config.taper_fraction))
    ops.append(FiltFiltOp(b, a))
    ops.append(DecimateOp(config.resample_q))
    return ops


def interferometry_operators(
    config: InterferometryConfig, master_fft: np.ndarray | None = None
) -> list:
    """The full Algorithm 3 graph: preprocessing map operators, the FFT
    accumulation sink, and the post-sink spectrum stages.

    The same graph serves both Fig. 9 execution styles:
    :func:`~repro.core.pipeline.run_materialized` runs it MATLAB-style,
    :class:`~repro.core.pipeline.StreamPipeline` streams it in
    overlap-aware chunks.
    """
    from repro.core.operators import CorrelateOp, FFTSink, WhitenOp

    ops = preprocess_operators(config)
    ops.append(FFTSink(nfft=len(master_fft) if master_fft is not None else None))
    if config.whiten_spectra:
        ops.append(WhitenOp())
    ops.append(
        CorrelateOp(master_fft=master_fft, master_channel=config.master_channel)
    )
    return ops


def streamed_interferometry(
    source: object,
    config: InterferometryConfig,
    chunk_samples: int | None = None,
    threads: int = 1,
    timer: object = None,
    iostats: object = None,
    policy: object = None,
):
    """Algorithm 3 over a chunk source, never holding the raw record.

    The master spectrum is computed once from the master channel (one
    channel of full-length data — the shared node-level state), then the
    whole chain streams through :class:`~repro.core.pipeline.StreamPipeline`.
    Returns a :class:`~repro.core.pipeline.PipelineResult` whose output
    matches :func:`interferometry_block` on the materialised array.
    ``policy`` is an optional :class:`~repro.faults.policy.FailurePolicy`
    governing per-chunk retry and gap masking.
    """
    from repro.core.pipeline import StreamPipeline
    from repro.storage.chunks import as_source

    src = as_source(source, fs=config.fs)
    mc = config.master_channel
    master = src.read_rows(mc, mc + 1, 0, src.n_samples)
    mfft = master_spectrum(master, config)
    pipe = StreamPipeline(interferometry_operators(config, master_fft=mfft))
    return pipe.run(
        src,
        chunk_samples=chunk_samples,
        threads=threads,
        timer=timer,
        iostats=iostats,
        fs=config.fs,
        policy=policy,
    )
