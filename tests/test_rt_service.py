"""Service-level tests: seam equivalence against a batch run, fault
injection, kill-and-resume, and the ``python -m repro.rt`` CLI."""

import json
import os

import numpy as np
import pytest

from repro.core.local_similarity import (
    LocalSimilarityConfig,
    local_similarity_block,
)
from repro.daslib import butter, filtfilt
from repro.rt import (
    DetectorConfig,
    EventPolicy,
    RTService,
    ServiceConfig,
    map_events,
)
from repro.rt.cli import main as rt_main
from repro.storage.dasfile import write_das_file
from repro.storage.metadata import DASMetadata
from repro.synthetic.generator import (
    drip_feed_dataset,
    fig1b_scene,
    synthesize_scene,
)

FS = 50.0
CHANNELS = 48
MINUTES = 4
SPM = 600  # 12 s per "minute" file keeps the test fast

SIM = LocalSimilarityConfig(
    half_window=25, channel_offset=1, half_lag=5, stride=25
)
DETECTOR = DetectorConfig(band=(0.5, 12.0), similarity=SIM)
POLICY = EventPolicy(threshold=0.4, min_fraction=0.25)
FAST = ServiceConfig(
    poll_interval=0.0,
    settle_seconds=0.0,
    stable_polls=1,
    checkpoint_every=1,
    max_retries=2,
)


@pytest.fixture
def scene():
    return fig1b_scene(
        n_channels=CHANNELS, fs=FS, minutes=MINUTES, samples_per_minute=SPM, seed=7
    )


def _drip_all(spool, scene, service, minutes=MINUTES):
    """Land files one at a time, draining the service between arrivals."""
    for _ in drip_feed_dataset(
        spool, minutes, scene=scene, samples_per_minute=SPM
    ):
        service.drain()
    service.drain()


def _event_keys(seam_events):
    return [
        (
            e.j_start,
            e.j_end,
            e.event.kind,
            e.event.channel_lo,
            e.event.channel_hi,
        )
        for e in seam_events
    ]


class TestSeamEquivalence:
    def test_dripped_files_match_batch_run(self, tmp_path, scene):
        service = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        _drip_all(tmp_path, scene, service)
        service.flush()
        streamed = service.sink.load()

        # One batch pass over the concatenated record.
        data = synthesize_scene(
            scene, MINUTES, samples_per_minute=SPM
        ).astype(np.float64)
        b, a = butter(4, (0.5, 12.0), "bandpass", fs=FS)
        sim_map, centers = local_similarity_block(
            filtfilt(b, a, data, axis=-1), SIM
        )
        batch = map_events(
            sim_map, centers, FS, POLICY, n_channels=CHANNELS, channel_lo=1
        )

        assert len(streamed) == len(batch) > 0
        assert _event_keys(streamed) == _event_keys(batch)
        for got, want in zip(streamed, batch):
            assert got.event.t_start == pytest.approx(want.event.t_start)
            assert got.event.t_end == pytest.approx(want.event.t_end)
            assert got.event.peak_similarity == pytest.approx(
                want.event.peak_similarity, abs=1e-6
            )
            assert got.event.n_cells == want.event.n_cells

    def test_an_event_straddles_a_file_boundary(self, tmp_path, scene):
        service = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        _drip_all(tmp_path, scene, service)
        service.flush()
        events = service.sink.load()
        boundaries_s = [k * SPM / FS for k in range(1, MINUTES)]
        straddling = [
            e
            for e in events
            for t in boundaries_s
            if e.event.t_start < t < e.event.t_end
        ]
        assert straddling, (
            "the scene must contain at least one event crossing a file "
            "seam for the equivalence test to mean anything"
        )

    def test_one_file_per_tick_equals_all_at_once(self, tmp_path, scene):
        # All files land before the service starts: same event log.
        list(
            drip_feed_dataset(
                tmp_path, MINUTES, scene=scene, samples_per_minute=SPM
            )
        )
        service = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        service.drain()
        service.flush()
        all_at_once = _event_keys(service.sink.load())

        spool2 = tmp_path / "one-at-a-time"
        spool2.mkdir()
        service2 = RTService(
            spool2, detector=DETECTOR, policy=POLICY, config=FAST
        )
        _drip_all(spool2, scene, service2)
        service2.flush()
        assert _event_keys(service2.sink.load()) == all_at_once


class TestKillAndResume:
    @pytest.mark.parametrize("kill_after", [1, 2, 3])
    def test_mid_record_kill_resumes_identically(
        self, tmp_path, scene, kill_after
    ):
        reference = tmp_path / "reference"
        reference.mkdir()
        ref_service = RTService(
            reference, detector=DETECTOR, policy=POLICY, config=FAST
        )
        _drip_all(reference, scene, ref_service)
        ref_service.flush()
        expected = _event_keys(ref_service.sink.load())

        spool = tmp_path / "killed"
        spool.mkdir()
        service = RTService(
            spool, detector=DETECTOR, policy=POLICY, config=FAST
        )
        drip = drip_feed_dataset(
            spool, MINUTES, scene=scene, samples_per_minute=SPM
        )
        done = 0
        for _ in drip:
            service.drain()
            done += 1
            if done == kill_after:
                break
        del service  # SIGKILL stand-in: no flush, no final checkpoint
        for _ in drip:
            pass  # the acquisition keeps writing while the service is down

        resumed = RTService(
            spool, detector=DETECTOR, policy=POLICY, config=FAST
        )
        resumed.drain()
        resumed.flush()
        assert _event_keys(resumed.sink.load()) == expected

    def test_resume_rejects_tampered_files(self, tmp_path, scene):
        service = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        drip = drip_feed_dataset(
            tmp_path, MINUTES, scene=scene, samples_per_minute=SPM
        )
        paths = []
        for path in drip:
            paths.append(path)
            service.drain()
            if len(paths) == 2:
                break
        del service
        # Rewrite the last processed file with different samples: the
        # checkpoint's tail digest must refuse to resume against it.
        meta = DASMetadata(
            sampling_frequency=FS,
            spatial_resolution=2.0,
            timestamp=os.path.basename(paths[-1])[8:-3],
            n_channels=CHANNELS,
        )
        write_das_file(
            paths[-1], np.zeros((CHANNELS, SPM), dtype=np.float32), meta
        )
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="digest"):
            RTService(tmp_path, detector=DETECTOR, policy=POLICY, config=FAST)

    @pytest.mark.parametrize("kind", ["vanish", "truncate"])
    def test_resume_survives_unreadable_tail_file(self, tmp_path, scene, kind):
        # A tail file lost or truncated between checkpoint and resume
        # degrades the resume (carried state dropped, reason recorded)
        # instead of killing the service.
        from repro.faults.inject import FaultInjector

        service = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        drip = drip_feed_dataset(
            tmp_path, MINUTES, scene=scene, samples_per_minute=SPM
        )
        paths = []
        for path in drip:
            paths.append(path)
            service.drain()
            if len(paths) == 2:
                break
        del service
        FaultInjector(seed=0).inject(kind, paths[-1])

        resumed = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        assert resumed.resume_error is not None
        assert resumed.files_done == []
        # The service still ingests and detects: feed the remaining files.
        for _ in drip:
            resumed.drain()
        resumed.drain()
        assert resumed.metrics.files_ingested == MINUTES - len(paths)
        resumed.flush()


class TestFaultInjection:
    def _good_file(self, spool, stamp, data=None):
        if data is None:
            rng = np.random.default_rng(int(stamp))
            data = rng.standard_normal((8, 400)).astype(np.float32)
        meta = DASMetadata(
            sampling_frequency=FS,
            spatial_resolution=2.0,
            timestamp=stamp,
            n_channels=data.shape[0],
        )
        path = os.path.join(spool, f"westSac_{stamp}.h5")
        write_das_file(path, data, meta)
        return path

    def _service(self, spool):
        return RTService(
            spool,
            detector=DetectorConfig(band=None, similarity=SIM),
            policy=POLICY,
            config=FAST,
        )

    def test_zero_length_file_quarantined_service_continues(self, tmp_path):
        service = self._service(tmp_path)
        bad = os.path.join(tmp_path, "westSac_170620100545.h5")
        open(bad, "wb").close()
        self._good_file(tmp_path, "170620100605")
        service.drain()
        assert bad in service.quarantine
        assert "short read" in service.quarantine.reasons[
            os.path.basename(bad)
        ]
        assert service.metrics.files_ingested == 1  # the good one
        assert service.metrics.files_quarantined == 1

    def test_truncated_file_quarantined_after_retries(self, tmp_path):
        service = self._service(tmp_path)
        good = self._good_file(tmp_path, "170620100545")
        bad = self._good_file(tmp_path, "170620100605")
        raw = open(bad, "rb").read()
        with open(bad, "wb") as handle:
            handle.write(raw[:60])  # header torn mid-write
        service.drain()
        assert bad in service.quarantine
        assert service.metrics.files_requeued == FAST.max_retries - 1
        assert service.metrics.files_ingested == 1
        assert good not in service.quarantine

    def test_file_deleted_mid_read_quarantined(self, tmp_path):
        service = self._service(tmp_path)
        doomed = self._good_file(tmp_path, "170620100545")
        survivor = self._good_file(tmp_path, "170620100605")
        announced = service.watcher.scan()
        assert doomed in announced
        for path in announced:
            service.queue.offer(path)
        os.remove(doomed)  # vanishes between announcement and read
        service.drain()
        assert doomed in service.quarantine
        assert "vanished" in service.quarantine.reasons[
            os.path.basename(doomed)
        ]
        assert service.metrics.files_ingested == 1
        assert survivor not in service.quarantine

    def test_geometry_mismatch_quarantined(self, tmp_path):
        service = self._service(tmp_path)
        self._good_file(tmp_path, "170620100545")
        rng = np.random.default_rng(1)
        odd = self._good_file(
            tmp_path,
            "170620100553",  # contiguous stamp: same record, wrong shape
            data=rng.standard_normal((5, 400)).astype(np.float32),
        )
        service.drain()
        assert odd in service.quarantine
        assert "does not match" in service.quarantine.reasons[
            os.path.basename(odd)
        ]
        assert service.metrics.files_ingested == 1

    def test_quarantine_survives_restart(self, tmp_path):
        service = self._service(tmp_path)
        bad = os.path.join(tmp_path, "westSac_170620100545.h5")
        open(bad, "wb").close()
        service.drain()
        assert bad in service.quarantine
        fresh = self._service(tmp_path)
        fresh.drain()  # must not retry the poison file
        assert fresh.metrics.files_ingested == 0
        assert fresh.metrics.files_quarantined == 0  # not re-quarantined


class TestServiceCatalog:
    def test_catalog_tracks_ingested_files(self, tmp_path, scene):
        service = RTService(
            tmp_path, detector=DETECTOR, policy=POLICY, config=FAST
        )
        _drip_all(tmp_path, scene, service)
        assert service.catalog is not None
        assert len(service.catalog) == MINUTES

    def test_same_mtime_tick_file_is_seen(self, tmp_path):
        # Regression: Catalog.stale() used strict '>' so a file landing in
        # the same mtime tick as the index write stayed invisible.
        from repro.storage.catalog import Catalog

        stamp = "170620100545"
        for k in range(2):
            meta = DASMetadata(
                sampling_frequency=FS,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=4,
            )
            write_das_file(
                os.path.join(tmp_path, f"westSac_{stamp}.h5"),
                np.zeros((4, 10), dtype=np.float32),
                meta,
            )
            stamp = "170620100645"
        catalog = Catalog.open(tmp_path)
        assert len(catalog) == 2
        # A third file written in the same tick: freeze the directory
        # mtime to the value the catalog recorded.
        meta = DASMetadata(
            sampling_frequency=FS,
            spatial_resolution=2.0,
            timestamp="170620100745",
            n_channels=4,
        )
        write_das_file(
            os.path.join(tmp_path, "westSac_170620100745.h5"),
            np.zeros((4, 10), dtype=np.float32),
            meta,
        )
        os.utime(tmp_path, (catalog.last_mtime, catalog.last_mtime))
        assert catalog.stale()  # '>=' admits the equal-mtime case
        reopened = Catalog.open(tmp_path)
        assert len(reopened) == 3

    def test_refresh_dedups_paths(self, tmp_path):
        from repro.storage.catalog import Catalog
        from repro.storage.search import DASFileInfo

        meta = DASMetadata(
            sampling_frequency=FS,
            spatial_resolution=2.0,
            timestamp="170620100545",
            n_channels=4,
        )
        path = os.path.join(tmp_path, "westSac_170620100545.h5")
        write_das_file(path, np.zeros((4, 10), dtype=np.float32), meta)
        catalog = Catalog.build(tmp_path)
        # Simulate a pre-fix index holding the same path twice.
        catalog.entries.append(
            DASFileInfo(
                path=path, timestamp="170620100545", n_channels=4, n_samples=10
            )
        )
        catalog.refresh()
        assert len(catalog) == 1


class TestCli:
    def test_watch_drain_then_status(self, tmp_path, scene, capsys):
        list(
            drip_feed_dataset(
                tmp_path, MINUTES, scene=scene, samples_per_minute=SPM
            )
        )
        code = rt_main(
            [
                "watch",
                str(tmp_path),
                "--drain",
                "--settle",
                "0",
                "--stable-polls",
                "1",
                "--poll",
                "0",
                "--threshold",
                "0.4",
                "--min-fraction",
                "0.25",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "event #" in out
        assert "files ingested" in out

        code = rt_main(["status", str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] > 0
        assert payload["quarantined"] == []

    def test_watch_max_ticks_checkpoints(self, tmp_path, scene):
        list(
            drip_feed_dataset(
                tmp_path, MINUTES, scene=scene, samples_per_minute=SPM
            )
        )
        code = rt_main(
            [
                "watch",
                str(tmp_path),
                "--max-ticks",
                "3",
                "--settle",
                "0",
                "--stable-polls",
                "1",
                "--poll",
                "0",
                "--quiet",
            ]
        )
        assert code == 0
        assert os.path.exists(
            os.path.join(tmp_path, ".das_rt_checkpoint.json")
        )
