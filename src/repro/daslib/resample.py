"""Rate conversion: polyphase ``resample`` (MATLAB semantics), ``decimate``
and the underlying ``upfirdn`` primitive — all from scratch.

``resample(x, p, q)`` changes the rate by the rational factor p/q using a
Kaiser-windowed sinc anti-aliasing FIR, with the group delay compensated
so the output is time-aligned with the input (what MATLAB's ``resample``
and the paper's ``Das_resample(X, 1, R)`` do).
"""

from __future__ import annotations

import math

import numpy as np

from repro.daslib.fft import irfft, next_fast_len, rfft
from repro.daslib.window import get_window


def design_resample_filter(p: int, q: int, half_width: int = 10, beta: float = 5.0) -> np.ndarray:
    """Kaiser-windowed sinc lowpass for p/q conversion (gain ``p``).

    The cutoff is ``min(1/p, 1/q)`` of the upsampled Nyquist; length is
    ``2 * half_width * max(p, q) + 1`` taps.
    """
    if p < 1 or q < 1:
        raise ValueError("p and q must be >= 1")
    max_rate = max(p, q)
    cutoff = 1.0 / max_rate  # in units of the upsampled Nyquist
    half_len = half_width * max_rate
    n = np.arange(-half_len, half_len + 1)
    taps = cutoff * np.sinc(cutoff * n)
    taps *= get_window(("kaiser", beta), len(taps))
    # Normalise DC gain to p: unity passband after the 1/p amplitude loss
    # that zero-stuffed upsampling introduces.
    return taps * (p / taps.sum())


def _fft_convolve(x: np.ndarray, taps: np.ndarray, axis: int = -1) -> np.ndarray:
    """Full linear convolution along ``axis`` via real FFT."""
    n_out = x.shape[axis] + len(taps) - 1
    nfft = next_fast_len(n_out)
    spec = rfft(x, nfft, axis=axis)
    tap_spec = rfft(taps, nfft)
    shape = [1] * x.ndim
    shape[axis] = len(tap_spec)
    out = irfft(spec * tap_spec.reshape(shape), nfft, axis=axis)
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(0, n_out)
    return out[tuple(slicer)]


def upfirdn(taps: np.ndarray, x: np.ndarray, up: int = 1, down: int = 1, axis: int = -1) -> np.ndarray:
    """Upsample by ``up``, FIR filter, downsample by ``down``.

    Matches scipy's output length ``ceil(((n-1)*up + len(taps)) / down)``.
    """
    if up < 1 or down < 1:
        raise ValueError("up and down must be >= 1")
    taps = np.asarray(taps, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    moved = np.moveaxis(x, axis, -1)
    n = moved.shape[-1]
    if up > 1:
        stuffed = np.zeros(moved.shape[:-1] + ((n - 1) * up + 1,))
        stuffed[..., ::up] = moved
    else:
        stuffed = moved
    full = _fft_convolve(stuffed, taps, axis=-1)
    out_len = -(-((n - 1) * up + len(taps)) // down)
    sampled = full[..., ::down][..., :out_len]
    if sampled.shape[-1] < out_len:
        pad = out_len - sampled.shape[-1]
        sampled = np.concatenate(
            [sampled, np.zeros(sampled.shape[:-1] + (pad,))], axis=-1
        )
    return np.moveaxis(sampled, -1, axis)


def resample(
    x: np.ndarray,
    p: int,
    q: int,
    axis: int = -1,
    half_width: int = 10,
    beta: float = 5.0,
) -> np.ndarray:
    """Resample ``x`` at ``p/q`` times the original rate (MATLAB style).

    Output length is ``ceil(n * p / q)``; the FIR group delay is
    compensated so features stay time-aligned.
    """
    if p < 1 or q < 1:
        raise ValueError("p and q must be >= 1")
    g = math.gcd(p, q)
    p, q = p // g, q // g
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    if p == q == 1:
        return x.copy()
    taps = design_resample_filter(p, q, half_width=half_width, beta=beta)
    half_len = (len(taps) - 1) // 2

    # Pre-pad with edge reflection to absorb the filter delay, then trim.
    # Delay in output samples: half_len / q (input upsampled by p).
    moved = np.moveaxis(x, axis, -1)
    out_len = -(-n * p // q)
    full = upfirdn(taps * 1.0, moved, up=p, down=1, axis=-1)
    # Compensate delay at the upsampled rate, then decimate by q.
    aligned = full[..., half_len : half_len + n * p]
    if aligned.shape[-1] < out_len * q:
        pad = out_len * q - aligned.shape[-1]
        aligned = np.concatenate(
            [aligned, np.zeros(aligned.shape[:-1] + (pad,))], axis=-1
        )
    sampled = aligned[..., ::q][..., :out_len]
    return np.moveaxis(sampled, -1, axis)


def decimate_chunk(
    x: np.ndarray,
    q: int,
    abs_start: int,
    half_width: int = 10,
    beta: float = 5.0,
    taps: np.ndarray | None = None,
) -> np.ndarray:
    """``resample(whole, 1, q)`` restricted to a chunk of the whole series.

    ``x`` holds samples ``[abs_start, abs_start + len)`` of a longer
    record along the last axis.  Whole-array ``resample(x, 1, q)`` emits
    one output per absolute input index ``j * q``, each a FIR dot product
    centred there; this computes exactly those outputs whose centre falls
    inside the chunk, keeping the global decimation phase regardless of
    where the chunk starts.  Outputs whose FIR support extends past the
    chunk edge see zeros there — identical to whole-array behaviour at
    the true record ends, approximate elsewhere (callers provide
    ``resample_halo`` samples of overlap and discard the fringe).
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    if abs_start < 0:
        raise ValueError("abs_start must be >= 0")
    x = np.asarray(x, dtype=np.float64)
    if q == 1:
        return x.copy()
    if taps is None:
        taps = design_resample_filter(1, q, half_width=half_width, beta=beta)
    half_len = (len(taps) - 1) // 2
    full = _fft_convolve(x, taps, axis=-1)
    aligned = full[..., half_len : half_len + x.shape[-1]]
    phase = (-abs_start) % q
    return aligned[..., phase::q]


def resample_halo(q: int, half_width: int = 10) -> int:
    """Input samples of context a streamed ``decimate_chunk`` needs per side."""
    if q < 1:
        raise ValueError("q must be >= 1")
    if q == 1:
        return 0
    return half_width * q + q


def decimate(x: np.ndarray, factor: int, axis: int = -1) -> np.ndarray:
    """Lowpass then keep every ``factor``-th sample."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return np.asarray(x, dtype=np.float64).copy()
    return resample(x, 1, factor, axis=axis)
