"""Ghost-zone construction by neighbour exchange.

ArrayUDF "can build a ghost zone for each data block to avoid
communication during the execution" (paper §II-B).  There are two ways
to fill the halo:

* **read it** — each rank's storage read covers ``halo`` extra rows
  (what :func:`repro.arrayudf.partition.partition_rows` plans), costing
  extra I/O but zero messages;
* **exchange it** — ranks read only their core rows and then swap edge
  rows with their neighbours (this module), costing two small messages
  but no redundant reads.

For DAS workloads the halo (a few channels) is tiny compared to the
block, so DASSA reads it; the exchange path exists for workloads with
deep stencils, and the ablation bench quantifies the crossover.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UDFError
from repro.simmpi.communicator import Communicator


def exchange_halos(
    comm: Communicator, core_block: np.ndarray, halo: int
) -> tuple[np.ndarray, int]:
    """Swap edge rows with rank neighbours; returns ``(padded, offset)``.

    ``core_block`` is this rank's core rows (no halo).  The result is the
    block extended by up to ``halo`` rows of neighbour data on each
    side; ``offset`` is the index of the first core row inside it (0 for
    rank 0, ``halo`` otherwise).  Edge ranks get no phantom rows — the
    caller's boundary policy handles the array ends, exactly as with
    read-in halos.

    Deadlock-free schedule: even ranks send first, odd ranks receive
    first.
    """
    if halo < 0:
        raise UDFError("halo must be >= 0")
    core_block = np.asarray(core_block)
    if core_block.ndim != 2:
        raise UDFError("halo exchange requires a 2-D block")
    if halo > 0 and comm.size > 1 and core_block.shape[0] < halo:
        raise UDFError(
            f"core block of {core_block.shape[0]} rows cannot donate a "
            f"halo of {halo}"
        )
    if halo == 0 or comm.size == 1:
        return core_block, 0

    up = comm.rank - 1 if comm.rank > 0 else None
    down = comm.rank + 1 if comm.rank < comm.size - 1 else None
    tag_down, tag_up = 71, 72

    from_up = None
    from_down = None

    def send_edges() -> None:
        if down is not None:
            comm.send(np.ascontiguousarray(core_block[-halo:]), down, tag_down)
        if up is not None:
            comm.send(np.ascontiguousarray(core_block[:halo]), up, tag_up)

    def recv_edges() -> None:
        nonlocal from_up, from_down
        if up is not None:
            from_up = comm.recv(up, tag_down)
        if down is not None:
            from_down = comm.recv(down, tag_up)

    if comm.rank % 2 == 0:
        send_edges()
        recv_edges()
    else:
        recv_edges()
        send_edges()

    parts = []
    offset = 0
    if from_up is not None:
        parts.append(np.asarray(from_up))
        offset = halo
    parts.append(core_block)
    if from_down is not None:
        parts.append(np.asarray(from_down))
    return np.concatenate(parts, axis=0), offset
