"""Reduction operators for reduce/allreduce.

Each operator works elementwise on numpy arrays and directly on Python
scalars, like MPI's predefined ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import MPIError


@dataclass(frozen=True)
class ReduceOp:
    """A named, associative, commutative binary reduction."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_all(self, contributions: list[Any]) -> Any:
        """Fold the operator over per-rank contributions (rank order)."""
        if not contributions:
            raise MPIError("cannot reduce zero contributions")
        acc = contributions[0]
        for value in contributions[1:]:
            acc = self.fn(acc, value)
        return acc

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


def _add(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.add(a, b)
    return a + b


def _mul(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.multiply(a, b)
    return a * b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


SUM = ReduceOp("SUM", _add)
PROD = ReduceOp("PROD", _mul)
MAX = ReduceOp("MAX", _max)
MIN = ReduceOp("MIN", _min)
