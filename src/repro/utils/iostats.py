"""I/O operation counters.

The paper's storage arguments are about *operation counts*: number of file
opens (each has a constant overhead on a disk file system), number of read
requests (IOPS pressure), and bytes moved.  ``IOStats`` is threaded through
the hdf5lite backend and the DASS readers so every experiment can report —
and every test can assert on — exact counts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Thread-safe accumulator of I/O operation counts."""

    opens: int = 0
    closes: int = 0
    seeks: int = 0
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_open(self) -> None:
        with self._lock:
            self.opens += 1

    def record_close(self) -> None:
        with self._lock:
            self.closes += 1

    def record_seek(self) -> None:
        with self._lock:
            self.seeks += 1

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def record_write(self, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes

    @property
    def requests(self) -> int:
        """Total I/O requests (reads + writes) — the IOPS-relevant count."""
        return self.reads + self.writes

    def merge(self, other: "IOStats") -> None:
        with self._lock:
            self.opens += other.opens
            self.closes += other.closes
            self.seeks += other.seeks
            self.reads += other.reads
            self.writes += other.writes
            self.bytes_read += other.bytes_read
            self.bytes_written += other.bytes_written

    def reset(self) -> None:
        with self._lock:
            self.opens = 0
            self.closes = 0
            self.seeks = 0
            self.reads = 0
            self.writes = 0
            self.bytes_read = 0
            self.bytes_written = 0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "opens": self.opens,
                "closes": self.closes,
                "seeks": self.seeks,
                "reads": self.reads,
                "writes": self.writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
            }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"IOStats(opens={snap['opens']}, reads={snap['reads']}, "
            f"writes={snap['writes']}, bytes_read={snap['bytes_read']}, "
            f"bytes_written={snap['bytes_written']})"
        )
