"""Crash-consistent JSON checkpoints for kill-and-resume.

A checkpoint is one JSON document: the list of fully-processed files
(with their sample counts), the seam scheduler's carried state (tail
digest + watermarks — the raw tail samples are *not* serialised, they
are re-read from the durable acquisition files on resume), the open
event run, and the queue position.  Writes go through a temp file and
``os.replace`` so a kill mid-write leaves the previous checkpoint
intact, never a torn one.

Two defences make a *corrupted* checkpoint recoverable rather than
fatal:

* every document carries a CRC32 of its canonical payload, so a torn
  or bit-flipped file is *detected* (truncation breaks the JSON, a
  parseable mutation breaks the CRC) — never silently resumed from;
* :meth:`CheckpointStore.save` keeps the previous generation as
  ``<path>.prev`` before promoting the new one, so detection has
  somewhere to fall back to.  The fallback is reported through
  :attr:`CheckpointStore.last_error` (a typed
  :class:`~repro.errors.CheckpointCorruptError`); only when *no*
  generation verifies does :meth:`load` raise.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.errors import CheckpointCorruptError, ReproError, StorageError
from repro.faults.policy import retry_call
from repro.storage.dasfile import DASFile
from repro.storage.gaps import GapMap

CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = ".das_rt_checkpoint.json"
PREVIOUS_SUFFIX = ".prev"


def _document_crc(document: dict) -> int:
    """CRC32 of the canonical (sorted-key, crc-free) JSON encoding."""
    body = {k: v for k, v in document.items() if k != "crc"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


class CheckpointStore:
    """Load/save/clear one double-generation atomic checkpoint file."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self.previous_path = self.path + PREVIOUS_SUFFIX
        #: Typed error recorded when :meth:`load` had to skip a corrupt
        #: generation (``None`` after a clean load).
        self.last_error: CheckpointCorruptError | None = None
        #: Which generation the last :meth:`load` returned:
        #: ``"primary"``, ``"previous"``, or ``None``.
        self.loaded_from: str | None = None

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, payload: dict) -> None:
        """Atomically persist ``payload`` (version + CRC stamped here),
        demoting the current checkpoint to the ``.prev`` generation.

        A kill at any point leaves at least one verifiable generation on
        disk: the temp file is fsynced before any rename, and the demote
        happens before the promote — a crash between the two renames
        loses only the *newest* state, never both.
        """
        document = {"version": CHECKPOINT_VERSION}
        document.update(payload)
        document["crc"] = _document_crc(document)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        if os.path.exists(self.path):
            os.replace(self.path, self.previous_path)
        os.replace(tmp, self.path)

    def _read_document(self, path: str) -> dict:
        """Parse + verify one generation; raises the typed error."""
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(path, f"torn json: {exc}")
        if not isinstance(document, dict):
            raise CheckpointCorruptError(path, "not a json object")
        if document.get("version") != CHECKPOINT_VERSION:
            raise CheckpointCorruptError(
                path, f"version {document.get('version')!r} unsupported"
            )
        # Documents written before the CRC existed load unverified.
        if "crc" in document and document["crc"] != _document_crc(document):
            raise CheckpointCorruptError(path, "crc mismatch")
        return document

    def load(self) -> dict | None:
        """The newest *verifiable* checkpoint, or ``None`` when none was
        ever taken.

        A corrupt primary falls back to the ``.prev`` generation with
        the typed failure kept in :attr:`last_error` — resuming from the
        previous checkpoint replays work, which the event sink's dedup
        absorbs; resuming from a *wrong* checkpoint would corrupt the
        catalog, which is why an unverifiable generation is never used.
        Raises :class:`~repro.errors.CheckpointCorruptError` only when a
        checkpoint exists but no generation verifies.
        """
        self.last_error = None
        self.loaded_from = None
        primary_error: CheckpointCorruptError | None = None
        if os.path.exists(self.path):
            try:
                document = self._read_document(self.path)
                self.loaded_from = "primary"
                return document
            except CheckpointCorruptError as exc:
                primary_error = exc
        if os.path.exists(self.previous_path):
            document = self._read_document(self.previous_path)  # may raise
            self.last_error = (
                primary_error
                if primary_error is not None
                else CheckpointCorruptError(
                    self.path, "primary checkpoint missing (torn promote)"
                )
            )
            self.loaded_from = "previous"
            return document
        if primary_error is not None:
            raise primary_error
        return None

    def clear(self) -> None:
        for path in (self.path, self.previous_path):
            if os.path.exists(path):
                os.remove(path)


def read_sample_range(
    files: list[tuple[str, int]],
    lo: int,
    hi: int,
    on_error: str = "raise",
    fill_value: float = float("nan"),
    gaps: GapMap | None = None,
    retries: int = 1,
    backoff: float = 0.0,
) -> np.ndarray:
    """Re-read raw samples ``[lo, hi)`` of the concatenated record.

    ``files`` lists ``(path, n_samples)`` in record order — the
    checkpoint's ``files_done``.  Only the overlapping slice of each
    file is read (partial reads through :class:`DASFile`), which is how a
    resume rebuilds the carried tail without re-reading whole files.

    Each file read is retried up to ``retries`` times (exponential
    ``backoff``) — the same degraded-read semantics as the parallel VCA
    readers.  With ``on_error="mask"``, a file that stays unreadable
    (corrupted, truncated, vanished) contributes a ``fill_value`` span
    recorded in ``gaps`` instead of killing the whole range read; with
    the default ``"raise"`` the typed error propagates.  At least one
    file must be readable in mask mode — the channel count comes from a
    real block.
    """
    if lo < 0 or hi < lo:
        raise StorageError(f"bad sample range [{lo}, {hi})")
    if on_error not in ("raise", "mask"):
        raise StorageError(f"on_error must be 'raise' or 'mask', got {on_error!r}")
    # (absolute_lo, width, array-or-None, path, reason)
    pieces: list[tuple[int, int, np.ndarray | None, str, str | None]] = []
    offset = 0
    for path, n_samples in files:
        n_samples = int(n_samples)
        file_lo, file_hi = offset, offset + n_samples
        offset = file_hi
        if file_hi <= lo or file_lo >= hi:
            continue
        a = max(lo, file_lo) - file_lo
        b = min(hi, file_hi) - file_lo

        def read_slice() -> np.ndarray:
            with DASFile(path) as handle:
                return np.asarray(handle.data[:, a:b], dtype=np.float64)

        try:
            block = retry_call(
                read_slice,
                retries=retries,
                backoff=backoff,
                retry_on=(ReproError, OSError, KeyError),
            )
            pieces.append((file_lo + a, b - a, block, path, None))
        except (ReproError, OSError, KeyError) as exc:
            if on_error == "raise":
                raise
            reason = f"{type(exc).__name__}: {exc}"
            pieces.append((file_lo + a, b - a, None, path, reason))
    if offset < hi:
        raise StorageError(
            f"checkpointed files cover {offset} samples but the carried "
            f"tail needs [{lo}, {hi})"
        )
    real = [block for _, _, block, _, _ in pieces if block is not None]
    if not real:
        if any(block is None for _, _, block, _, _ in pieces):
            raise StorageError(
                f"every file covering [{lo}, {hi}) is unreadable; cannot "
                "even determine the channel count"
            )
        n_channels = 0
        if files:
            with DASFile(files[0][0]) as handle:
                n_channels = handle.data.shape[0]
        return np.zeros((n_channels, 0))
    n_channels = real[0].shape[0]
    out: list[np.ndarray] = []
    for abs_lo, width, block, path, reason in pieces:
        if block is None:
            block = np.full((n_channels, width), fill_value)
            if gaps is not None:
                gaps.record(
                    path, abs_lo, abs_lo + width, reason, attempts=retries + 1
                )
        out.append(block)
    return np.concatenate(out, axis=1)
