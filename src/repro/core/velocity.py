"""Surface-wave velocity estimation from noise-correlation moveout.

The last step of the traffic-noise interferometry application: the
paper's pipeline "convert[s] the raw DAS data ... into shear-wave
velocity profiles" (§V-C).  The empirical Green's functions carry the
inter-channel travel times; fitting distance against peak lag yields
the propagation velocity along the fiber.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class VelocityFit:
    """Result of a moveout fit."""

    velocity: float  # metres/second
    intercept: float  # seconds (should be ~0 for a clean EGF)
    r_squared: float
    n_channels: int
    picks: np.ndarray  # (n_channels,) picked lag per channel (s)
    distances: np.ndarray  # (n_channels,) metres from the master


def pick_arrivals(
    ncfs: np.ndarray,
    lags: np.ndarray,
    min_lag: float = 0.0,
) -> np.ndarray:
    """Per-channel arrival pick: the lag of the envelope maximum at
    ``lag >= min_lag`` (causal branch of the EGF)."""
    ncfs = np.atleast_2d(np.asarray(ncfs, dtype=np.float64))
    if ncfs.shape[1] != len(lags):
        raise ConfigError("lag axis mismatch")
    causal = lags >= min_lag
    if not causal.any():
        raise ConfigError("no causal lags to pick from")
    sub = np.abs(ncfs[:, causal])
    picked = lags[causal][np.argmax(sub, axis=1)]
    return picked


def fit_moveout(
    ncfs: np.ndarray,
    lags: np.ndarray,
    channel_spacing: float,
    master_channel: int = 0,
    min_distance: float = 0.0,
) -> VelocityFit:
    """Least-squares velocity from distance-vs-picked-lag moveout.

    Channels closer than ``min_distance`` to the master are excluded
    (their lag is below the resolution of the correlation).
    """
    if channel_spacing <= 0:
        raise ConfigError("channel spacing must be positive")
    ncfs = np.atleast_2d(np.asarray(ncfs, dtype=np.float64))
    n_channels = ncfs.shape[0]
    if not (0 <= master_channel < n_channels):
        raise ConfigError("master channel out of range")
    picks = pick_arrivals(ncfs, lags)
    distances = np.abs(np.arange(n_channels) - master_channel) * channel_spacing
    keep = distances > max(min_distance, 0.0)
    if keep.sum() < 2:
        raise ConfigError("need at least two channels beyond min_distance")
    d = distances[keep]
    t = picks[keep]
    # t = d / v + b  -> fit slope 1/v.
    slope, intercept = np.polyfit(d, t, 1)
    if slope <= 0:
        raise ConfigError(
            f"non-physical moveout (slope {slope:.3e} s/m); no coherent arrival"
        )
    predicted = slope * d + intercept
    ss_res = float(np.sum((t - predicted) ** 2))
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return VelocityFit(
        velocity=1.0 / slope,
        intercept=float(intercept),
        r_squared=r_squared,
        n_channels=int(keep.sum()),
        picks=picks,
        distances=distances,
    )
