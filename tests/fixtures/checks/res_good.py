"""Checks fixture: resource-lifecycle — the blessed shapes.

Twins of ``res_bad.py``: ``with``-scoped handles, ``finally:`` release,
ownership transfer by returning the handle, blocking work moved off the
lock, ``Condition.wait`` (which releases its lock while sleeping), and
a string ``join`` that only looks like a thread join.  Expected: no
RES findings.
"""

import threading


def with_block(path):
    with open(path) as fh:
        return fh.read()


def closed_in_finally(path):
    fh = open(path)
    try:
        return fh.read()
    finally:
        fh.close()


def ownership_transfer(path):
    fh = open(path)
    return fh


class ChannelMonitor:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.sock = None
        self.rows = []

    def fetch(self):
        with self._lock:
            wanted = len(self.rows)
        return self.sock.recv(wanted)  # blocking read happens off-lock

    def wait_for_rows(self):
        with self._lock:
            while not self.rows:
                self._cond.wait()  # releases the lock while sleeping
            return list(self.rows)

    def label(self, parts):
        with self._lock:
            return ", ".join(parts)  # string join, not a thread join
