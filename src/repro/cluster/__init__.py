"""Machine model of an HPC system (a stand-in for NERSC Cori).

The paper's performance results are driven by a handful of first-order
machine properties:

* network point-to-point latency/bandwidth and tree-structured collectives
  (the "broadcast per file" cost of collective-per-file I/O),
* a parallel file system with a constant per-open overhead, an aggregate
  IOPS budget, and an aggregate bandwidth shared by all clients
  (the "IOPS pressure" and contention arguments),
* per-node memory (the pure-MPI master-channel duplication OOM of Fig. 8).

This package models exactly those properties.  Functional code runs for
real; *times* are computed by these models so the paper's 91–1456-node
experiments can be reproduced on a single core.
"""

from repro.cluster.machine import ClusterSpec, NodeSpec
from repro.cluster.memory import MemoryTracker
from repro.cluster.network import NetworkModel
from repro.cluster.presets import burst_buffer_cori, cori_haswell, laptop
from repro.cluster.storage import IORequest, StorageModel

__all__ = [
    "NodeSpec",
    "ClusterSpec",
    "NetworkModel",
    "StorageModel",
    "IORequest",
    "MemoryTracker",
    "cori_haswell",
    "burst_buffer_cori",
    "laptop",
]
