"""Tests for halo exchange: the communication route to ghost zones must
produce results identical to the read-halo route."""

import numpy as np
import pytest

from repro.arrayudf import apply_mt, partition_rows
from repro.arrayudf.ghost import exchange_halos
from repro.arrayudf.partition import partition_1d
from repro.errors import MPIError, UDFError
from repro.simmpi import run_spmd


class TestExchangeHalos:
    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    @pytest.mark.parametrize("halo", [0, 1, 2])
    def test_padded_blocks_match_global_array(self, size, halo):
        rows, cols = 20, 6
        data = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)

        def fn(comm):
            lo, hi = partition_1d(rows, comm.size, comm.rank)
            padded, offset = exchange_halos(comm, data[lo:hi], halo)
            return (lo, hi, padded, offset)

        result = run_spmd(fn, size)
        for lo, hi, padded, offset in result.results:
            want_lo = max(0, lo - halo) if halo and size > 1 else lo
            want_hi = min(rows, hi + halo) if halo and size > 1 else hi
            np.testing.assert_array_equal(padded, data[want_lo:want_hi])
            assert offset == lo - want_lo

    def test_exchange_equals_read_halo_stencil(self):
        """A ±1-row stencil evaluated with exchanged halos equals the
        read-halo evaluation and the single-block reference."""
        rows, cols, size, halo = 24, 8, 4, 1
        data = np.random.default_rng(0).normal(size=(rows, cols))
        udf = lambda s: s(-1, 0) + s(1, 0)  # noqa: E731
        padded_ref = np.pad(data, ((1, 1), (0, 0)), mode="edge")
        expected = padded_ref[:-2] + padded_ref[2:]

        def exchange_version(comm):
            lo, hi = partition_1d(rows, comm.size, comm.rank)
            padded, offset = exchange_halos(comm, data[lo:hi], halo)
            return apply_mt(
                padded,
                udf,
                threads=2,
                core_rows=(offset, offset + (hi - lo)),
                boundary="clamp",
            )

        def read_version(comm):
            part = partition_rows((rows, cols), comm.size, comm.rank, halo=halo)
            block = data[part.read_row_lo : part.read_row_hi]
            return apply_mt(
                block,
                udf,
                threads=2,
                core_rows=(part.core_offset, part.core_offset + part.core_rows),
                boundary="clamp",
            )

        out_exchange = np.concatenate(run_spmd(exchange_version, size).results, axis=0)
        out_read = np.concatenate(run_spmd(read_version, size).results, axis=0)
        np.testing.assert_allclose(out_exchange, out_read)
        np.testing.assert_allclose(out_exchange, expected)

    def test_single_rank_passthrough(self):
        data = np.ones((4, 3))

        def fn(comm):
            padded, offset = exchange_halos(comm, data, 2)
            return padded.shape, offset

        result = run_spmd(fn, 1)
        assert result.results[0] == ((4, 3), 0)

    def test_zero_halo_passthrough(self):
        def fn(comm):
            block = np.full((3, 2), comm.rank, dtype=np.float64)
            padded, offset = exchange_halos(comm, block, 0)
            return padded.shape[0], offset

        result = run_spmd(fn, 3)
        assert all(r == (3, 0) for r in result.results)

    def test_block_too_small_for_halo(self):
        def fn(comm):
            exchange_halos(comm, np.zeros((1, 2)), 3)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_non_2d_rejected(self):
        def fn(comm):
            exchange_halos(comm, np.zeros(5), 1)

        with pytest.raises(MPIError):
            run_spmd(fn, 2)

    def test_message_volume_smaller_than_read_overhead(self):
        """The design tradeoff: exchanged bytes are 2*halo*cols*itemsize
        per rank vs. the same amount of *redundant storage reads* for
        read-in halos."""
        rows, cols, size, halo = 64, 32, 4, 2
        data = np.zeros((rows, cols))

        def fn(comm):
            lo, hi = partition_1d(rows, comm.size, comm.rank)
            exchange_halos(comm, data[lo:hi], halo)
            sent = sum(
                nbytes for op, nbytes, _ in comm.tracer.schedule() if op == "send"
            )
            return sent

        result = run_spmd(fn, size)
        inner_rank_bytes = 2 * halo * cols * 8
        assert max(result.results) == inner_rank_bytes
