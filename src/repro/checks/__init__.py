"""repro.checks — static analysis and runtime sanitizers for the repro tree.

Four PRs in, the codebase is a genuinely concurrent system: ``apply_mt``
runs a retrying task-queue scheduler over threads, ``hdf5lite.cache``
shares a ``BlockCache``/``FilePool`` across readers, ``rt.ingest`` feeds
a bounded ``WorkQueue``, and ``simmpi`` ranks are threads.  The paper's
scaling claim (§IV-B) rests on that machinery staying thread-safe, so
this package is the correctness tooling that guards it:

* :mod:`repro.checks.locks` — lock discipline: attributes annotated
  ``# guarded-by: <lock-attr>`` may only be mutated inside a
  ``with self.<lock-attr>:`` block (or a method marked ``# holds-lock``);
* :mod:`repro.checks.taxonomy` — exception taxonomy: broad/bare
  excepts, ``raise`` of builtins where a :mod:`repro.errors` type
  exists, silently-swallowed handlers (supersedes ``faultcheck.sh``);
* :mod:`repro.checks.contracts` — operator contracts:
  :class:`~repro.core.pipeline.Operator` subclasses must declare
  consistent ``halo``/``decimate``/``channel_halo``/``stream_safe`` and
  override the right hooks;
* :mod:`repro.checks.api` — public API: ``__all__`` completeness and
  cross-layer import direction (``hdf5lite`` must never import ``rt``);
* :mod:`repro.checks.runtime` — an instrumented ``Lock``/``RLock``
  sanitizer for tests: lock-order-inversion detection and guarded
  attribute access without the lock held (zero overhead when not
  installed — production code uses plain ``threading`` locks).

Run ``python -m repro.checks`` from the repository root; see
``--help`` for ``--json`` / ``--baseline`` / ``--update-baseline`` /
``--only``.  The committed baseline lives in
``scripts/checks_baseline.json``.
"""

from repro.checks.baseline import Baseline, Waiver
from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, all_analyzers, register
from repro.checks.runner import load_project, run_analyzers
from repro.checks.runtime import LockSanitizer, SanitizerViolation
from repro.checks.source import Project, SourceModule

__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "LockSanitizer",
    "Project",
    "SanitizerViolation",
    "SourceModule",
    "Waiver",
    "all_analyzers",
    "load_project",
    "register",
    "run_analyzers",
]
