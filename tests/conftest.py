"""Shared fixtures: small synthetic DAS datasets on disk."""

import numpy as np
import pytest

from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds


@pytest.fixture
def das_dir(tmp_path):
    """Six tiny per-minute DAS files (16 channels x 120 samples, 2 Hz)."""
    directory = tmp_path / "das"
    directory.mkdir()
    rng = np.random.default_rng(42)
    stamp = "170620100545"
    paths = []
    blocks = []
    for _ in range(6):
        data = rng.normal(size=(16, 120)).astype(np.float32)
        metadata = DASMetadata(
            sampling_frequency=2.0,
            spatial_resolution=2.0,
            timestamp=stamp,
            n_channels=16,
        )
        path = str(directory / das_filename(stamp))
        write_das_file(path, data, metadata, channel_groups=False)
        paths.append(path)
        blocks.append(data)
        stamp = timestamp_add_seconds(stamp, 60)
    return {
        "dir": str(directory),
        "paths": paths,
        "blocks": blocks,
        "full": np.concatenate(blocks, axis=1),
        "stamps": [
            "170620100545",
            "170620100645",
            "170620100745",
            "170620100845",
            "170620100945",
            "170620101045",
        ],
    }


@pytest.fixture
def lock_sanitizer():
    """Install the runtime lock sanitizer (repro.checks.runtime) for one
    test: threading.Lock/RLock construct instrumented locks while the
    fixture is active, and every recorded violation is available on the
    yielded sanitizer."""
    from repro.checks.runtime import LockSanitizer

    sanitizer = LockSanitizer()
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
