"""Block partitioning with ghost zones.

ArrayUDF assigns each rank a block of the global array plus a *ghost
zone* — the halo of neighbouring cells its stencils reach — "to avoid
communication during the execution" (paper §II-B).  For DAS data the
natural partition is by channel rows: a rank owns a contiguous channel
block and reads it (plus ``halo`` extra channels on each side) in one
shot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UDFError


def partition_1d(n: int, size: int, rank: int) -> tuple[int, int]:
    """Even contiguous split of ``range(n)``: returns ``(lo, hi)``."""
    if size < 1 or not (0 <= rank < size):
        raise UDFError(f"bad partition: rank={rank} size={size}")
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


@dataclass(frozen=True)
class Partition:
    """One rank's share of a 2-D ``(rows, cols)`` array.

    ``core_*`` bounds delimit the cells this rank owns (and writes
    output for); ``read_*`` bounds include the ghost halo actually read
    from storage.  ``core_offset`` locates the core inside the read
    block.
    """

    rank: int
    size: int
    core_row_lo: int
    core_row_hi: int
    read_row_lo: int
    read_row_hi: int
    col_lo: int
    col_hi: int

    @property
    def core_rows(self) -> int:
        return self.core_row_hi - self.core_row_lo

    @property
    def read_rows(self) -> int:
        return self.read_row_hi - self.read_row_lo

    @property
    def cols(self) -> int:
        return self.col_hi - self.col_lo

    @property
    def core_offset(self) -> int:
        """Row index of the first core row inside the read block."""
        return self.core_row_lo - self.read_row_lo

    @property
    def read_shape(self) -> tuple[int, int]:
        return (self.read_rows, self.cols)

    @property
    def core_shape(self) -> tuple[int, int]:
        return (self.core_rows, self.cols)

    def read_nbytes(self, itemsize: int = 4) -> int:
        return self.read_rows * self.cols * itemsize


def partition_rows(
    shape: tuple[int, int],
    size: int,
    rank: int,
    halo: int = 0,
    col_range: tuple[int, int] | None = None,
) -> Partition:
    """Row-block partition of a ``(rows, cols)`` array with a row halo.

    The halo is clipped at the global array edges (stencils there use the
    boundary policy instead of ghost cells).
    """
    rows, cols = shape
    if halo < 0:
        raise UDFError("halo must be >= 0")
    lo, hi = partition_1d(rows, size, rank)
    col_lo, col_hi = col_range if col_range is not None else (0, cols)
    if not (0 <= col_lo <= col_hi <= cols):
        raise UDFError(f"bad column range {col_range} for {cols} columns")
    return Partition(
        rank=rank,
        size=size,
        core_row_lo=lo,
        core_row_hi=hi,
        read_row_lo=max(0, lo - halo),
        read_row_hi=min(rows, hi + halo),
        col_lo=col_lo,
        col_hi=col_hi,
    )
