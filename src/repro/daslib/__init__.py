"""DasLib — sequential, thread-safe DAS signal-processing library.

Reimplements the operations of the paper's Table II with MATLAB signal
toolbox semantics, from scratch on numpy:

=====================================  =========================================
Paper name                             Here
=====================================  =========================================
``Das_abscorr(c1, c2)``                :func:`abscorr`
``Das_detrend(X)``                     :func:`detrend`
``Das_butter(n, fc)``                  :func:`butter`
``Das_filtfilt(c1, c2, X)``            :func:`filtfilt`
``Das_resample(X, 1, R)``              :func:`resample`
``Das_interp1(X0, Y0, X)``             :func:`interp1`
``Das_fft(X)`` / ``Das_ifft(X)``       :func:`fft` / :func:`ifft`
=====================================  =========================================

plus the supporting kit the two case-study pipelines need (windows,
tapering, spectral whitening, cross-correlation, decimation, moving
statistics).  All functions are pure (no hidden state) and thread-safe,
which is what lets the hybrid engine run them concurrently from OpenMP-
style threads (paper §V-A).

The inner IIR recursion has a pure-numpy implementation; when scipy is
importable it is used as a faster compiled kernel (``engine="auto"``).
Tests cross-validate the numpy path against scipy.
"""

from repro.daslib.api import (
    Das_abscorr,
    Das_butter,
    Das_detrend,
    Das_fft,
    Das_filtfilt,
    Das_ifft,
    Das_interp1,
    Das_resample,
)
from repro.daslib.analytic import envelope, hilbert, instantaneous_phase
from repro.daslib.butterworth import butter
from repro.daslib.correlate import abscorr, xcorr, xcorr_freq
from repro.daslib.detrend import demean, detrend
from repro.daslib.fft import fft, fftfreq, ifft, irfft, next_fast_len, rfft, rfftfreq
from repro.daslib.filtfilt import filtfilt, settle_length
from repro.daslib.interp import interp1
from repro.daslib.lfilter import lfilter, lfilter_zi
from repro.daslib.moving import moving_average, sliding_windows
from repro.daslib.resample import (
    decimate,
    decimate_chunk,
    design_resample_filter,
    resample,
    resample_halo,
    upfirdn,
)
from repro.daslib.spectrogram import band_power, spectrogram, stft
from repro.daslib.whiten import whiten
from repro.daslib.window import get_window, taper, tukey_slice

__all__ = [
    # Table II MATLAB-style names
    "Das_abscorr",
    "Das_detrend",
    "Das_butter",
    "Das_filtfilt",
    "Das_resample",
    "Das_interp1",
    "Das_fft",
    "Das_ifft",
    # pythonic API
    "abscorr",
    "xcorr",
    "xcorr_freq",
    "detrend",
    "demean",
    "butter",
    "filtfilt",
    "settle_length",
    "lfilter",
    "lfilter_zi",
    "resample",
    "decimate",
    "decimate_chunk",
    "design_resample_filter",
    "resample_halo",
    "upfirdn",
    "interp1",
    "fft",
    "ifft",
    "rfft",
    "irfft",
    "fftfreq",
    "rfftfreq",
    "next_fast_len",
    "get_window",
    "taper",
    "tukey_slice",
    "whiten",
    "moving_average",
    "sliding_windows",
    "hilbert",
    "envelope",
    "instantaneous_phase",
    "stft",
    "spectrogram",
    "band_power",
]
