"""Window functions and cosine tapering."""

from __future__ import annotations

import numpy as np


def _hann(n: int) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    m = np.arange(n)
    return 0.5 - 0.5 * np.cos(2 * np.pi * m / (n - 1))


def _hamming(n: int) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    m = np.arange(n)
    return 0.54 - 0.46 * np.cos(2 * np.pi * m / (n - 1))


def _blackman(n: int) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    m = np.arange(n)
    return (
        0.42
        - 0.5 * np.cos(2 * np.pi * m / (n - 1))
        + 0.08 * np.cos(4 * np.pi * m / (n - 1))
    )


def _kaiser(n: int, beta: float) -> np.ndarray:
    if n == 1:
        return np.ones(1)
    m = np.arange(n)
    alpha = (n - 1) / 2.0
    arg = beta * np.sqrt(np.clip(1 - ((m - alpha) / alpha) ** 2, 0, None))
    return np.i0(arg) / np.i0(beta)


def _tukey(n: int, alpha: float = 0.5) -> np.ndarray:
    if alpha <= 0:
        return np.ones(n)
    if alpha >= 1:
        return _hann(n)
    if n == 1:
        return np.ones(1)
    edge = int(np.floor(alpha * (n - 1) / 2.0))
    window = np.ones(n)
    m = np.arange(edge + 1)
    ramp = 0.5 * (1 + np.cos(np.pi * (2.0 * m / (alpha * (n - 1)) - 1)))
    window[: edge + 1] = ramp
    window[n - edge - 1 :] = ramp[::-1]
    return window


def tukey_slice(n: int, alpha: float, start: int, stop: int) -> np.ndarray:
    """Values ``_tukey(n, alpha)[start:stop]`` without building the window.

    Element-for-element identical to slicing the full window (the same
    expressions are evaluated on the same indices), so streamed taper
    stages reproduce whole-array tapering exactly while touching only
    the samples of the current chunk.
    """
    if not (0 <= start <= stop <= n):
        raise ValueError(f"slice [{start}, {stop}) outside window of {n}")
    if alpha <= 0:
        return np.ones(stop - start)
    if alpha >= 1:
        return _hann(n)[start:stop]
    if n == 1:
        return np.ones(stop - start)
    edge = int(np.floor(alpha * (n - 1) / 2.0))
    idx = np.arange(start, stop)
    window = np.ones(stop - start)
    left = idx <= edge
    if left.any():
        m = idx[left].astype(np.float64)
        window[left] = 0.5 * (1 + np.cos(np.pi * (2.0 * m / (alpha * (n - 1)) - 1)))
    right = idx >= n - edge - 1
    if right.any():
        m = (n - 1 - idx[right]).astype(np.float64)
        window[right] = 0.5 * (1 + np.cos(np.pi * (2.0 * m / (alpha * (n - 1)) - 1)))
    return window


def get_window(name: str | tuple, n: int) -> np.ndarray:
    """Window by name: hann, hamming, blackman, boxcar, ``("kaiser", beta)``,
    ``("tukey", alpha)``."""
    if n < 1:
        raise ValueError("window length must be >= 1")
    if isinstance(name, tuple):
        kind, param = name
        if kind == "kaiser":
            return _kaiser(n, float(param))
        if kind == "tukey":
            return _tukey(n, float(param))
        raise ValueError(f"unknown parametric window {kind!r}")
    table = {
        "hann": _hann,
        "hanning": _hann,
        "hamming": _hamming,
        "blackman": _blackman,
        "boxcar": lambda k: np.ones(k),
        "rect": lambda k: np.ones(k),
    }
    if name not in table:
        raise ValueError(f"unknown window {name!r}")
    return table[name](n)


def taper(x: np.ndarray, fraction: float = 0.05, axis: int = -1) -> np.ndarray:
    """Apply a cosine (Tukey) taper to both ends of each series.

    ``fraction`` is the tapered portion per edge (ObsPy-style); the
    interferometry pipeline tapers before filtering to suppress edge
    ringing.
    """
    if not (0.0 <= fraction <= 0.5):
        raise ValueError("taper fraction must be in [0, 0.5]")
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[axis]
    window = _tukey(n, 2 * fraction)
    shape = [1] * x.ndim
    shape[axis] = n
    return x * window.reshape(shape)
