"""Read-side caching for hdf5lite: block cache + file-handle pool.

The paper's storage analysis (§IV, Fig. 6–7, Table 1) charges VCA reads for
two costs a production HDF5 stack largely amortises: per-file open overhead
and per-request IOPS pressure.  This module supplies the amortisation:

* :class:`BlockCache` — a byte-budgeted LRU cache over raw file blocks.
  Chunked datasets cache whole chunks ("chunk-granular"); contiguous
  datasets cache fixed-size pages of their data region ("page-granular").
  Repeated or block-local reads (the dominant DAS access pattern) then hit
  memory instead of the backend.
* :class:`FilePool` — an LRU pool of open read-only :class:`~repro.hdf5lite.file.File`
  handles keyed by absolute path, so VCA/LAV/parallel readers stop paying
  one open per source per read.

Both layers are thread-safe (simmpi ranks are threads) and both report
into :class:`repro.utils.iostats.IOStats` (``cache_hits``/``cache_misses``/
``cache_evictions`` and ``pool_hits``/``pool_misses``) so experiments can
assert on exactly how many requests the cache absorbed.

A ``byte_budget`` of 0 disables the cache entirely: every read takes the
uncached code path and the backend sees byte-for-byte the same requests as
before this layer existed.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import FormatError
from repro.utils.iostats import IOStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdf5lite.file import File

#: Default block-cache byte budget (64 MiB — a few minutes of scaled DAS data).
DEFAULT_BYTE_BUDGET = 64 * 2**20
#: Default page size for contiguous datasets (1 MiB keeps a whole scaled
#: one-minute dataset in one page while bounding read amplification).
DEFAULT_PAGE_SIZE = 1 << 20
#: Default maximum gap (bytes) across which adjacent element runs are
#: coalesced into one backend request.
DEFAULT_COALESCE_GAP = 4096
#: Default maximum number of simultaneously open pooled file handles.
DEFAULT_MAX_HANDLES = 64


@dataclass(frozen=True)
class CacheConfig:
    """Knobs for the read-side cache.

    ``byte_budget`` — total bytes of cached blocks kept resident; 0 disables
    caching (reads behave exactly as without a cache).
    ``page_size`` — granularity for contiguous-dataset pages.
    ``coalesce_gap`` — adjacent element runs separated by at most this many
    bytes are merged into a single backend request (the gap bytes are read
    and discarded); 0 merges only exactly-adjacent runs.
    """

    byte_budget: int = DEFAULT_BYTE_BUDGET
    page_size: int = DEFAULT_PAGE_SIZE
    coalesce_gap: int = DEFAULT_COALESCE_GAP

    def __post_init__(self) -> None:
        if self.byte_budget < 0:
            raise FormatError(f"byte_budget must be >= 0, got {self.byte_budget}")
        if self.page_size < 1:
            raise FormatError(f"page_size must be >= 1, got {self.page_size}")
        if self.coalesce_gap < 0:
            raise FormatError(f"coalesce_gap must be >= 0, got {self.coalesce_gap}")

    @property
    def enabled(self) -> bool:
        return self.byte_budget > 0


class BlockCache:
    """Byte-budgeted LRU cache mapping ``(file_key, kind, block_id)`` → bytes.

    Keys are opaque hashables built by the dataset layer; values are
    immutable ``bytes``.  A block larger than the whole budget is never
    admitted (the read still succeeds, it just isn't retained).
    """

    def __init__(self, config: CacheConfig | None = None, iostats: IOStats | None = None):
        self.config = config if config is not None else CacheConfig()
        self.iostats = iostats
        self._lock = threading.RLock()
        self._blocks: OrderedDict[Hashable, bytes] = OrderedDict()  # guarded-by: _lock
        self._current_bytes = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def _stats(self, iostats: IOStats | None) -> IOStats | None:
        return iostats if iostats is not None else self.iostats

    def get(self, key: Hashable, iostats: IOStats | None = None) -> bytes | None:
        """Look up a block; counts a hit or miss."""
        stats = self._stats(iostats)
        with self._lock:
            data = self._blocks.get(key)
            if data is not None:
                self._blocks.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if stats is not None:
            if data is not None:
                stats.record_cache_hit()
            else:
                stats.record_cache_miss()
        return data

    def put(self, key: Hashable, data: bytes, iostats: IOStats | None = None) -> None:
        """Insert a block, evicting LRU blocks to stay within budget."""
        if not self.enabled or len(data) > self.config.byte_budget:
            return
        stats = self._stats(iostats)
        evicted = 0
        with self._lock:
            old = self._blocks.pop(key, None)
            if old is not None:
                self._current_bytes -= len(old)
            self._blocks[key] = data
            self._current_bytes += len(data)
            while self._current_bytes > self.config.byte_budget:
                _, victim = self._blocks.popitem(last=False)
                self._current_bytes -= len(victim)
                evicted += 1
            self.evictions += evicted
        if evicted and stats is not None:
            stats.record_cache_eviction(evicted)

    def invalidate_file(self, file_key: str) -> int:
        """Drop every block belonging to ``file_key`` (after a write/truncate)."""
        with self._lock:
            doomed = [k for k in self._blocks if k[0] == file_key]
            for k in doomed:
                self._current_bytes -= len(self._blocks.pop(k))
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._current_bytes = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "blocks": len(self._blocks),
                "current_bytes": self._current_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"<BlockCache {s['blocks']} blocks / {s['current_bytes']}B "
            f"(budget {self.config.byte_budget}B) hits={s['hits']} "
            f"misses={s['misses']} evictions={s['evictions']}>"
        )


def normalize_file_key(path: str | os.PathLike) -> str:
    """Canonical cache/pool key for a file path."""
    return os.path.normpath(os.path.abspath(os.fspath(path)))


class FilePool:
    """LRU pool of shared, open, read-only ``File`` handles.

    ``acquire`` returns an open handle for a path, opening it only on first
    use (or after eviction).  Handles are owned by the pool: callers must
    not close them; the pool closes the least-recently-used handle when
    more than ``max_handles`` are open, and all of them on ``close_all``.

    A pool carries an optional shared :class:`BlockCache` and default
    :class:`~repro.utils.iostats.IOStats`; files it opens inherit both (and
    re-acquiring with a different ``iostats`` re-points the handle's
    accounting at the new collector).
    """

    def __init__(
        self,
        max_handles: int = DEFAULT_MAX_HANDLES,
        iostats: IOStats | None = None,
        cache: BlockCache | None = None,
        verify_checksums: bool = True,
    ):
        if max_handles < 1:
            raise FormatError(f"max_handles must be >= 1, got {max_handles}")
        self.max_handles = max_handles
        self.iostats = iostats
        self.cache = cache
        self.verify_checksums = bool(verify_checksums)
        self._lock = threading.RLock()
        self._handles: OrderedDict[str, "File"] = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def acquire(self, path: str | os.PathLike, iostats: IOStats | None = None) -> "File":
        """An open read-only handle for ``path`` (opened at most once)."""
        from repro.hdf5lite.file import File

        key = normalize_file_key(path)
        stats = iostats if iostats is not None else self.iostats
        with self._lock:
            handle = self._handles.get(key)
            if handle is not None and not handle.closed:
                self._handles.move_to_end(key)
                self.hits += 1
                if stats is not None:
                    stats.record_pool_hit()
                    handle.set_iostats(stats)
                return handle
            if handle is not None:  # closed behind our back; reopen
                del self._handles[key]
            self.misses += 1
            if stats is not None:
                stats.record_pool_miss()
            handle = File(
                key,
                "r",
                iostats=stats,
                cache=self.cache,
                pool=self,
                verify_checksums=self.verify_checksums,
            )
            self._handles[key] = handle
            while len(self._handles) > self.max_handles:
                _, victim = self._handles.popitem(last=False)
                victim.close()
                self.evictions += 1
            return handle

    def __len__(self) -> int:
        with self._lock:
            return len(self._handles)

    def open_paths(self) -> list[str]:
        with self._lock:
            return list(self._handles)

    def close_all(self) -> None:
        with self._lock:
            for handle in self._handles.values():
                handle.close()
            self._handles.clear()

    def __enter__(self) -> "FilePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FilePool {len(self)}/{self.max_handles} handles "
            f"hits={self.hits} misses={self.misses} evictions={self.evictions}>"
        )


def resolve_cache(cache: BlockCache | CacheConfig | None) -> BlockCache | None:
    """Normalise a user-supplied cache argument to a usable ``BlockCache``.

    Accepts an existing (shareable) :class:`BlockCache`, a
    :class:`CacheConfig` (a private cache is built from it), or ``None``.
    Disabled configurations (budget 0) resolve to ``None`` so readers take
    the exact uncached code path.
    """
    if cache is None:
        return None
    if isinstance(cache, CacheConfig):
        return BlockCache(cache) if cache.enabled else None
    if isinstance(cache, BlockCache):
        return cache if cache.enabled else None
    raise FormatError(f"cache must be a BlockCache, CacheConfig or None, got {cache!r}")
