"""Task-pool mapping over simulated ranks (mpi4py.futures analog).

``pool_map(fn, items, size)`` evaluates ``fn`` over ``items`` with a
master/worker schedule: rank 0 hands out item indices on demand, so
uneven task costs balance automatically — the pattern DASSA's future
"automatic system-setting selection" work would schedule with.

For embarrassingly parallel sweeps with uniform costs,
``static_map`` (round-robin, no master) has lower overhead.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.cluster.machine import ClusterSpec
from repro.errors import MPIError
from repro.simmpi.executor import run_spmd

_TAG_REQUEST = 101
_TAG_ASSIGN = 102
_TAG_RESULT = 103
_STOP = -1


def static_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    size: int,
    cluster: ClusterSpec | None = None,
) -> list[Any]:
    """Round-robin map: rank r evaluates items r, r+size, ...; results
    are allgathered and returned in item order."""
    items = list(items)

    def worker(comm):
        mine = {
            index: fn(items[index])
            for index in range(comm.rank, len(items), comm.size)
        }
        gathered = comm.allgather(mine)
        merged: dict[int, Any] = {}
        for part in gathered:
            merged.update(part)
        return [merged[i] for i in range(len(items))]

    result = run_spmd(worker, size, cluster=cluster)
    return result.results[0]


def pool_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    size: int,
    cluster: ClusterSpec | None = None,
) -> list[Any]:
    """Dynamic master/worker map (rank 0 is the dispatcher).

    Requires ``size >= 2`` (one master + workers).  Results are returned
    in item order regardless of completion order.
    """
    if size < 2:
        raise MPIError("pool_map needs size >= 2 (master + workers)")
    items = list(items)

    def worker(comm):
        if comm.rank == 0:
            results: dict[int, Any] = {}
            next_item = 0
            active = comm.size - 1
            while active > 0:
                worker_rank, payload = comm.recv(tag=_TAG_REQUEST)
                if payload is not None:
                    index, value = payload
                    results[index] = value
                if next_item < len(items):
                    comm.send(next_item, dest=worker_rank, tag=_TAG_ASSIGN)
                    next_item += 1
                else:
                    comm.send(_STOP, dest=worker_rank, tag=_TAG_ASSIGN)
                    active -= 1
            return [results[i] for i in range(len(items))]
        # workers
        payload = None
        while True:
            comm.send((comm.rank, payload), dest=0, tag=_TAG_REQUEST)
            assignment = comm.recv(source=0, tag=_TAG_ASSIGN)
            if assignment == _STOP:
                return None
            payload = (assignment, fn(items[assignment]))

    result = run_spmd(worker, size, cluster=cluster)
    return result.results[0]
