"""Unit tests for the flow engine: CFG construction, the worklist
dataflow solver, and project call-graph resolution."""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.checks.callgraph import build_callgraph, module_name_for
from repro.checks.cfg import build_cfg, node_calls, node_exprs
from repro.checks.dataflow import solve_forward
from repro.checks.source import Project, load_module
from repro.errors import ReproError


def cfg_for(src: str):
    fn = ast.parse(textwrap.dedent(src)).body[0]
    return build_cfg(fn)


def node_by_source(cfg, fragment: str):
    for node in cfg.stmt_nodes():
        if node.stmt is not None and fragment in ast.unparse(node.stmt).split("\n")[0]:
            return node
    raise AssertionError(f"no CFG node matching {fragment!r}")


def edges(cfg, uid):
    return {(e.target, e.kind) for e in cfg.succs[uid]}


# -- CFG construction --------------------------------------------------------

def test_if_else_branches_rejoin():
    cfg = cfg_for("""
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
    """)
    header = node_by_source(cfg, "if x")
    then = node_by_source(cfg, "a = 1")
    other = node_by_source(cfg, "a = 2")
    ret = node_by_source(cfg, "return a")
    assert (then.uid, "normal") in edges(cfg, header.uid)
    assert (other.uid, "normal") in edges(cfg, header.uid)
    assert (ret.uid, "normal") in edges(cfg, then.uid)
    assert (ret.uid, "normal") in edges(cfg, other.uid)


def test_loop_back_edge_and_exit():
    cfg = cfg_for("""
        def f(items):
            total = 0
            for item in items:
                total += item
            return total
    """)
    header = node_by_source(cfg, "for item")
    body = node_by_source(cfg, "total += item")
    assert (header.uid, "back") in edges(cfg, body.uid)
    ret = node_by_source(cfg, "return total")
    assert (ret.uid, "normal") in edges(cfg, header.uid)


def test_while_true_has_no_false_edge():
    cfg = cfg_for("""
        def f(q):
            while True:
                item = q.get()
            unreachable = 1
    """)
    header = node_by_source(cfg, "while True")
    targets = {
        e.target for e in cfg.succs[header.uid] if e.kind in ("normal",)
    }
    body = node_by_source(cfg, "item = q.get()")
    assert targets == {body.uid}


def test_exception_edges_route_to_handler_then_outward():
    cfg = cfg_for("""
        def f(path):
            try:
                data = parse(path)
            except ValueError:
                data = None
            return data
    """)
    risky = node_by_source(cfg, "data = parse")
    handler_targets = {
        e.target for e in cfg.succs[risky.uid] if e.kind == "exception"
    }
    # A narrow handler still lets other exception types escape outward.
    assert cfg.raise_exit in handler_targets
    handler_entries = handler_targets - {cfg.raise_exit}
    assert len(handler_entries) == 1
    body = node_by_source(cfg, "data = None")
    (entry,) = handler_entries
    assert (body.uid, "normal") in edges(cfg, entry)


def test_broad_handler_stops_outward_exception_edges():
    cfg = cfg_for("""
        def f(path):
            try:
                data = parse(path)
            except Exception:
                data = None
            return data
    """)
    risky = node_by_source(cfg, "data = parse")
    handler_targets = {
        e.target for e in cfg.succs[risky.uid] if e.kind == "exception"
    }
    assert cfg.raise_exit not in handler_targets


def test_finally_runs_on_both_continuations():
    cfg = cfg_for("""
        def f(path):
            fh = acquire(path)
            try:
                risky(fh)
            finally:
                fh.close()
            return True
    """)
    risky = node_by_source(cfg, "risky(fh)")
    close = node_by_source(cfg, "fh.close()")
    assert (close.uid, "exception") in edges(cfg, risky.uid)
    assert (close.uid, "normal") in edges(cfg, risky.uid)


def test_return_routes_through_finally_not_past_it():
    cfg = cfg_for("""
        def f(path):
            fh = open(path)
            try:
                return fh.read()
            finally:
                fh.close()
    """)
    ret = node_by_source(cfg, "return fh.read()")
    close = node_by_source(cfg, "fh.close()")
    assert edges(cfg, ret.uid) == {(close.uid, "normal"), (close.uid, "exception")}
    assert (cfg.exit, "normal") in edges(cfg, close.uid)


def test_try_header_carries_no_exception_edge():
    cfg = cfg_for("""
        def f(path):
            try:
                touch(path)
            finally:
                done()
    """)
    header = node_by_source(cfg, "try:")
    assert all(e.kind != "exception" for e in cfg.succs[header.uid])


def test_with_body_is_sequenced():
    cfg = cfg_for("""
        def f(path):
            with open(path) as fh:
                data = fh.read()
            return data
    """)
    wnode = node_by_source(cfg, "with open")
    body = node_by_source(cfg, "data = fh.read()")
    assert (body.uid, "normal") in edges(cfg, wnode.uid)


def test_node_exprs_prunes_nested_defs():
    stmt = ast.parse(textwrap.dedent("""
        def outer():
            return inner()
    """)).body[0]
    calls = [ast.unparse(c.func) for c in node_calls(stmt)]
    assert calls == []  # decorator-less def header owns no calls


# -- dataflow solver ---------------------------------------------------------

def test_solver_reaches_fixpoint_over_loop():
    cfg = cfg_for("""
        def f(items):
            seen = set()
            for item in items:
                seen.add(item)
            return seen
    """)
    # Gen-only analysis: collect the lines visited on each node's entry.
    def transfer(node, state):
        return state | {node.line} if node.stmt is not None else state

    state_in, state_out = solve_forward(
        cfg, transfer, init=frozenset(), join=lambda a, b: a | b,
    )
    ret = node_by_source(cfg, "return seen")
    assigned = node_by_source(cfg, "seen = set()")
    loop_body = node_by_source(cfg, "seen.add(item)")
    # Everything before the return (including loop body) flowed into it.
    assert {assigned.line, loop_body.line} <= set(state_in[ret.uid])


def test_solver_raises_on_divergence():
    cfg = cfg_for("""
        def f(x):
            while x:
                x = step(x)
    """)

    class Counter:
        n = 0

    def diverging(node, state):
        Counter.n += 1
        return frozenset({Counter.n})  # never stabilises

    with pytest.raises(ReproError):
        solve_forward(
            cfg, diverging, init=frozenset(), join=lambda a, b: a | b,
            max_iterations=50,
        )


# -- call graph --------------------------------------------------------------

def write_project(tmp_path: Path, files: dict[str, str]) -> Project:
    modules = []
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        modules.append(load_module(path, rel))
    return Project(root=tmp_path, modules=modules)


def test_module_name_for():
    assert module_name_for("src/repro/rt/shard.py") == "repro.rt.shard"
    assert module_name_for("src/repro/rt/__init__.py") == "repro.rt"
    assert module_name_for("benchmarks/bench_cache.py") is None


def test_calls_resolve_through_imports(tmp_path):
    project = write_project(tmp_path, {
        "src/repro/a.py": """
            def helper():
                return 1
        """,
        "src/repro/b.py": """
            from repro.a import helper

            def caller():
                return helper()
        """,
    })
    graph = build_callgraph(project)
    caller = graph.functions[("src/repro/b.py", "caller")]
    callees = {f.key for f in graph.callees(caller)}
    assert ("src/repro/a.py", "helper") in callees


def test_calls_resolve_through_alias_and_attribute(tmp_path):
    project = write_project(tmp_path, {
        "src/repro/a.py": """
            def helper():
                return 1
        """,
        "src/repro/b.py": """
            import repro.a as lib

            def caller():
                return lib.helper()
        """,
    })
    graph = build_callgraph(project)
    caller = graph.functions[("src/repro/b.py", "caller")]
    assert ("src/repro/a.py", "helper") in {f.key for f in graph.callees(caller)}


def test_self_method_and_nested_def_resolution(tmp_path):
    project = write_project(tmp_path, {
        "src/repro/c.py": """
            class Widget:
                def outer(self):
                    def inner():
                        return 2
                    return self.step() + inner()

                def step(self):
                    return 1
        """,
    })
    graph = build_callgraph(project)
    outer = graph.functions[("src/repro/c.py", "Widget.outer")]
    callees = {f.key[1] for f in graph.callees(outer)}
    assert "Widget.step" in callees
    assert "Widget.outer.<locals>.inner" in callees


def test_dependents_closure_is_transitive(tmp_path):
    project = write_project(tmp_path, {
        "src/repro/a.py": "def base():\n    return 0\n",
        "src/repro/b.py": "from repro.a import base\n\ndef mid():\n    return base()\n",
        "src/repro/c.py": "from repro.b import mid\n\ndef top():\n    return mid()\n",
        "src/repro/d.py": "def lone():\n    return 3\n",
    })
    graph = build_callgraph(project)
    closure = graph.dependents_closure({"src/repro/a.py"})
    assert closure == {"src/repro/a.py", "src/repro/b.py", "src/repro/c.py"}
    assert graph.dependents_closure({"src/repro/d.py"}) == {"src/repro/d.py"}
