"""End-to-end integration tests: the full DASSA path from acquisition
files on disk through search, merge, parallel read, engine execution,
and science output — cross-checked against single-process references.
"""

import numpy as np
import pytest

from repro.cluster import cori_haswell, laptop
from repro.core.detection import detect_events
from repro.core.interferometry import (
    InterferometryConfig,
    interferometry_block,
    master_spectrum,
)
from repro.core.local_similarity import LocalSimilarityConfig, local_similarity_block
from repro.simmpi import run_spmd
from repro.storage.parallel_read import (
    channel_block,
    read_vca_communication_avoiding,
)
from repro.storage.search import das_search
from repro.storage.vca import create_vca, open_vca
from repro.synthetic import fig1b_scene, generate_dataset, synthesize_scene

FS = 50.0
CHANNELS = 48
MINUTES = 4
SPM = 1500  # 30 s "minutes" at 50 Hz keep the test fast


@pytest.fixture(scope="module")
def acquisition(tmp_path_factory):
    root = tmp_path_factory.mktemp("e2e")
    scene = fig1b_scene(
        n_channels=CHANNELS, fs=FS, minutes=MINUTES, samples_per_minute=SPM
    )
    paths = generate_dataset(
        str(root / "data"), MINUTES, scene=scene, samples_per_minute=SPM
    )
    full = synthesize_scene(scene, MINUTES, samples_per_minute=SPM)
    return {"root": root, "dir": str(root / "data"), "paths": paths, "full": full}


class TestSearchMergeReadPipeline:
    def test_full_chain_reproduces_ground_truth(self, acquisition):
        """search → VCA → parallel comm-avoiding read == the scene."""
        hits = das_search(acquisition["dir"], start="170620100545", count=MINUTES)
        assert len(hits) == MINUTES
        vca_path = create_vca(
            str(acquisition["root"] / "merged.h5"), hits, assume_uniform=True
        )
        cluster = cori_haswell(4)

        def fn(comm):
            return read_vca_communication_avoiding(comm, vca_path, cluster.storage)

        result = run_spmd(fn, 4, cluster=cluster, ranks_per_node=1)
        assembled = np.concatenate(result.results, axis=0)
        np.testing.assert_allclose(assembled, acquisition["full"], atol=1e-6)

    def test_parallel_local_similarity_matches_serial(self, acquisition):
        """Distributed Algorithm 2 (rank-partitioned channels with ghost
        rows) equals the single-process kernel over the whole array."""
        config = LocalSimilarityConfig(half_window=10, half_lag=2, stride=25)
        full = acquisition["full"].astype(np.float64)
        reference, centers = local_similarity_block(full, config)

        size = 4
        halo = config.channel_halo

        def fn(comm):
            lo, hi = channel_block(CHANNELS, comm.size, comm.rank)
            read_lo = max(0, lo - halo)
            read_hi = min(CHANNELS, hi + halo)
            block = full[read_lo:read_hi]
            # Evaluate only channels whose +-K neighbours exist globally.
            eval_lo = max(lo, halo)
            eval_hi = min(hi, CHANNELS - halo)
            if eval_hi <= eval_lo:
                return np.zeros((0, len(centers)))
            local, _ = local_similarity_block(
                block,
                config,
                channel_range=(eval_lo - read_lo, eval_hi - read_lo),
            )
            return local

        result = run_spmd(fn, size)
        assembled = np.concatenate(result.results, axis=0)
        np.testing.assert_allclose(assembled, reference, atol=1e-10)

    def test_parallel_interferometry_matches_serial(self, acquisition):
        """Distributed Algorithm 3 with a broadcast master spectrum equals
        the single-process kernel."""
        config = InterferometryConfig(
            fs=FS, band=(0.5, 6.0), resample_q=2, master_channel=0
        )
        full = acquisition["full"].astype(np.float64)
        reference = interferometry_block(full, config)

        def fn(comm):
            # Rank 0 computes the master spectrum once and broadcasts it
            # (the HAEE node-shared master of Fig. 8).
            if comm.rank == 0:
                mfft = master_spectrum(full[0:1], config)
            else:
                mfft = None
            mfft = comm.bcast(mfft, root=0)
            lo, hi = channel_block(CHANNELS, comm.size, comm.rank)
            out = interferometry_block(full[lo:hi], config, master_fft=mfft)
            gathered = comm.gather(out, root=0)
            return np.concatenate(gathered) if comm.rank == 0 else None

        result = run_spmd(fn, 4)
        np.testing.assert_allclose(result.results[0], reference, atol=1e-9)

    def test_detection_on_pipeline_output(self, acquisition):
        """Events written to disk as per-minute files survive the whole
        storage+analysis chain and are still detectable."""
        hits = das_search(acquisition["dir"], pattern=r"\d{12}")
        vca_path = create_vca(str(acquisition["root"] / "det.h5"), hits)
        with open_vca(vca_path) as vca:
            data = vca.dataset.read().astype(np.float64)
        config = LocalSimilarityConfig(half_window=25, half_lag=5, stride=50)
        simi, centers = local_similarity_block(data, config)
        # Short scaled records have a high similarity noise floor (short
        # windows + lag search), so the pick threshold is lower than at
        # production scale.
        events = detect_events(
            simi,
            centers,
            fs=FS,
            threshold_sigmas=1.25,
            min_vehicle_speed=0.05,
            remove_channel_bias=True,
            split_array_wide=True,
            earthquake_span_fraction=0.5,
        )
        kinds = {e.kind for e in events}
        assert "earthquake" in kinds
        assert "persistent" in kinds

    def test_vca_metadata_round_trip(self, acquisition):
        hits = das_search(acquisition["dir"], start="170620100545", count=2)
        vca_path = create_vca(str(acquisition["root"] / "meta.h5"), hits)
        with open_vca(vca_path) as vca:
            assert vca.metadata.sampling_frequency == FS
            assert vca.metadata.n_channels == CHANNELS
            assert len(vca.source_timestamps) == 2
            assert vca.shape == (CHANNELS, 2 * SPM)
