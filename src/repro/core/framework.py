"""The DASSA facade — search, merge, and analyse in a few calls.

The paper lists "an API in Python ... to enable interactive DAS data
analysis" as future work; this class is that API::

    dassa = DASSA(workdir="scratch/")
    files = dassa.search("data/", start="170620100545", count=6)
    vca = dassa.merge(files)                       # VCA by default
    simi, centers = dassa.local_similarity(vca)    # Algorithm 2
    events = dassa.detect(simi, centers)
    corr = dassa.interferometry(vca)               # Algorithm 3
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.presets import laptop
from repro.core.detection import DetectedEvent, detect_events
from repro.core.interferometry import (
    InterferometryConfig,
    interferometry_block,
    master_spectrum,
    noise_correlation_functions,
)
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    local_similarity_block,
)
from repro.errors import ConfigError, StorageError
from repro.storage.rca import create_rca
from repro.storage.search import DASFileInfo, das_search
from repro.storage.vca import VCAHandle, create_vca, open_vca


@dataclass
class DASSAConfig:
    """Framework-level knobs."""

    cluster: ClusterSpec = field(default_factory=laptop)
    threads: int = 4
    workdir: str | None = None


class DASSA:
    """One entry point tying DASS (storage) and DASA (analysis) together."""

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        threads: int = 4,
        workdir: str | os.PathLike | None = None,
    ):
        if threads < 1:
            raise ConfigError("threads must be >= 1")
        self.config = DASSAConfig(
            cluster=cluster if cluster is not None else laptop(),
            threads=threads,
            workdir=os.fspath(workdir) if workdir is not None else None,
        )
        self._tmpdir: tempfile.TemporaryDirectory | None = None

    # -- storage side --------------------------------------------------------------
    def search(
        self,
        directory: str | os.PathLike,
        start: str | None = None,
        count: int | None = None,
        pattern: str | None = None,
    ) -> list[DASFileInfo]:
        """``das_search``: type-1 (start/count) or type-2 (regex) query."""
        return das_search(directory, start=start, count=count, pattern=pattern)

    def _workdir(self) -> str:
        if self.config.workdir is not None:
            os.makedirs(self.config.workdir, exist_ok=True)
            return self.config.workdir
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="dassa-")
        return self._tmpdir.name

    def merge(
        self,
        files: list[DASFileInfo | str],
        out_path: str | None = None,
        real: bool = False,
        assume_uniform: bool = False,
    ) -> str:
        """Merge files into a VCA (default) or an RCA (``real=True``)."""
        if not files:
            raise StorageError("no files to merge")
        if out_path is None:
            kind = "rca" if real else "vca"
            out_path = os.path.join(self._workdir(), f"merged_{kind}.h5")
        if real:
            return create_rca(out_path, files)
        return create_vca(out_path, files, assume_uniform=assume_uniform)

    def search_and_merge(
        self,
        directory: str | os.PathLike,
        start: str | None = None,
        count: int | None = None,
        pattern: str | None = None,
        real: bool = False,
    ) -> str:
        """One-shot: query then merge the hits."""
        hits = self.search(directory, start=start, count=count, pattern=pattern)
        if not hits:
            raise StorageError("search matched no files")
        return self.merge(hits, real=real)

    @staticmethod
    def _load(source: str | np.ndarray | VCAHandle) -> tuple[np.ndarray, float]:
        """Materialise a source and find its sampling rate."""
        if isinstance(source, np.ndarray):
            return np.asarray(source, dtype=np.float64), 0.0
        if isinstance(source, VCAHandle):
            return np.asarray(source.dataset.read(), dtype=np.float64), (
                source.metadata.sampling_frequency
            )
        with open_vca(source) as vca:
            return (
                np.asarray(vca.dataset.read(), dtype=np.float64),
                vca.metadata.sampling_frequency,
            )

    # -- analysis side -------------------------------------------------------------
    def local_similarity(
        self,
        source: str | np.ndarray | VCAHandle,
        config: LocalSimilarityConfig | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm 2 over a VCA path / handle / array.

        Returns ``(similarity_map, window_centers)``; the map covers
        channels K..C-K (array edges have no ±K neighbours).
        """
        data, _ = self._load(source)
        config = config if config is not None else LocalSimilarityConfig()
        return local_similarity_block(data, config)

    def detect(
        self,
        similarity: np.ndarray,
        centers: np.ndarray,
        fs: float,
        **kwargs,
    ) -> list[DetectedEvent]:
        """Pick and classify events on a similarity map."""
        return detect_events(similarity, centers, fs, **kwargs)

    def interferometry(
        self,
        source: str | np.ndarray | VCAHandle,
        config: InterferometryConfig | None = None,
    ) -> np.ndarray:
        """Algorithm 3: per-channel correlation against the master channel."""
        data, fs = self._load(source)
        if config is None:
            config = InterferometryConfig(fs=fs if fs > 0 else 500.0)
        mfft = master_spectrum(
            data[config.master_channel : config.master_channel + 1], config
        )
        return interferometry_block(data, config, master_fft=mfft)

    def noise_correlations(
        self,
        source: str | np.ndarray | VCAHandle,
        config: InterferometryConfig | None = None,
        max_lag_seconds: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Time-domain noise correlation functions (virtual shot gather)."""
        data, fs = self._load(source)
        if config is None:
            config = InterferometryConfig(fs=fs if fs > 0 else 500.0)
        return noise_correlation_functions(data, config, max_lag_seconds)

    def close(self) -> None:
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "DASSA":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
