"""Operator-contract analyzer (``OPC``).

The streaming executor trusts each :class:`~repro.core.pipeline.Operator`
subclass's declared geometry (``halo``/``decimate``/``channel_halo``)
and safety flags (``stream_safe``/``needs_prepass``); a wrong
declaration produces silently-wrong output at chunk seams rather than a
crash, which is exactly the kind of bug a linter should catch before a
test has to.  Subclass membership is resolved *by name across the whole
scanned project* (a class extending ``StaLtaOp`` in another module is
still an operator), with ``Operator``/``SinkOp`` themselves and any
direct aliases excluded.

Checks:

``OPC001`` — ``apply`` reads ``ctx.total`` but the class does not set
    ``stream_safe = False``: depending on the record's final length
    breaks incremental (unbounded-record) execution, where the total is
    unknown until flush.  A deliberately safe use (e.g. a pure
    right-edge clamp fed a growing total) carries
    ``# noqa: OPC001 - reason`` on the offending line.
``OPC002`` — ``needs_prepass = True`` without ``stream_safe = False``:
    a pre-pass reads the whole record, which is the definition of not
    stream-safe.
``OPC003`` — prepass hooks and the ``needs_prepass`` flag disagree
    (flag without the three hooks, or hooks without the flag).
``OPC004`` — a ``SinkOp`` subclass overrides Operator-side hooks
    (``apply``) or declares Operator-side geometry
    (``halo``/``decimate``/``channel_halo``/``stream_safe``).
``OPC005`` — an ``Operator`` subclass overrides sink-side hooks
    (``init``/``consume``/``finalize``).
``OPC006`` — literal contract values are malformed: ``halo`` not a
    2-tuple of ints ``>= 0``, ``decimate < 1``, ``channel_halo < 0``
    (class-level literals and literal ``self.X = ...`` in ``__init__``).
``OPC007`` — a ``SinkOp`` subclass missing any of
    ``init``/``consume``/``finalize``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["OperatorContractAnalyzer"]

_GEOMETRY_ATTRS = ("halo", "decimate", "channel_halo", "stream_safe")
_PREPASS_HOOKS = ("prepass_init", "prepass_update", "prepass_finalize")
_SINK_HOOKS = ("init", "consume", "finalize")


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _literal(node: ast.expr):
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return _NOT_LITERAL


_NOT_LITERAL = object()


class _ClassInfo:
    def __init__(self, mod: SourceModule, node: ast.ClassDef):
        self.mod = mod
        self.node = node
        self.name = node.name
        self.bases = _base_names(node)
        self.methods = {
            s.name: s for s in node.body if isinstance(s, ast.FunctionDef)
        }
        self.class_attrs: dict[str, object] = {}
        self.class_attr_lines: dict[str, int] = {}
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target] if isinstance(stmt.target, ast.Name) else []
                value = stmt.value
            else:
                continue
            for t in targets:
                self.class_attrs[t.id] = _literal(value)
                self.class_attr_lines[t.id] = stmt.lineno

    def init_literal_attrs(self) -> dict[str, tuple[object, int]]:
        """Literal ``self.X = <literal>`` assignments in ``__init__``."""
        out: dict[str, tuple[object, int]] = {}
        init = self.methods.get("__init__")
        if init is None:
            return out
        self_name = init.args.args[0].arg if init.args.args else "self"
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            for t in node.targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == self_name
                ):
                    value = _literal(node.value)
                    if value is not _NOT_LITERAL:
                        out[t.attr] = (value, node.lineno)
        return out


def _resolve_kinds(classes: dict[str, list[_ClassInfo]]) -> dict[int, str]:
    """Map id(_ClassInfo) -> "operator" | "sink" by walking base-name
    chains to a root named ``Operator`` / ``SinkOp``."""
    kinds: dict[int, str] = {}

    def kind_of(info: _ClassInfo, seen: frozenset[str]) -> str | None:
        cached = kinds.get(id(info))
        if cached is not None:
            return cached
        for base in info.bases:
            if base == "Operator":
                kinds[id(info)] = "operator"
                return "operator"
            if base == "SinkOp":
                kinds[id(info)] = "sink"
                return "sink"
            if base in seen:
                continue
            for parent in classes.get(base, []):
                k = kind_of(parent, seen | {base})
                if k is not None:
                    kinds[id(info)] = k
                    return k
        return None

    for infos in classes.values():
        for info in infos:
            kind_of(info, frozenset({info.name}))
    return kinds


@register
class OperatorContractAnalyzer(Analyzer):
    name = "operator-contract"
    description = "Operator/SinkOp subclasses declare a consistent contract"
    codes = {
        "OPC001": "apply() depends on ctx.total without stream_safe = False",
        "OPC002": "needs_prepass without stream_safe = False",
        "OPC003": "needs_prepass flag and prepass hooks disagree",
        "OPC004": "SinkOp subclass declares Operator-side hooks/geometry",
        "OPC005": "Operator subclass declares sink-side hooks",
        "OPC006": "malformed literal contract value",
        "OPC007": "SinkOp subclass missing init/consume/finalize",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        classes: dict[str, list[_ClassInfo]] = {}
        for mod in project.modules:
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, []).append(_ClassInfo(mod, node))
        kinds = _resolve_kinds(classes)
        for infos in classes.values():
            for info in infos:
                # the class map is whole-program; reporting honours scope
                if not project.in_scope(info.mod):
                    continue
                kind = kinds.get(id(info))
                view = _FlatView(info, classes)
                if kind == "operator":
                    yield from self._check_operator(info, view)
                elif kind == "sink":
                    yield from self._check_sink(info, view)

    # -- operator side ------------------------------------------------------
    def _check_operator(self, info: _ClassInfo, view: "_FlatView") -> Iterator[Finding]:
        mod, cls = info.mod, info.node
        stream_safe = view.attr("stream_safe")
        declared_unsafe = stream_safe is False
        needs_prepass = view.attr("needs_prepass")

        apply_fn = info.methods.get("apply")
        if apply_fn is not None and not declared_unsafe:
            for line in _ctx_total_reads(apply_fn):
                if mod.is_suppressed(line, "OPC001"):
                    continue
                yield self.finding(
                    "OPC001", mod, line,
                    f"{cls.name}.apply reads ctx.total but {cls.name} does "
                    f"not declare stream_safe = False",
                    hint="set stream_safe = False, or justify with "
                         "`# noqa: OPC001 - reason` if total is only a "
                         "right-edge clamp",
                )

        if needs_prepass is True and not declared_unsafe:
            if not mod.node_suppressed(cls, "OPC002"):
                yield self.finding(
                    "OPC002", mod,
                    info.class_attr_lines.get("needs_prepass", cls.lineno),
                    f"{cls.name} needs a pre-pass (whole-record read) but "
                    f"does not declare stream_safe = False",
                    hint="a pre-pass is by definition not stream-safe",
                )

        has_hooks = [h for h in _PREPASS_HOOKS if view.has_method(h)]
        local_hooks = [h for h in _PREPASS_HOOKS if h in info.methods]
        if needs_prepass is True and len(has_hooks) < len(_PREPASS_HOOKS):
            missing = [h for h in _PREPASS_HOOKS if not view.has_method(h)]
            yield self.finding(
                "OPC003", mod, cls.lineno,
                f"{cls.name} sets needs_prepass but does not override "
                f"{', '.join(missing)}",
            )
        elif local_hooks and needs_prepass is not True:
            yield self.finding(
                "OPC003", mod, info.methods[local_hooks[0]].lineno,
                f"{cls.name} overrides {', '.join(local_hooks)} but never "
                f"sets needs_prepass = True (the runner will not call them)",
            )

        for hook in _SINK_HOOKS:
            if hook in info.methods:
                yield self.finding(
                    "OPC005", mod, info.methods[hook].lineno,
                    f"{cls.name} is an Operator but overrides sink hook "
                    f"{hook!r} (did you mean to subclass SinkOp?)",
                )

        yield from self._check_literals(info)

    def _check_literals(self, info: _ClassInfo) -> Iterator[Finding]:
        mod, cls = info.mod, info.node
        values: dict[str, tuple[object, int]] = {}
        for attr in ("halo", "decimate", "channel_halo"):
            if attr in info.class_attrs:
                values[attr] = (
                    info.class_attrs[attr], info.class_attr_lines[attr]
                )
        for attr, pair in info.init_literal_attrs().items():
            if attr in ("halo", "decimate", "channel_halo"):
                values[attr] = pair

        for attr, (value, line) in sorted(values.items()):
            if value is _NOT_LITERAL:
                continue
            bad: str | None = None
            if attr == "halo":
                if not (
                    isinstance(value, tuple)
                    and len(value) == 2
                    and all(isinstance(v, int) and v >= 0 for v in value)
                ):
                    bad = f"halo must be a (left, right) pair of ints >= 0, got {value!r}"
            elif attr == "decimate":
                if not (isinstance(value, int) and value >= 1):
                    bad = f"decimate must be an int >= 1, got {value!r}"
            elif attr == "channel_halo":
                if not (isinstance(value, int) and value >= 0):
                    bad = f"channel_halo must be an int >= 0, got {value!r}"
            if bad is not None and not mod.is_suppressed(line, "OPC006"):
                yield self.finding("OPC006", mod, line, f"{cls.name}: {bad}")

    # -- sink side ----------------------------------------------------------
    def _check_sink(self, info: _ClassInfo, view: "_FlatView") -> Iterator[Finding]:
        mod, cls = info.mod, info.node
        if "apply" in info.methods:
            yield self.finding(
                "OPC004", mod, info.methods["apply"].lineno,
                f"{cls.name} is a SinkOp but overrides 'apply' — sinks "
                f"consume chunks via init/consume/finalize",
            )
        for attr in _GEOMETRY_ATTRS:
            if attr in info.class_attrs:
                yield self.finding(
                    "OPC004", mod, info.class_attr_lines[attr],
                    f"{cls.name} is a SinkOp but declares Operator "
                    f"geometry {attr!r} (the runner ignores it on sinks)",
                )
        missing = [h for h in _SINK_HOOKS if not view.has_method(h)]
        if missing and not mod.node_suppressed(cls, "OPC007"):
            yield self.finding(
                "OPC007", mod, cls.lineno,
                f"{cls.name} must implement {', '.join(missing)}",
            )


class _FlatView:
    """A class flattened over its (name-resolved) ancestor chain, so a
    subclass of a concrete operator inherits contract declarations and
    hooks instead of being re-flagged for not redeclaring them.  The
    ``Operator``/``SinkOp`` roots are excluded — their hook stubs must
    not count as implementations."""

    def __init__(self, info: _ClassInfo, classes: dict[str, list[_ClassInfo]]):
        self._methods: set[str] = set()
        self._attrs: dict[str, object] = {}
        seen: set[str] = set()
        stack = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            self._methods.update(current.methods)
            for attr, value in current.class_attrs.items():
                self._attrs.setdefault(attr, value)  # nearest definition wins
            for base in current.bases:
                if base in ("Operator", "SinkOp"):
                    continue
                stack.extend(classes.get(base, []))

    def has_method(self, name: str) -> bool:
        return name in self._methods

    def attr(self, name: str, default: object = _NOT_LITERAL) -> object:
        return self._attrs.get(name, default)


def _ctx_total_reads(apply_fn: ast.FunctionDef) -> Iterator[int]:
    args = apply_fn.args.args
    ctx_name = args[2].arg if len(args) >= 3 else "ctx"
    for node in ast.walk(apply_fn):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "total"
            and isinstance(node.value, ast.Name)
            and node.value.id == ctx_name
        ):
            yield node.lineno
