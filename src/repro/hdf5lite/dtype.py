"""Dtype registry for hdf5lite.

Datasets are stored as raw little-endian C-ordered buffers; the metadata
footer records a dtype token.  Only fixed-width numeric types are allowed —
the same restriction the DAS acquisition format has in practice.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

#: dtype tokens permitted in a file (little-endian, fixed width).
SUPPORTED_DTYPES = {
    "<i1",
    "<i2",
    "<i4",
    "<i8",
    "<u1",
    "<u2",
    "<u4",
    "<u8",
    "<f4",
    "<f8",
    "<c8",
    "<c16",
}

_ALIASES = {
    "|i1": "<i1",
    "|u1": "<u1",
    "int8": "<i1",
    "int16": "<i2",
    "int32": "<i4",
    "int64": "<i8",
    "uint8": "<u1",
    "uint16": "<u2",
    "uint32": "<u4",
    "uint64": "<u8",
    "float32": "<f4",
    "float64": "<f8",
    "complex64": "<c8",
    "complex128": "<c16",
}


def dtype_token(dtype: object) -> str:
    """Canonical on-disk token for a numpy dtype (or dtype-like).

    >>> dtype_token(np.float32)
    '<f4'
    """
    dt = np.dtype(dtype)
    token = dt.str
    token = _ALIASES.get(token, token)
    if token not in SUPPORTED_DTYPES:
        raise FormatError(
            f"dtype {dt} is not supported by hdf5lite; "
            f"use one of {sorted(SUPPORTED_DTYPES)}"
        )
    return token


def token_dtype(token: str) -> np.dtype:
    """Numpy dtype for an on-disk token."""
    token = _ALIASES.get(token, token)
    if token not in SUPPORTED_DTYPES:
        raise FormatError(f"unknown dtype token {token!r}")
    return np.dtype(token)


def itemsize(token: str) -> int:
    return token_dtype(token).itemsize
