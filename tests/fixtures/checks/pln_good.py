"""Clean fixtures for the planner-geometry (PLN) analyzer."""


class Operator:  # stand-in root; the analyzer resolves by name
    pass


class PlainOp(Operator):
    """Default algebra throughout: nothing for the planner to distrust."""

    name = "plain"

    def apply(self, data, ctx):
        return data


class AffineOp(Operator):
    """Literal geometry with the default interval methods — the common
    case; the defaults derive the grid from these declarations."""

    name = "affine"
    halo = (16, 16)
    decimate = 4

    def apply(self, data, ctx):
        return data[..., :: self.decimate]


class CustomGridOp(Operator):
    """A strided window grid: overrides the whole trio plus out_total,
    keeps decimate = 1 and halo folded into in_needed."""

    name = "custom-grid"

    def __init__(self, stride):
        self.stride = stride

    def out_total(self, total_in):
        return max(0, total_in // self.stride)

    def out_core(self, lo, hi):
        return lo // self.stride, hi // self.stride

    def out_full(self, a, b):
        return self.out_core(a, b)

    def in_needed(self, lo, hi):
        return lo * self.stride, hi * self.stride

    def apply(self, data, ctx):
        return data[..., :: self.stride]


class ComputedHaloOp(Operator):
    """A non-literal halo (computed from parameters) is planner data, not
    a redundancy — even alongside an in_needed override."""

    name = "computed-halo"

    def __init__(self, width):
        self.width = int(width)
        self.halo = (self.width, self.width)

    def out_total(self, total_in):
        return total_in

    def out_core(self, lo, hi):
        return lo, hi

    def out_full(self, a, b):
        return a, b

    def in_needed(self, lo, hi):
        return lo - self.width, hi + self.width

    def apply(self, data, ctx):
        return data


class DerivedGridOp(CustomGridOp):
    """Inherits a complete custom grid — nothing to re-flag."""

    name = "derived-grid"
