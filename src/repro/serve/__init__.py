"""repro.serve — multi-tenant read-serving over DAS archives.

The consumer-facing vertical on top of the whole stack: many viewers
(and downstream monitors) continuously pulling time×channel windows,
zoomed-out previews, and event feeds off one VCA archive — the
"watch seismic like a movie" story.

* :mod:`repro.serve.server` — :class:`DataServer` /
  :class:`ServeSession`: requests lower through the query planner onto
  pooled, block-cached, degraded-read-safe strided backend reads.
* :mod:`repro.serve.pyramid` — precomputed decimation pyramids (built
  with the core ``DecimateOp``, stored as codec+CRC hdf5lite datasets)
  and per-request level selection, so a zoomed-out preview costs
  O(output pixels) rather than O(raw samples).
* :mod:`repro.serve.admission` — per-tenant token-bucket quotas on
  requests and backend bytes, a bounded waiting room with typed
  rejection, and per-tenant latency reservoirs.

Quickstart::

    from repro.serve import DataServer, build_pyramid

    build_pyramid("archive.h5")           # once, after creating the VCA
    with DataServer("archive.h5") as server:
        session = server.session("alice")
        pv = session.preview(0, server.n_samples, width=1200)
        win = session.read_window(10_000, 20_000, channels=(32, 64))

Layering: serve sits above core/storage/rt/hdf5lite and nothing imports
it back (enforced by the ``repro.checks`` API003 layer rules).
"""

from repro.serve.admission import (
    Admission,
    AdmissionController,
    TenantMetrics,
    TenantQuota,
    TokenBucket,
)
from repro.serve.pyramid import (
    PyramidConfig,
    build_pyramid,
    compute_level,
    level_slice,
    select_level,
)
from repro.serve.server import (
    DataServer,
    Preview,
    ServeConfig,
    ServeSession,
    WindowResult,
)

__all__ = [
    "Admission",
    "AdmissionController",
    "TenantMetrics",
    "TenantQuota",
    "TokenBucket",
    "PyramidConfig",
    "build_pyramid",
    "compute_level",
    "level_slice",
    "select_level",
    "DataServer",
    "Preview",
    "ServeConfig",
    "ServeSession",
    "WindowResult",
]
