"""Table I — comparison between RCA and VCA.

Paper's table:

             Extra space   Construction   Duplication      Parallel I/O
             overhead      overhead       across groups    friendly
    RCA      100%          High           Exist            Yes
    VCA      0%            Low            No               NO (fixed by
                                                           comm-avoiding)

Each property is *measured* here from real files and instrumented I/O,
not asserted by fiat.
"""

import os

from repro.storage.rca import create_rca
from repro.storage.search import scan_directory
from repro.storage.vca import create_vca
from repro.utils.iostats import IOStats


def test_table1(benchmark, tmp_path, scaled_dataset, report):
    benchmark.pedantic(
        _table1, args=(tmp_path, scaled_dataset, report), rounds=1, iterations=1
    )


def _table1(tmp_path, scaled_dataset, report):
    catalog = scan_directory(scaled_dataset["dir"])
    source_bytes = sum(os.path.getsize(info.path) for info in catalog)

    # --- construction cost + extra space ------------------------------
    vca_stats, rca_stats = IOStats(), IOStats()
    vca_path = create_vca(str(tmp_path / "t1_v.h5"), catalog, iostats=vca_stats)
    rca_path = create_rca(str(tmp_path / "t1_r.h5"), catalog, iostats=rca_stats)
    vca_extra = os.path.getsize(vca_path) / source_bytes
    rca_extra = os.path.getsize(rca_path) / source_bytes
    vca_moved = vca_stats.bytes_read + vca_stats.bytes_written
    rca_moved = rca_stats.bytes_read + rca_stats.bytes_written

    # --- duplication across groups ------------------------------------
    # Merge the same files into two different "groups" (analyses): RCA
    # copies the data twice; two VCAs still reference the originals.
    create_vca(str(tmp_path / "t1_v2.h5"), catalog[:24])
    create_rca(str(tmp_path / "t1_r2.h5"), catalog[:24])
    vca2 = os.path.getsize(str(tmp_path / "t1_v2.h5"))
    rca2 = os.path.getsize(str(tmp_path / "t1_r2.h5"))
    # Raw array bytes of the half set (excludes per-file metadata, which
    # an RCA legitimately does not copy).
    half_bytes = 24 * scaled_dataset["channels"] * scaled_dataset["spm"] * 4

    # --- parallel I/O friendliness -------------------------------------
    # Requests needed for one rank to read a channel block: the RCA's
    # contiguous row block is 1 request; the raw VCA touches every file.
    from repro.hdf5lite import File

    stats_rca = IOStats()
    with File(rca_path, "r", iostats=stats_rca) as f:
        before = stats_rca.reads
        f.dataset("RCA")[0:8, :]
        rca_requests = stats_rca.reads - before
    stats_vca = IOStats()
    with File(vca_path, "r", iostats=stats_vca) as f:
        before = stats_vca.reads
        f.dataset("VCA")[0:8, :]
        vca_requests = stats_vca.reads - before

    n = len(catalog)
    lines = [
        "Table I - RCA vs VCA (all measured)",
        "",
        f"{'':<28} {'RCA':>12} {'VCA':>12}   paper",
        f"{'extra space / source':<28} {rca_extra:>11.0%} {vca_extra:>11.2%}   100% vs 0%",
        f"{'construction bytes moved':<28} {rca_moved:>12,} {vca_moved:>12,}   High vs Low",
        f"{'second group extra bytes':<28} {rca2:>12,} {vca2:>12,}   Exist vs No",
        f"{'reads for 1-rank block':<28} {rca_requests:>12} {vca_requests:>12}   Yes vs NO",
        "",
        f"({n} scaled source files, {source_bytes:,} source bytes)",
    ]
    report("table1_rca_vca", lines)

    # Shape assertions = the table's claims.
    # (>= 0.95: the RCA holds a full copy of the data; the tiny shortfall
    # is the per-source-file header/metadata overhead it does not copy.)
    assert rca_extra >= 0.95  # RCA duplicates everything
    assert vca_extra < 0.05  # VCA is metadata-only
    assert rca_moved > 10 * max(1, vca_moved)  # construction overhead
    assert rca2 >= half_bytes  # duplication across groups exists for RCA
    assert vca2 < half_bytes / 10  # ... but not for VCA
    assert rca_requests == 1  # RCA: contiguous block, parallel friendly
    assert vca_requests >= n  # raw VCA: one read per file minimum
