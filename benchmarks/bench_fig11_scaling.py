"""Fig. 11 — strong and weak scaling of DASSA, 91 → 1456 nodes.

Paper result (8 threads/node, DASSA's comm-avoiding storage engine):
~100 % parallel efficiency for compute in both strong (1.9 TB fixed) and
weak (171 MB/core) settings; I/O efficiency trends downward as more
nodes issue more requests against a fixed set of Lustre OSTs; the best
overall efficiency lands near 364 nodes.  A burst-buffer storage tier
(higher IOPS) flattens the decay (§VI-E's remedy) — included as the
ablation the paper discusses.
"""

import pytest

from repro.arrayudf.engine import HybridEngine, WorkloadSpec
from repro.cluster import burst_buffer_cori, cori_haswell

NODES = (91, 182, 364, 728, 1456)
THREADS = 8
STRONG = WorkloadSpec(
    total_bytes=int(1.9 * 2**40),
    n_files=2880,
    master_bytes=30000 * 1440 * 2 * 8,
)


def weak_workload(nodes: int) -> WorkloadSpec:
    per_core = 171 * 2**20
    total = per_core * nodes * THREADS
    return WorkloadSpec(
        total_bytes=total,
        n_files=max(1, total // (700 * 2**20)),
        master_bytes=STRONG.master_bytes,
    )


def _scaling_rows(make_cluster):
    """Per-node-count (compute, io) times for strong and weak settings."""
    rows = {}
    for nodes in NODES:
        cluster = make_cluster(nodes)
        engine = HybridEngine(cluster, nodes, threads_per_rank=THREADS)
        strong = engine.estimate(STRONG, read_pattern="comm-avoiding")
        weak = engine.estimate(weak_workload(nodes), read_pattern="comm-avoiding")
        assert strong.failed is None and weak.failed is None
        rows[nodes] = {
            "strong": (strong.compute_time, strong.read_time + strong.write_time),
            "weak": (weak.compute_time, weak.read_time + weak.write_time),
        }
    return rows


def efficiencies(rows, mode):
    base_nodes = NODES[0]
    base_compute, base_io = rows[base_nodes][mode]
    out = {}
    for nodes in NODES:
        compute, io = rows[nodes][mode]
        if mode == "strong":
            scale = nodes / base_nodes
            out[nodes] = (
                100.0 * base_compute / (compute * scale),
                100.0 * base_io / (io * scale),
            )
        else:
            out[nodes] = (100.0 * base_compute / compute, 100.0 * base_io / io)
    return out


def test_fig11_estimate_benchmark(benchmark):
    rows = benchmark.pedantic(_scaling_rows, args=(cori_haswell,), rounds=3, iterations=1)
    assert set(rows) == set(NODES)


def test_fig11_table(benchmark, report):
    benchmark.pedantic(_fig11_table, args=(report,), rounds=1, iterations=1)


def _fig11_table(report):
    rows = _scaling_rows(cori_haswell)
    bb_rows = _scaling_rows(burst_buffer_cori)
    lines = [
        "Fig. 11 - DASSA scaling, 8 threads/node (parallel efficiency %)",
        "",
        f"{'nodes':>6} | {'strong comp':>11} {'strong I/O':>10} | "
        f"{'weak comp':>9} {'weak I/O':>8} | {'weak I/O (BB)':>13}",
    ]
    strong_eff = efficiencies(rows, "strong")
    weak_eff = efficiencies(rows, "weak")
    bb_weak_eff = efficiencies(bb_rows, "weak")
    for nodes in NODES:
        lines.append(
            f"{nodes:>6} | {strong_eff[nodes][0]:>11.1f} {strong_eff[nodes][1]:>10.1f} | "
            f"{weak_eff[nodes][0]:>9.1f} {weak_eff[nodes][1]:>8.1f} | "
            f"{bb_weak_eff[nodes][1]:>13.1f}"
        )

    lines += [
        "",
        "paper: compute efficiency ~100%; I/O efficiency trends downward;",
        "       364 nodes gives the best efficiency; a Burst Buffer",
        "       (higher IOPS) addresses the I/O downtrend.",
    ]
    report("fig11_scaling", lines)

    # Compute efficiency ~100% at every scale, both settings.
    for nodes in NODES:
        assert strong_eff[nodes][0] == pytest.approx(100.0, abs=2.0)
        assert weak_eff[nodes][0] == pytest.approx(100.0, abs=2.0)
    # I/O efficiency decays monotonically toward the largest scales.
    assert strong_eff[1456][1] < strong_eff[364][1] <= 110.0
    assert weak_eff[1456][1] < weak_eff[91][1] + 1e-9
    # The burst buffer flattens the weak-scaling I/O decay.
    assert bb_weak_eff[1456][1] > weak_eff[1456][1]
