"""hdf5lite — a from-scratch hierarchical array file format.

A minimal but real substitute for HDF5/h5py, providing exactly what the
DASS storage engine needs:

* hierarchical **groups** with key-value **attributes** (the two-level DAS
  metadata model of the paper's Fig. 4),
* N-dimensional **datasets** with contiguous or chunked layout,
* **hyperslab** partial reads/writes that touch only the required byte
  ranges (every contiguous run costs one seek + one read, all counted by
  :class:`repro.utils.IOStats`),
* **virtual datasets** that stitch regions of datasets in other files into
  one logical array — the mechanism behind the Virtually Concatenated
  Array (VCA),
* per-chunk **codecs** (lossless and tolerance-bounded lossy, see
  :mod:`repro.hdf5lite.codecs`) selected by a ``repro:codec`` attribute,
  composing with CRC32 sidecars (checksum the encoded bytes) and the
  block cache (admit decoded chunks).

File layout (version 1)::

    [header: magic, version, meta_offset, meta_len]
    [raw dataset bytes ...]
    [metadata: JSON-encoded group tree]

The metadata footer is rewritten on close; datasets are appended to the
data region.
"""

from repro.hdf5lite.attributes import Attributes
from repro.hdf5lite.cache import BlockCache, CacheConfig, FilePool
from repro.hdf5lite.checksum import add_checksums, checksum_dataset, checksum_info
from repro.hdf5lite.codecs import (
    CODEC_ATTR,
    Codec,
    DeltaZlibCodec,
    QuantizeCodec,
    TransposeZlibCodec,
    available_codecs,
    register_codec,
    resolve_codec,
)
from repro.hdf5lite.dataset import Dataset
from repro.hdf5lite.file import File, Group
from repro.hdf5lite.hyperslab import (
    Hyperslab,
    coalesce_runs,
    contiguous_runs,
    intersect,
    normalize_selection,
    selection_shape,
)
from repro.hdf5lite.pyramid import (
    PYRAMID_GROUP,
    PyramidLevel,
    pyramid_levels,
    pyramid_problems,
)
from repro.hdf5lite.virtual import VirtualSource

__all__ = [
    "File",
    "Group",
    "Dataset",
    "Attributes",
    "Hyperslab",
    "VirtualSource",
    "BlockCache",
    "CacheConfig",
    "FilePool",
    "add_checksums",
    "checksum_dataset",
    "checksum_info",
    "CODEC_ATTR",
    "Codec",
    "DeltaZlibCodec",
    "TransposeZlibCodec",
    "QuantizeCodec",
    "available_codecs",
    "register_codec",
    "resolve_codec",
    "normalize_selection",
    "selection_shape",
    "coalesce_runs",
    "contiguous_runs",
    "intersect",
    "PYRAMID_GROUP",
    "PyramidLevel",
    "pyramid_levels",
    "pyramid_problems",
]
