"""``python -m repro.checks`` — run the analyzer suite.

Exit status: 0 when every finding is baselined (or none exist),
1 when new findings surface, 2 on usage errors.

The baseline defaults to ``<root>/scripts/checks_baseline.json`` when
present; ``--no-baseline`` ignores it, ``--update-baseline`` rewrites
its ``findings`` list from the current run (waivers are preserved).
``--json`` emits a stable, sorted document suitable for diffing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.registry import all_analyzers
from repro.checks.runner import load_project, run_analyzers
from repro.errors import ConfigError, ReproError

__all__ = ["main", "build_parser"]

DEFAULT_BASELINE = "scripts/checks_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="AST-based concurrency & contract checks for the repro tree",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to scan (default: src/repro benchmarks examples)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a stable sorted JSON document instead of text",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE} under --root when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline's findings list from this run and exit 0",
    )
    parser.add_argument(
        "--only", default=None, metavar="RULES",
        help="comma-separated rule families or codes "
             "(e.g. exception-taxonomy or TAX001,LCK001)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _list_rules() -> int:
    for analyzer in all_analyzers():
        print(f"{analyzer.name}: {analyzer.description}")
        for code, text in sorted(analyzer.codes.items()):
            print(f"  {code}  {text}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    root = Path(args.root).resolve()
    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
            if not baseline_path.is_absolute():
                baseline_path = root / baseline_path
        elif (root / DEFAULT_BASELINE).exists():
            baseline_path = root / DEFAULT_BASELINE

    only = args.only.split(",") if args.only else None
    try:
        project = load_project(root, args.paths or None)
        findings = run_analyzers(project, only=only)
        baseline = Baseline.load(baseline_path)
    except ConfigError as exc:
        print(f"repro.checks: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:  # any other framework failure is a usage error here
        print(f"repro.checks: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline_path is None:
            baseline_path = root / DEFAULT_BASELINE
        baseline.save(baseline_path, findings)
        pinned = len(baseline.updated_document(findings)["findings"])
        print(f"repro.checks: baseline updated ({pinned} findings pinned) "
              f"-> {baseline_path}")
        return 0

    new, baselined = baseline.split(findings)

    if args.as_json:
        document = {
            "root": str(root),
            "modules_scanned": len(project.modules),
            "findings": [f.to_dict() for f in new],
            "baselined": len(baselined),
        }
        print(json.dumps(document, indent=2, sort_keys=False))
    else:
        for finding in new:
            print(finding.format())
        summary = (
            f"repro.checks: {len(new)} new finding(s), "
            f"{len(baselined)} baselined, {len(project.modules)} modules scanned"
        )
        print(summary if new else f"{summary} — OK")
    return 1 if new else 0
