"""Spectral whitening.

Ambient-noise interferometry flattens each channel's amplitude spectrum
before cross-correlation so persistent narrow-band sources (machinery,
power-line hum) don't dominate the noise correlation functions.
"""

from __future__ import annotations

import numpy as np

from repro.daslib.moving import moving_average


def whiten(
    spectrum: np.ndarray,
    smooth_bins: int = 1,
    eps: float = 1e-12,
    axis: int = -1,
) -> np.ndarray:
    """Normalise a complex spectrum to unit (smoothed) amplitude.

    With ``smooth_bins > 1`` the amplitude envelope is smoothed with a
    moving average before division, which preserves local spectral shape
    (running-mean whitening); ``smooth_bins=1`` is pure 1-bit-style
    amplitude flattening.
    """
    spectrum = np.asarray(spectrum)
    if smooth_bins < 1:
        raise ValueError("smooth_bins must be >= 1")
    amplitude = np.abs(spectrum)
    if smooth_bins > 1:
        amplitude = moving_average(amplitude, smooth_bins, axis=axis)
    return spectrum / (amplitude + eps)
