"""Property-based tests (hypothesis) for DasLib invariants."""

import numpy as np
import scipy.signal as sps
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.daslib import (
    abscorr,
    butter,
    detrend,
    filtfilt,
    get_window,
    lfilter,
    moving_average,
    next_fast_len,
    resample,
    taper,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def series(min_size=2, max_size=200):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_size, max_size),
        elements=finite_floats,
    )


def robust_norm(v):
    """L2 norm as abscorr measures it: peak-rescaled, so it does not
    underflow for denormal-magnitude windows the way ``sum(v**2)`` does."""
    peak = float(np.max(np.abs(v)))
    return peak * float(np.linalg.norm(v / peak)) if peak > 0 else 0.0


class TestAbscorrProps:
    @settings(max_examples=100, deadline=None)
    @given(series(min_size=4))
    def test_self_correlation_is_one_or_zero(self, x):
        value = abscorr(x, x)
        if robust_norm(x) > 1e-290:  # above the dead-window epsilon
            assert abs(value - 1.0) < 1e-9
        else:
            assert value == 0.0

    @settings(max_examples=100, deadline=None)
    @given(series(min_size=4), st.floats(0.01, 100), st.floats(0.01, 100))
    def test_scale_invariance(self, x, a, b):
        y = np.roll(x, 1)
        # scaling only commutes while every window stays clear of the
        # dead-window cutoff (1e-290): a scale factor can legitimately
        # push a barely-live window into silence
        assume(
            min(robust_norm(v) for v in (x, y, a * x, b * y)) > 1e-280
            or max(robust_norm(v) for v in (x, y, a * x, b * y)) == 0.0
        )
        v1 = abscorr(x, y)
        v2 = abscorr(a * x, b * y)
        assert abs(v1 - v2) < 1e-6

    @settings(max_examples=100, deadline=None)
    @given(series(min_size=4))
    def test_symmetry(self, x):
        y = x[::-1].copy()
        assert abs(abscorr(x, y) - abscorr(y, x)) < 1e-9

    @settings(max_examples=100, deadline=None)
    @given(series(min_size=4))
    def test_bounded(self, x):
        y = np.roll(x, 2)
        assert 0.0 <= abscorr(x, y) <= 1.0 + 1e-9


class TestDetrendProps:
    @settings(max_examples=80, deadline=None)
    @given(series(min_size=3))
    def test_idempotent(self, x):
        once = detrend(x)
        twice = detrend(once)
        scale = max(1.0, np.abs(x).max())
        np.testing.assert_allclose(once, twice, atol=1e-7 * scale)

    @settings(max_examples=80, deadline=None)
    @given(series(min_size=3), st.floats(-100, 100), st.floats(-100, 100))
    def test_invariant_to_added_line(self, x, slope, intercept):
        t = np.arange(len(x), dtype=np.float64)
        scale = max(1.0, np.abs(x).max(), abs(slope) * len(x), abs(intercept))
        np.testing.assert_allclose(
            detrend(x + slope * t + intercept), detrend(x), atol=1e-7 * scale
        )

    @settings(max_examples=80, deadline=None)
    @given(series(min_size=3))
    def test_output_zero_mean(self, x):
        out = detrend(x)
        scale = max(1.0, np.abs(x).max())
        assert abs(out.mean()) < 1e-7 * scale


class TestFilterProps:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 6),
        st.floats(0.05, 0.9),
        st.integers(50, 300),
        st.integers(0, 2**31 - 1),
    )
    def test_designed_filters_are_stable(self, order, wn, n, seed):
        b, a = butter(order, wn)
        assert np.all(np.abs(np.roots(a)) < 1.0 + 1e-9)
        rng = np.random.default_rng(seed)
        y = lfilter(b, a, rng.normal(size=n), engine="numpy")
        assert np.all(np.isfinite(y))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.floats(0.1, 0.8), st.integers(0, 2**31 - 1))
    def test_lfilter_linearity(self, order, wn, seed):
        b, a = butter(order, wn)
        rng = np.random.default_rng(seed)
        x1 = rng.normal(size=100)
        x2 = rng.normal(size=100)
        lhs = lfilter(b, a, 2.0 * x1 + 3.0 * x2, engine="numpy")
        rhs = 2.0 * lfilter(b, a, x1, engine="numpy") + 3.0 * lfilter(
            b, a, x2, engine="numpy"
        )
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.floats(0.1, 0.7), st.integers(0, 2**31 - 1))
    def test_numpy_engine_matches_scipy(self, order, wn, seed):
        b, a = butter(order, wn)
        x = np.random.default_rng(seed).normal(size=128)
        np.testing.assert_allclose(
            lfilter(b, a, x, engine="numpy"), sps.lfilter(b, a, x), atol=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 4), st.floats(0.15, 0.6), st.integers(0, 2**31 - 1))
    def test_filtfilt_matches_scipy_everywhere(self, order, wn, seed):
        """Oracle property: our filtfilt (padding, zi, both passes) equals
        scipy's over random filters and signals, edges included."""
        b, a = butter(order, wn)
        x = np.random.default_rng(seed).normal(size=200)
        ours = filtfilt(b, a, x, engine="numpy")
        scipys = sps.filtfilt(b, a, x)
        scale = max(1.0, np.abs(x).max())
        np.testing.assert_allclose(ours, scipys, atol=1e-8 * scale)


class TestResampleProps:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(30, 400),
        st.integers(0, 2**31 - 1),
    )
    def test_output_length_convention(self, p, q, n, seed):
        x = np.random.default_rng(seed).normal(size=n)
        out = resample(x, p, q)
        assert len(out) == -(-n * p // q)  # ceil(n*p/q)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(30, 200), st.integers(0, 2**31 - 1))
    def test_identity_rate(self, n, seed):
        x = np.random.default_rng(seed).normal(size=n)
        np.testing.assert_allclose(resample(x, 3, 3), x, atol=1e-12)


class TestWindowProps:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["hann", "hamming", "blackman"]), st.integers(2, 200))
    def test_symmetry(self, name, n):
        w = get_window(name, n)
        np.testing.assert_allclose(w, w[::-1], atol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 100), st.floats(0.0, 0.5))
    def test_taper_never_amplifies(self, n, fraction):
        x = np.ones(n)
        y = taper(x, fraction)
        assert np.all(y <= 1.0 + 1e-12)
        assert np.all(y >= -1e-12)


class TestMovingAverageProps:
    @settings(max_examples=60, deadline=None)
    @given(series(min_size=1, max_size=100), st.integers(1, 20))
    def test_preserves_constant(self, x, width):
        c = np.full_like(x, 7.5)
        np.testing.assert_allclose(moving_average(c, width), 7.5)

    @settings(max_examples=60, deadline=None)
    @given(series(min_size=1, max_size=100), st.integers(1, 20))
    def test_bounded_by_extremes(self, x, width):
        out = moving_average(x, width)
        eps = 1e-9 * max(1.0, np.abs(x).max())  # cumsum rounding at scale
        assert np.all(out <= x.max() + eps)
        assert np.all(out >= x.min() - eps)


class TestNextFastLenProps:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(1, 10**6))
    def test_result_is_5_smooth_and_geq(self, n):
        m = next_fast_len(n)
        assert m >= n
        k = m
        for p in (2, 3, 5):
            while k % p == 0:
                k //= p
        assert k == 1

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 46656))
    def test_fixed_point_on_smooth_numbers(self, n):
        m = next_fast_len(n)
        assert next_fast_len(m) == m
