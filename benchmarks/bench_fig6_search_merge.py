"""Fig. 6 — search + merge (RCA vs VCA construction).

Paper result (2880 files): search <= 0.002 s; VCA create <= 0.01 s; RCA
create up to 9978 s; VCA construction ~70,000x faster than RCA on
average.  Here: real wall times at 48 scaled files, plus the machine-
model projection at the paper's scale.
"""

import time

import pytest

from repro.cluster import cori_haswell
from repro.storage.model import (
    model_rca_create,
    model_search,
    model_vca_create,
)
from repro.storage.rca import create_rca
from repro.storage.search import das_search, scan_directory
from repro.storage.vca import create_vca


@pytest.fixture(scope="module")
def catalog(scaled_dataset):
    return scan_directory(scaled_dataset["dir"])


def test_fig6_search_benchmark(benchmark, scaled_dataset, catalog):
    """das_search (type-1 range query) over the scaled catalog."""
    result = benchmark(das_search, catalog, start="170620100545", count=24)
    assert len(result) == 24


def test_fig6_vca_create_benchmark(benchmark, tmp_path, scaled_dataset, catalog):
    counter = iter(range(10**6))

    def build():
        return create_vca(
            str(tmp_path / f"v{next(counter)}.h5"), catalog, assume_uniform=True
        )

    benchmark.pedantic(build, rounds=5, iterations=1)


def test_fig6_rca_create_benchmark(benchmark, tmp_path, scaled_dataset, catalog):
    counter = iter(range(10**6))

    def build():
        return create_rca(str(tmp_path / f"r{next(counter)}.h5"), catalog)

    benchmark.pedantic(build, rounds=3, iterations=1)


def test_fig6_table(benchmark, tmp_path, scaled_dataset, catalog, report):
    """The reproduced Fig. 6 rows: measured (scaled) + projected (paper)."""
    benchmark.pedantic(
        _fig6_table, args=(tmp_path, catalog, report), rounds=1, iterations=1
    )


def _fig6_table(tmp_path, catalog, report):
    lines = ["Fig. 6 - search and merge", ""]

    # --- measured at scaled size (48 files, ~150 KB each) -------------
    t0 = time.perf_counter()
    hits = das_search(catalog, start="170620100545", count=48)
    t_search = time.perf_counter() - t0
    t0 = time.perf_counter()
    create_vca(str(tmp_path / "fig6_v.h5"), hits, assume_uniform=True)
    t_vca = time.perf_counter() - t0
    t0 = time.perf_counter()
    create_rca(str(tmp_path / "fig6_r.h5"), hits)
    t_rca = time.perf_counter() - t0
    lines += [
        "measured (48 scaled files):",
        f"  search      : {t_search * 1e3:9.3f} ms",
        f"  VCA create  : {t_vca * 1e3:9.3f} ms",
        f"  RCA create  : {t_rca * 1e3:9.3f} ms",
        f"  RCA/VCA     : {t_rca / t_vca:9.1f}x",
        "",
    ]
    assert t_vca < t_rca

    # --- projected at paper scale (2880 x 700 MB files on Cori) -------
    cluster = cori_haswell()
    lines.append("projected at paper scale (2880 x 700 MB files):")
    lines.append(f"{'files':>6} {'search(s)':>10} {'VCA(s)':>8} {'RCA(s)':>9} {'RCA/VCA':>9}")
    for n in (90, 360, 720, 1440, 2880):
        t_s = model_search(cluster, n)
        t_v = model_vca_create(cluster, n)
        t_r = model_rca_create(cluster, n, 700 * 2**20)
        lines.append(f"{n:>6} {t_s:>10.4f} {t_v:>8.3f} {t_r:>9.1f} {t_r / t_v:>9.0f}")
        assert t_s <= 0.002 + 1e-9
        assert t_r / t_v > 1000
    t_rca_full = model_rca_create(cluster, 2880, 700 * 2**20)
    lines += [
        "",
        f"paper: search <= 0.002 s, VCA <= 0.01 s, RCA up to 9978 s",
        f"model: RCA(2880) = {t_rca_full:.0f} s",
    ]
    assert 1000 < t_rca_full < 30000
    report("fig6_search_merge", lines)
