"""Compression benchmark: bandwidth bought vs CPU spent (Fig. 9 direction).

The paper's I/O argument is bytes moved per analysis pass; the codec
layer shrinks those bytes at the cost of decode CPU.  This benchmark
measures, on a Fig. 1b-style synthetic scene written as per-minute DAS
files:

* **per-codec microbenchmarks** — compression ratio and encode/decode
  throughput on the raw scene array;
* **backend bytes** — a full VCA read of the same workload against raw
  and compressed source files (identical chunking), counted by
  :class:`~repro.utils.iostats.IOStats`: compressed files must read
  strictly fewer backend bytes, and the lossless roundtrip must be
  bit-identical;
* **end-to-end Alg 2 / Alg 3 wall time** on cold and warm cache — the
  BlockCache admits *decoded* chunks, so the warm pass pays neither I/O
  nor decode;
* a **Lustre-model projection** (`repro.cluster.storage.StorageModel`)
  of per-rank I/O time raw vs compressed+decode across rank counts —
  compression shifts the point where the file system saturates.

Results land in ``BENCH_compress.json`` at the repo root.

Usage::

    python benchmarks/bench_compress.py --smoke   # small sizes, CI-friendly
    python benchmarks/bench_compress.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.storage import StorageModel  # noqa: E402
from repro.core.framework import DASSA  # noqa: E402
from repro.core.interferometry import InterferometryConfig  # noqa: E402
from repro.core.local_similarity import LocalSimilarityConfig  # noqa: E402
from repro.hdf5lite import BlockCache, CacheConfig, FilePool, resolve_codec  # noqa: E402
from repro.storage.dasfile import das_filename, write_das_file  # noqa: E402
from repro.storage.metadata import DASMetadata, timestamp_add_seconds  # noqa: E402
from repro.storage.vca import VCAHandle, create_vca  # noqa: E402
from repro.synthetic.generator import fig1b_scene, synthesize_scene  # noqa: E402
from repro.utils.iostats import IOStats  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

CODECS = ["delta-zlib", "transpose-zlib", "quantize:0.001"]


def build_fileset(
    root: str,
    data: np.ndarray,
    minutes: int,
    spm: int,
    fs: float,
    chunks: tuple[int, int],
    codec: str | None,
) -> str:
    """Write the scene as per-minute files (identical chunking across
    variants, so byte counts isolate the codec); returns a VCA path."""
    subdir = os.path.join(root, codec.replace(":", "_") if codec else "raw")
    os.makedirs(subdir)
    stamp = "170620100545"
    paths = []
    for minute in range(minutes):
        block = data[:, minute * spm : (minute + 1) * spm]
        path = os.path.join(subdir, das_filename(stamp))
        write_das_file(
            path,
            block,
            DASMetadata(
                sampling_frequency=fs,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=data.shape[0],
            ),
            channel_groups=False,
            checksum=True,
            chunks=chunks,
            codec=codec,
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    return create_vca(os.path.join(subdir, "vca.h5"), paths)


def micro(data: np.ndarray) -> dict:
    """Per-codec ratio and encode/decode throughput on the raw array."""
    out = {}
    raw_nbytes = data.nbytes
    for spec in CODECS:
        codec = resolve_codec(spec)
        t0 = time.perf_counter()
        payload = codec.encode(data)
        enc_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        decoded = codec.decode(payload, data.shape, data.dtype)
        dec_s = time.perf_counter() - t0
        if codec.lossless:
            np.testing.assert_array_equal(decoded, data)
        out[spec] = {
            "lossless": codec.lossless,
            "ratio": raw_nbytes / len(payload),
            "encoded_nbytes": len(payload),
            "encode_MBps": raw_nbytes / enc_s / 2**20 if enc_s > 0 else None,
            "decode_MBps": raw_nbytes / dec_s / 2**20 if dec_s > 0 else None,
        }
    return out


def full_read(vca_path: str) -> tuple[np.ndarray, dict, float]:
    stats = IOStats()
    t0 = time.perf_counter()
    with VCAHandle(vca_path, iostats=stats) as vca:
        arr = vca.dataset.read()
    return arr, stats.snapshot(), time.perf_counter() - t0


def alg_walltimes(vca_path: str, fs: float, chunk_samples: int) -> dict:
    """Alg 2 + Alg 3 wall time, cold cache then warm cache (shared
    BlockCache + FilePool; decoded chunks are admitted, so the warm pass
    pays neither backend I/O nor decode CPU)."""
    sim_cfg = LocalSimilarityConfig(
        half_window=20, channel_offset=1, half_lag=4, stride=20
    )
    int_cfg = InterferometryConfig(fs=fs, band=(0.05 * fs, 0.4 * fs), resample_q=1)
    stats = IOStats()
    cache = BlockCache(CacheConfig(byte_budget=256 * 2**20), iostats=stats)
    d = DASSA(threads=1)
    out: dict = {}
    with FilePool(iostats=stats, cache=cache) as pool:
        with VCAHandle(vca_path, iostats=stats, pool=pool, cache=cache) as vca:
            for phase in ("cold", "warm"):
                t0 = time.perf_counter()
                d.local_similarity(vca, sim_cfg, chunk_samples=chunk_samples)
                alg2 = time.perf_counter() - t0
                t0 = time.perf_counter()
                d.interferometry(vca, int_cfg, chunk_samples=chunk_samples)
                alg3 = time.perf_counter() - t0
                out[phase] = {
                    "alg2_wall_s": alg2,
                    "alg3_wall_s": alg3,
                    "bytes_read_so_far": stats.snapshot()["bytes_read"],
                }
    return out


def lustre_projection(
    raw: dict, enc: dict, decode_MBps: float, ranks=(4, 16, 64, 256, 1024)
) -> dict:
    """Fig. 9-style model: per-rank time to read the workload raw vs
    compressed-then-decoded, on the Lustre cost model.  Compression cuts
    bytes and IOPS; decode adds CPU that does *not* contend for OSTs."""
    model = StorageModel()
    decode_bps = decode_MBps * 2**20
    points = []
    for r in ranks:
        io_raw = model.sequential_read_time(
            raw["bytes_read"] // r, max(1, raw["reads"] // r), max(1, raw["opens"] // r)
        )
        io_raw = max(io_raw, raw["bytes_read"] / model.aggregate_bandwidth)
        io_enc = model.sequential_read_time(
            enc["bytes_read"] // r, max(1, enc["reads"] // r), max(1, enc["opens"] // r)
        )
        io_enc = max(io_enc, enc["bytes_read"] / model.aggregate_bandwidth)
        decode = (raw["bytes_read"] / r) / decode_bps
        points.append(
            {
                "ranks": r,
                "raw_io_s": io_raw,
                "compressed_io_s": io_enc,
                "decode_s": decode,
                "compressed_total_s": io_enc + decode,
                "compressed_wins": io_enc + decode < io_raw,
            }
        )
    return {"model": "lustre-default", "points": points}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small sizes for CI")
    ap.add_argument("--minutes", type=int, default=None)
    ap.add_argument("--channels", type=int, default=None)
    ap.add_argument("--spm", type=int, default=None, help="samples per minute-file")
    ap.add_argument(
        "--codec", default="transpose-zlib",
        help="codec for the end-to-end comparison (default: transpose-zlib)",
    )
    ap.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_compress.json"),
        help="where to write the JSON results",
    )
    args = ap.parse_args()

    if args.smoke:
        minutes = args.minutes or 4
        channels = args.channels or 32
        spm = args.spm or 600
    else:
        minutes = args.minutes or 12
        channels = args.channels or 128
        spm = args.spm or 3000

    fs = 50.0
    chunk_samples_file = min(spm, 2048)
    chunks = (channels, chunk_samples_file)
    scene = fig1b_scene(
        n_channels=channels, fs=fs, minutes=minutes, samples_per_minute=spm
    )
    data = synthesize_scene(scene, minutes, samples_per_minute=spm)

    results: dict = {
        "bench": "compress",
        "params": {
            "minutes": minutes,
            "channels": channels,
            "samples_per_minute": spm,
            "fs": fs,
            "chunks": list(chunks),
            "codec": args.codec,
            "raw_nbytes": int(data.nbytes),
        },
        "codecs": micro(data),
    }

    with tempfile.TemporaryDirectory(prefix="bench-compress-") as root:
        vca_raw = build_fileset(root, data, minutes, spm, fs, chunks, None)
        vca_enc = build_fileset(root, data, minutes, spm, fs, chunks, args.codec)

        raw_arr, raw_stats, raw_wall = full_read(vca_raw)
        enc_arr, enc_stats, enc_wall = full_read(vca_enc)

        # Acceptance: lossless roundtrip through storage is bit-identical,
        # and the compressed workload moves strictly fewer backend bytes.
        if resolve_codec(args.codec).lossless:
            np.testing.assert_array_equal(enc_arr, raw_arr)
            np.testing.assert_array_equal(raw_arr, data)
        assert enc_stats["bytes_read"] < raw_stats["bytes_read"], (
            enc_stats["bytes_read"],
            raw_stats["bytes_read"],
        )

        results["vca_full_read"] = {
            "raw": {**raw_stats, "wall_s": raw_wall},
            "compressed": {**enc_stats, "wall_s": enc_wall},
            "bytes_saved": raw_stats["bytes_read"] - enc_stats["bytes_read"],
            "bytes_ratio": raw_stats["bytes_read"] / enc_stats["bytes_read"],
        }

        stream_chunk = min(minutes * spm, 4 * chunk_samples_file)
        results["end_to_end"] = {
            "chunk_samples": stream_chunk,
            "raw": alg_walltimes(vca_raw, fs, stream_chunk),
            "compressed": alg_walltimes(vca_enc, fs, stream_chunk),
        }

    decode_MBps = results["codecs"][args.codec]["decode_MBps"] or 1.0
    results["lustre_projection"] = lustre_projection(
        raw_stats, enc_stats, decode_MBps
    )

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    print(f"[bench_compress] wrote {args.out}")
    for spec, row in results["codecs"].items():
        print(
            f"[bench_compress] {spec}: ratio {row['ratio']:.2f}x, "
            f"encode {row['encode_MBps']:.0f} MB/s, "
            f"decode {row['decode_MBps']:.0f} MB/s"
        )
    vr = results["vca_full_read"]
    print(
        f"[bench_compress] VCA read bytes: {vr['raw']['bytes_read']} raw -> "
        f"{vr['compressed']['bytes_read']} compressed "
        f"({vr['bytes_ratio']:.2f}x fewer)"
    )
    e2e = results["end_to_end"]
    print(
        f"[bench_compress] alg2 cold {e2e['compressed']['cold']['alg2_wall_s']:.3f}s / "
        f"warm {e2e['compressed']['warm']['alg2_wall_s']:.3f}s (compressed); "
        f"raw cold {e2e['raw']['cold']['alg2_wall_s']:.3f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
