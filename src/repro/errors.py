"""Exception hierarchy for the repro (DASSA) package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework-level failures without masking programming errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormatError",
    "SelectionError",
    "StorageError",
    "CorruptDataError",
    "DegradedReadError",
    "MPIError",
    "OutOfMemoryError",
    "UDFError",
    "ConfigError",
    "ServeError",
    "QuotaExceededError",
    "AdmissionQueueFullError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FormatError(ReproError):
    """Raised when an hdf5lite file is malformed or unsupported."""


class SelectionError(ReproError):
    """Raised for invalid hyperslab / LAV selections."""


class StorageError(ReproError):
    """Raised by the DASS storage engine (search, VCA/RCA, readers)."""


class CorruptDataError(StorageError):
    """Raised when stored bytes fail an integrity check (CRC32 mismatch,
    impossible extents) — the data on disk is not what was written.

    Carries structured context so degraded-read layers and quarantine
    records can reason about the failure instead of string-matching:
    ``path`` the file holding the bad bytes, ``offset`` the byte offset of
    the failing block (``None`` when unknown), ``reason`` a short
    machine-friendly cause (e.g. ``"crc32 mismatch"``).
    """

    def __init__(self, path: str, offset: "int | None" = None, reason: str = "corrupt data"):
        self.path = str(path)
        self.offset = offset
        self.reason = reason
        at = f" at offset {offset}" if offset is not None else ""
        super().__init__(f"{self.path}: {reason}{at}")


class DegradedReadError(StorageError):
    """Raised when a read could not be satisfied from a source and the
    caller's error policy says to surface (rather than mask) the loss.

    Same structured fields as :class:`CorruptDataError`: ``path`` names
    the failing source, ``offset`` the sample/byte position when known,
    ``reason`` the short cause (``"truncated"``, ``"vanished"``,
    ``"unreadable"``, ...).
    """

    def __init__(self, path: str, offset: "int | None" = None, reason: str = "unreadable"):
        self.path = str(path)
        self.offset = offset
        self.reason = reason
        at = f" at offset {offset}" if offset is not None else ""
        super().__init__(f"{self.path}: degraded read ({reason}){at}")


class MPIError(ReproError):
    """Raised by the simulated MPI runtime."""


class OutOfMemoryError(ReproError):
    """Raised by the cluster memory model when a node's memory is exceeded.

    Mirrors the pure-MPI ArrayUDF out-of-memory failure reported in the
    paper's Fig. 8 (91-node case).
    """

    def __init__(self, node: int, requested: float, available: float):
        self.node = node
        self.requested = requested
        self.available = available
        super().__init__(
            f"node {node}: requested {requested / 2**30:.2f} GiB "
            f"but only {available / 2**30:.2f} GiB available"
        )


class UDFError(ReproError):
    """Raised when a user-defined function fails inside the ArrayUDF engine."""


class ServeError(ReproError):
    """Raised by the read-serving layer (:mod:`repro.serve`) for request
    failures that are not storage corruption: bad window geometry against
    an archive, a missing pyramid level, or an admission decision."""


class QuotaExceededError(ServeError):
    """Raised when a tenant's token-bucket quota cannot admit a request
    (and the caller asked not to wait, or the wait timed out).

    ``tenant`` names the quota bucket, ``kind`` which budget ran out
    (``"requests"`` or ``"bytes"``), ``retry_after`` the seconds until
    the bucket could admit the request — clients are expected to back
    off by at least that much.
    """

    def __init__(self, tenant: str, kind: str = "requests", retry_after: float = 0.0):
        self.tenant = str(tenant)
        self.kind = kind
        self.retry_after = float(retry_after)
        super().__init__(
            f"tenant {self.tenant!r}: {kind} quota exceeded "
            f"(retry after {self.retry_after:.3f}s)"
        )


class AdmissionQueueFullError(ServeError):
    """Raised when a request cannot even *wait*: the tenant's bounded
    admission queue is already at capacity.  Distinct from
    :class:`QuotaExceededError` so load shedding (drop now, no backoff
    hint) and pacing (retry after) stay separable failure modes.

    ``tenant`` names the queue, ``depth`` its configured bound.
    """

    def __init__(self, tenant: str, depth: int):
        self.tenant = str(tenant)
        self.depth = int(depth)
        super().__init__(
            f"tenant {self.tenant!r}: admission queue full ({self.depth} waiting)"
        )


class ConfigError(ReproError, ValueError):
    """Raised for invalid framework / machine-model configuration or
    arguments.

    Subclasses :class:`ValueError` so call sites converted from
    ``raise ValueError`` keep their contract: callers (and tests)
    catching ``ValueError`` continue to work, while new code can catch
    the taxonomy root instead.
    """
