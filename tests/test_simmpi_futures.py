"""Tests for static_map / pool_map task distribution."""

import pytest

from repro.errors import MPIError
from repro.simmpi.futures import pool_map, static_map


class TestStaticMap:
    def test_results_in_order(self):
        out = static_map(lambda x: x * x, list(range(13)), size=4)
        assert out == [x * x for x in range(13)]

    def test_fewer_items_than_ranks(self):
        out = static_map(lambda x: -x, [5, 6], size=6)
        assert out == [-5, -6]

    def test_empty_items(self):
        assert static_map(lambda x: x, [], size=3) == []

    def test_single_rank(self):
        assert static_map(lambda x: x + 1, [1, 2, 3], size=1) == [2, 3, 4]

    def test_non_numeric_items(self):
        out = static_map(str.upper, ["a", "bc", "def"], size=2)
        assert out == ["A", "BC", "DEF"]


class TestPoolMap:
    def test_results_in_order(self):
        out = pool_map(lambda x: 2 * x, list(range(20)), size=4)
        assert out == [2 * x for x in range(20)]

    def test_uneven_workloads_complete(self):
        def task(x):
            # artificial imbalance: some items loop longer
            total = 0
            for i in range((x % 5) * 1000):
                total += i
            return x

        items = list(range(17))
        assert pool_map(task, items, size=3) == items

    def test_fewer_items_than_workers(self):
        out = pool_map(lambda x: x, [42], size=5)
        assert out == [42]

    def test_empty_items(self):
        assert pool_map(lambda x: x, [], size=3) == []

    def test_size_one_rejected(self):
        with pytest.raises(MPIError):
            pool_map(lambda x: x, [1], size=1)

    def test_matches_static_map(self):
        items = list(range(31))
        fn = lambda x: x**2 - x  # noqa: E731
        assert pool_map(fn, items, size=5) == static_map(fn, items, size=5)

    def test_task_exception_propagates(self):
        def boom(x):
            if x == 7:
                raise ValueError("bad item")
            return x

        with pytest.raises(MPIError, match="bad item"):
            pool_map(boom, list(range(10)), size=3)
