"""Tests for simmpi collectives: semantics and virtual-clock charging."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.simmpi import MAX, MIN, PROD, SUM, run_spmd


class TestBarrier:
    def test_all_ranks_pass(self):
        result = run_spmd(lambda comm: comm.barrier() or comm.rank, 4)
        assert result.results == [0, 1, 2, 3]

    def test_clocks_aligned_after_barrier(self):
        def fn(comm):
            # Rank-dependent work before the barrier:
            comm.clock.advance(float(comm.rank), phase="compute")
            comm.barrier()
            return comm.clock.now

        result = run_spmd(fn, 4)
        # Everyone leaves the barrier at the same virtual time.
        assert len({round(t, 12) for t in result.results}) == 1
        assert result.results[0] >= 3.0  # the slowest rank's entry time


class TestBcast:
    def test_object_broadcast(self):
        def fn(comm):
            data = {"key": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        result = run_spmd(fn, 4)
        assert all(r == {"key": [1, 2, 3]} for r in result.results)

    def test_nonzero_root(self):
        def fn(comm):
            return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

        result = run_spmd(fn, 4)
        assert result.results == [2, 2, 2, 2]

    def test_array_broadcast(self):
        def fn(comm):
            data = np.arange(50.0) if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        result = run_spmd(fn, 3)
        for r in result.results:
            np.testing.assert_array_equal(r, np.arange(50.0))

    def test_bad_root(self):
        with pytest.raises(MPIError):
            run_spmd(lambda comm: comm.bcast(1, root=9), 2)

    def test_cost_scales_with_size(self):
        def fn(comm, n):
            comm.bcast(np.zeros(n) if comm.rank == 0 else None, root=0)
            return comm.clock.phases.get("comm", 0.0)

        small = run_spmd(fn, 4, args=(10,)).results[0]
        large = run_spmd(fn, 4, args=(10**6,)).results[0]
        assert large > small


class TestScatterGather:
    def test_scatter(self):
        def fn(comm):
            data = [(i + 1) ** 2 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        result = run_spmd(fn, 4)
        assert result.results == [1, 4, 9, 16]

    def test_scatter_wrong_length(self):
        def fn(comm):
            comm.scatter([1], root=0)

        with pytest.raises(MPIError):
            run_spmd(fn, 3)

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank * 2, root=1)

        result = run_spmd(fn, 4)
        assert result.results[1] == [0, 2, 4, 6]
        assert result.results[0] is None

    def test_allgather(self):
        result = run_spmd(lambda comm: comm.allgather(comm.rank), 5)
        assert all(r == [0, 1, 2, 3, 4] for r in result.results)

    def test_allgather_arrays(self):
        def fn(comm):
            parts = comm.allgather(np.full(3, comm.rank, dtype=np.float64))
            return np.concatenate(parts)

        result = run_spmd(fn, 3)
        expected = np.repeat([0.0, 1.0, 2.0], 3)
        for r in result.results:
            np.testing.assert_array_equal(r, expected)


class TestAlltoall:
    def test_transpose_semantics(self):
        def fn(comm):
            out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
            return out

        result = run_spmd(fn, 3)
        assert result.results[1] == ["0->1", "1->1", "2->1"]

    def test_array_exchange(self):
        """The communication-avoiding exchange: rank r holds file r's data
        and sends each rank its slice; afterwards each rank holds its slice
        of every file."""

        def fn(comm):
            p = comm.size
            file_data = np.arange(p * 4, dtype=np.float64) + 100 * comm.rank
            slices = [file_data[r * 4 : (r + 1) * 4] for r in range(p)]
            received = comm.alltoall(slices)
            return np.concatenate(received)

        result = run_spmd(fn, 4)
        for rank, out in enumerate(result.results):
            expected = np.concatenate(
                [np.arange(rank * 4, rank * 4 + 4) + 100 * src for src in range(4)]
            )
            np.testing.assert_array_equal(out, expected)

    def test_wrong_length_rejected(self):
        with pytest.raises(MPIError):
            run_spmd(lambda comm: comm.alltoall([1]), 3)


class TestReduce:
    def test_allreduce_sum(self):
        result = run_spmd(lambda comm: comm.allreduce(comm.rank + 1), 4)
        assert result.results == [10, 10, 10, 10]

    def test_allreduce_ops(self):
        for op, expected in ((SUM, 6), (MAX, 3), (MIN, 0), (PROD, 0)):
            result = run_spmd(lambda comm, o=op: comm.allreduce(comm.rank, o), 4)
            assert result.results[0] == expected, op.name

    def test_allreduce_arrays(self):
        def fn(comm):
            return comm.allreduce(np.full(4, float(comm.rank)), SUM)

        result = run_spmd(fn, 3)
        np.testing.assert_array_equal(result.results[0], np.full(4, 3.0))

    def test_reduce_root_only(self):
        def fn(comm):
            return comm.reduce(comm.rank, SUM, root=2)

        result = run_spmd(fn, 4)
        assert result.results[2] == 6
        assert result.results[0] is None

    def test_reduce_max_array(self):
        def fn(comm):
            contrib = np.zeros(3)
            contrib[comm.rank % 3] = comm.rank
            return comm.reduce(contrib, MAX, root=0)

        result = run_spmd(fn, 3)
        np.testing.assert_array_equal(result.results[0], [0.0, 1.0, 2.0])


class TestVirtualTime:
    def test_alltoall_cheaper_than_per_file_bcasts(self):
        """Paper Fig. 5 argument at the communicator level: exchanging a
        volume V once via alltoall must cost far less virtual time than
        broadcasting V in n_files pieces."""
        n_files = 32
        piece = 2**16

        def bcast_version(comm):
            for _ in range(n_files):
                comm.bcast(np.zeros(piece, dtype=np.uint8) if comm.rank == 0 else None)
            return comm.clock.phases.get("comm", 0.0)

        def alltoall_version(comm):
            shard = np.zeros(piece * n_files // comm.size, dtype=np.uint8)
            comm.alltoall([shard[: len(shard) // comm.size]] * comm.size)
            return comm.clock.phases.get("comm", 0.0)

        t_bcast = run_spmd(bcast_version, 8).results[0]
        t_a2a = run_spmd(alltoall_version, 8).results[0]
        assert t_bcast > 5 * t_a2a

    def test_charge_io_and_compute(self):
        def fn(comm):
            comm.charge_io(0.5, op="read", nbytes=1000)
            comm.charge_compute(0.25)
            return comm.clock.phases

        result = run_spmd(fn, 2)
        assert result.results[0]["io"] == pytest.approx(0.5)
        assert result.results[0]["compute"] == pytest.approx(0.25)
        assert result.phase_totals()["io"] == pytest.approx(0.5)

    def test_makespan_is_max_clock(self):
        def fn(comm):
            comm.clock.advance(1.0 + comm.rank, phase="compute")

        result = run_spmd(fn, 3)
        assert result.makespan == pytest.approx(3.0)
