"""Exception-taxonomy analyzer (``TAX``) — supersedes ``faultcheck.sh``.

The degraded-read, retry, and quarantine paths depend on the typed
hierarchy in :mod:`repro.errors` to tell transient faults from logic
bugs.  Three checks defend it:

``TAX001`` broad except
    ``except:``, ``except Exception:`` or ``except BaseException:``
    (alone or in a tuple) swallows the taxonomy.  An intentional
    boundary carries ``# noqa: TAX001 - reason`` (the historical
    ``BLE001`` marker is accepted).
``TAX002`` builtin raise from library code
    ``raise ValueError/TypeError/RuntimeError/OSError/...`` under
    ``src/repro`` where a :mod:`repro.errors` type exists.  Protocol
    exceptions are exempt: ``KeyError``/``IndexError``/``StopIteration``
    anywhere (mapping/iterator contracts), ``TypeError`` inside dunder
    methods (``__len__`` of a 0-d dataset *should* raise ``TypeError``),
    and ``NotImplementedError`` (an abstract-hook marker).  Relaxed
    scopes (benchmarks/, examples/) skip this check — scripts may raise
    whatever they like.
``TAX003`` silently swallowed handler
    an ``except`` whose body is a lone ``pass``/``...`` without a
    ``noqa`` marker: the error vanishes with no record, no counter, no
    fallback.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["ExceptionTaxonomyAnalyzer", "BUILTIN_RAISE_HINTS"]

_BROAD = {"Exception", "BaseException"}

#: builtin -> the taxonomy type a library raise should use instead.
BUILTIN_RAISE_HINTS = {
    "Exception": "ReproError (or a concrete subclass)",
    "ValueError": "ConfigError (a ValueError subclass, so callers keep working)",
    "TypeError": "ConfigError",
    "RuntimeError": "ReproError (or StorageError / MPIError / UDFError)",
    "OSError": "StorageError (or DegradedReadError for masked losses)",
    "IOError": "StorageError",
}

_DUNDER_EXEMPT = {"TypeError"}  # protocol errors inside __dunder__ methods


def _exception_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        return [n for elt in node.elts for n in _exception_names(elt)]
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


def _is_silent(handler: ast.ExceptHandler) -> bool:
    if len(handler.body) != 1:
        return False
    stmt = handler.body[0]
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register
class ExceptionTaxonomyAnalyzer(Analyzer):
    name = "exception-taxonomy"
    description = "typed repro.errors taxonomy instead of broad/builtin exceptions"
    codes = {
        "TAX001": "bare or broad except swallows the typed taxonomy",
        "TAX002": "builtin exception raised where a repro.errors type exists",
        "TAX003": "exception silently swallowed (pass-only handler)",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None or not project.in_scope(mod):
                continue
            yield from self._check_module(mod)

    def _check_module(self, mod: SourceModule) -> Iterator[Finding]:
        library = mod.rel.startswith("src/repro/") and not mod.relaxed
        dunder_stack: list[bool] = []

        def walk(node: ast.AST) -> Iterator[Finding]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dunder_stack.append(
                    node.name.startswith("__") and node.name.endswith("__")
                )
            try:
                if isinstance(node, ast.ExceptHandler):
                    yield from check_handler(node)
                elif isinstance(node, ast.Raise) and library:
                    yield from check_raise(node)
                for child in ast.iter_child_nodes(node):
                    yield from walk(child)
            finally:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    dunder_stack.pop()

        def check_handler(handler: ast.ExceptHandler) -> Iterator[Finding]:
            names = _exception_names(handler.type)
            if handler.type is None or any(n in _BROAD for n in names):
                if not mod.is_suppressed(handler.lineno, "TAX001"):
                    caught = "bare except" if handler.type is None else (
                        "except " + "/".join(n for n in names if n in _BROAD)
                    )
                    yield self.finding(
                        "TAX001", mod, handler.lineno,
                        f"{caught} swallows the typed error taxonomy",
                        hint="catch a repro.errors type, or annotate the "
                             "boundary `# noqa: TAX001 - reason`",
                    )
            if _is_silent(handler):
                pass_line = handler.body[0].lineno
                if not (
                    mod.is_suppressed(handler.lineno, "TAX003")
                    or mod.is_suppressed(pass_line, "TAX003")
                ):
                    yield self.finding(
                        "TAX003", mod, handler.lineno,
                        "exception silently swallowed (pass-only handler)",
                        hint="record, count, or re-raise it — or annotate "
                             "`# noqa: TAX003 - reason`",
                    )

        def check_raise(node: ast.Raise) -> Iterator[Finding]:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if not isinstance(exc, ast.Name):
                return
            name = exc.id
            if name not in BUILTIN_RAISE_HINTS:
                return
            if name in _DUNDER_EXEMPT and any(dunder_stack[-1:]):
                return
            if mod.node_suppressed(node, "TAX002"):
                return
            yield self.finding(
                "TAX002", mod, node.lineno,
                f"library code raises builtin {name}",
                hint=f"raise {BUILTIN_RAISE_HINTS[name]} from repro.errors",
            )

        yield from walk(mod.tree)
