"""The check runner: walk the tree, parse once, run every analyzer.

Default scan roots are ``src/repro`` (strict) plus ``benchmarks`` and
``examples`` (relaxed rule set — scripts are exempt from the
builtin-raise and ``__all__``-required checks but still linted for
broad excepts, silent handlers, and stale exports).  A file that fails
to parse produces a ``PAR001`` finding rather than crashing the run.
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Iterable

from repro.checks.findings import Finding
from repro.checks.registry import all_analyzers
from repro.checks.source import Project, SourceModule, load_module
from repro.errors import ConfigError

__all__ = ["DEFAULT_ROOTS", "RELAXED_ROOTS", "load_project", "run_analyzers"]

DEFAULT_ROOTS = ("src/repro", "benchmarks", "examples")
RELAXED_ROOTS = ("benchmarks", "examples")
_SKIP_DIR_SUFFIXES = (".egg-info",)
_SKIP_DIR_NAMES = {"__pycache__", ".git", "results"}


def _iter_py_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        parts = path.relative_to(root).parts
        if any(
            p in _SKIP_DIR_NAMES or p.endswith(_SKIP_DIR_SUFFIXES)
            for p in parts[:-1]
        ):
            continue
        yield path


def load_project(root: str | Path, paths: Iterable[str | Path] | None = None) -> Project:
    """Build a :class:`Project` rooted at ``root``.

    With no ``paths``, the default roots that exist under ``root`` are
    scanned.  Explicit ``paths`` (files or directories) are scanned
    as given; those under a relaxed root keep the relaxed rule set.
    """
    root = Path(root).resolve()
    if paths:
        scan = [Path(p) if Path(p).is_absolute() else root / p for p in paths]
    else:
        scan = [root / r for r in DEFAULT_ROOTS if (root / r).exists()]
        if not scan:
            raise ConfigError(
                f"{root}: none of {', '.join(DEFAULT_ROOTS)} exist — "
                f"run from the repository root or pass explicit paths"
            )
    modules: list[SourceModule] = []
    seen: set[Path] = set()
    for entry in scan:
        if not entry.exists():
            raise ConfigError(f"no such path: {entry}")
        for path in _iter_py_files(entry):
            path = path.resolve()
            if path in seen:
                continue
            seen.add(path)
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            relaxed = any(
                rel == r or rel.startswith(r + "/") for r in RELAXED_ROOTS
            )
            modules.append(load_module(path, rel, relaxed=relaxed))
    modules.sort(key=lambda m: m.rel)
    return Project(root=root, modules=modules)


def run_analyzers(
    project: Project,
    only: Iterable[str] | None = None,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Run (a selection of) analyzers; returns stably-sorted findings.

    ``only`` filters by rule-family name (``exception-taxonomy``) or
    individual code (``TAX001``); parse failures always surface.  When a
    ``timings`` dict is passed, each analyzer's wall time in
    milliseconds is recorded under its family name.
    """
    wanted = {token.strip() for token in only} if only else None
    findings: list[Finding] = []
    for mod in project.modules:
        if mod.parse_error is not None and project.in_scope(mod):
            findings.append(Finding(
                code="PAR001", rule="parse", path=mod.rel, line=1,
                message=f"file does not parse: {mod.parse_error}",
            ))
    known: set[str] = {"parse", "PAR001"}
    for analyzer in all_analyzers():
        known.add(analyzer.name)
        known.update(analyzer.codes)
        if wanted is not None and not (
            analyzer.name in wanted or wanted & set(analyzer.codes)
        ):
            continue
        started = perf_counter()
        selected = list(analyzer.run(project))
        if timings is not None:
            timings[analyzer.name] = round(
                (perf_counter() - started) * 1000.0, 3
            )
        if wanted is not None and analyzer.name not in wanted:
            selected = [f for f in selected if f.code in wanted]
        findings.extend(selected)
    if wanted is not None:
        unknown = wanted - known
        if unknown:
            raise ConfigError(
                f"--only: unknown rule/code: {', '.join(sorted(unknown))}"
            )
    return sorted(findings, key=Finding.sort_key)
