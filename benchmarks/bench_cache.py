"""Cache/pool benchmark for the Fig. 7 VCA read path.

Measures what the hdf5lite read-side cache layer buys on the repo's
hottest path: repeated reads of a day's recording through a VCA.  Three
configurations of the *same* read sequence are run:

* **uncached** — seed behaviour: every pass re-opens the VCA and all of
  its per-minute source files and issues one backend request per source.
* **budget-0** — cache object present but disabled; must reproduce the
  uncached backend counts byte-for-byte (the safety knob).
* **cached** — a shared :class:`BlockCache` + :class:`FilePool`: files
  open once, pages/chunks load once, every further pass is memory copies.

Also runs the simmpi Fig. 7 communication-avoiding reader with and
without the pool to show the effect under the parallel readers.

Counts come from :class:`repro.utils.iostats.IOStats`; results (counters,
wall times, and the asserted cached < uncached deltas) are written as
JSON (``BENCH_cache.json`` at the repo root by default).

Usage::

    python benchmarks/bench_cache.py --smoke     # small sizes, CI-friendly
    python benchmarks/bench_cache.py             # default sizes
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.hdf5lite import BlockCache, CacheConfig, FilePool  # noqa: E402
from repro.simmpi import run_spmd  # noqa: E402
from repro.storage.dasfile import das_filename, write_das_file  # noqa: E402
from repro.storage.metadata import DASMetadata, timestamp_add_seconds  # noqa: E402
from repro.storage.parallel_read import (  # noqa: E402
    read_vca_communication_avoiding,
)
from repro.storage.vca import VCAHandle, create_vca  # noqa: E402
from repro.utils.iostats import IOStats  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def build_dataset(root: str, n_files: int, channels: int, spm: int) -> str:
    """Write ``n_files`` per-minute DAS files; returns a VCA over them."""
    rng = np.random.default_rng(7)
    stamp = "170620100545"
    paths = []
    for _ in range(n_files):
        data = rng.normal(size=(channels, spm)).astype(np.float32)
        path = os.path.join(root, das_filename(stamp))
        write_das_file(
            path,
            data,
            DASMetadata(
                sampling_frequency=10.0,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=channels,
            ),
            channel_groups=False,
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    return create_vca(os.path.join(root, "day.h5"), paths)


def run_serial(
    vca_path: str,
    repeats: int,
    pool: FilePool | None,
    cache: object,
    stats: IOStats,
) -> tuple[float, np.ndarray]:
    """``repeats`` full passes over the VCA; returns (wall_s, last array)."""
    t0 = time.perf_counter()
    arr = None
    for _ in range(repeats):
        with VCAHandle(vca_path, iostats=stats, pool=pool, cache=cache) as vca:
            arr = vca.dataset.read()
    return time.perf_counter() - t0, arr


def run_spmd_reader(
    vca_path: str, ranks: int, pool: FilePool | None, stats: IOStats
) -> tuple[float, np.ndarray]:
    def fn(comm):
        return read_vca_communication_avoiding(
            comm, vca_path, pool=pool, iostats=stats
        )

    t0 = time.perf_counter()
    result = run_spmd(fn, ranks)
    wall = time.perf_counter() - t0
    return wall, np.concatenate(result.results, axis=0)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small sizes for CI")
    ap.add_argument("--files", type=int, default=None)
    ap.add_argument("--channels", type=int, default=None)
    ap.add_argument("--spm", type=int, default=None, help="samples per minute-file")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument(
        "--budget", type=int, default=64 * 2**20, help="cache byte budget"
    )
    ap.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_cache.json"),
        help="where to write the JSON results",
    )
    args = ap.parse_args()

    if args.smoke:
        n_files = args.files or 16
        channels = args.channels or 32
        spm = args.spm or 300
    else:
        n_files = args.files or 48
        channels = args.channels or 64
        spm = args.spm or 600

    results: dict[str, object] = {
        "bench": "cache",
        "params": {
            "files": n_files,
            "channels": channels,
            "samples_per_file": spm,
            "repeats": args.repeats,
            "ranks": args.ranks,
            "byte_budget": args.budget,
        },
    }

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as root:
        vca_path = build_dataset(root, n_files, channels, spm)

        # --- serial repeated VCA reads --------------------------------
        un_stats = IOStats()
        un_wall, un_arr = run_serial(vca_path, args.repeats, None, None, un_stats)

        z_stats = IOStats()
        z_wall, z_arr = run_serial(
            vca_path, args.repeats, None, CacheConfig(byte_budget=0), z_stats
        )

        ca_stats = IOStats()
        cache = BlockCache(CacheConfig(byte_budget=args.budget), iostats=ca_stats)
        with FilePool(iostats=ca_stats, cache=cache) as pool:
            ca_wall, ca_arr = run_serial(vca_path, args.repeats, pool, None, ca_stats)
            pool_stats = {
                "hits": pool.hits,
                "misses": pool.misses,
                "evictions": pool.evictions,
            }

        np.testing.assert_array_equal(un_arr, ca_arr)
        np.testing.assert_array_equal(un_arr, z_arr)
        un, z, ca = un_stats.snapshot(), z_stats.snapshot(), ca_stats.snapshot()

        # budget-0 must reproduce the uncached backend traffic exactly.
        assert z == un, f"budget-0 diverged from seed behaviour: {z} != {un}"
        # The whole point: strictly fewer opens and backend read requests.
        assert ca["opens"] < un["opens"], (ca["opens"], un["opens"])
        assert ca["reads"] < un["reads"], (ca["reads"], un["reads"])

        results["serial"] = {
            "uncached": {**un, "wall_s": un_wall},
            "budget0": {**z, "wall_s": z_wall},
            "cached": {
                **ca,
                "wall_s": ca_wall,
                "cache": cache.stats(),
                "pool": pool_stats,
                "cache_counters": ca_stats.cache_snapshot(),
            },
            "open_reduction": un["opens"] - ca["opens"],
            "read_reduction": un["reads"] - ca["reads"],
            "bytes_read_uncached": un["bytes_read"],
            "bytes_read_cached": ca["bytes_read"],
            "speedup_wall": un_wall / ca_wall if ca_wall > 0 else float("inf"),
        }

        # --- Fig. 7 communication-avoiding reader ---------------------
        sp_un = IOStats()
        sp_un_wall, sp_un_arr = run_spmd_reader(vca_path, args.ranks, None, sp_un)

        sp_ca = IOStats()
        sp_cache = BlockCache(CacheConfig(byte_budget=args.budget), iostats=sp_ca)
        with FilePool(iostats=sp_ca, cache=sp_cache) as sp_pool:
            sp_ca_wall, sp_ca_arr = run_spmd_reader(
                vca_path, args.ranks, sp_pool, sp_ca
            )

        np.testing.assert_array_equal(sp_un_arr, sp_ca_arr)
        spu, spc = sp_un.snapshot(), sp_ca.snapshot()
        assert spc["opens"] < spu["opens"], (spc["opens"], spu["opens"])

        results["spmd_comm_avoiding"] = {
            "uncached": {**spu, "wall_s": sp_un_wall},
            "cached": {**spc, "wall_s": sp_ca_wall},
            "open_reduction": spu["opens"] - spc["opens"],
            "read_reduction": spu["reads"] - spc["reads"],
        }

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2)

    serial = results["serial"]
    print(f"[bench_cache] wrote {args.out}")
    print(
        f"[bench_cache] serial x{args.repeats}: "
        f"opens {serial['uncached']['opens']} -> {serial['cached']['opens']}, "
        f"reads {serial['uncached']['reads']} -> {serial['cached']['reads']}, "
        f"wall {serial['uncached']['wall_s']:.3f}s -> "
        f"{serial['cached']['wall_s']:.3f}s"
    )
    spmd = results["spmd_comm_avoiding"]
    print(
        f"[bench_cache] spmd ranks={args.ranks}: "
        f"opens {spmd['uncached']['opens']} -> {spmd['cached']['opens']}, "
        f"reads {spmd['uncached']['reads']} -> {spmd['cached']['reads']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
