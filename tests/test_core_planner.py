"""Tests for automatic system-setting selection (paper §VIII future work)."""

import pytest

from repro.arrayudf.engine import WorkloadSpec
from repro.cluster import cori_haswell
from repro.core.planner import PlanOption, best_plan, plan
from repro.errors import ConfigError


def paper_workload():
    return WorkloadSpec(
        total_bytes=int(1.9 * 2**40),
        n_files=2880,
        master_bytes=30000 * 1440 * 2 * 8,
    )


class TestPlan:
    def test_options_sorted_best_first(self):
        options = plan(cori_haswell(), paper_workload(), node_counts=[91, 364, 728])
        feasible = [o for o in options if o.feasible]
        assert feasible
        times = [o.total_time for o in feasible]
        assert times == sorted(times)

    def test_infeasible_options_reported_not_dropped(self):
        options = plan(
            cori_haswell(),
            paper_workload(),
            node_counts=[91],
            cores_per_node=16,
        )
        mpi_91 = [o for o in options if o.engine == "mpi-arrayudf"]
        assert len(mpi_91) == 1
        assert not mpi_91[0].feasible
        assert "memory" in mpi_91[0].reason

    def test_hybrid_dominates_mpi_at_scale(self):
        best = best_plan(
            cori_haswell(),
            paper_workload(),
            node_counts=[364, 728],
            cores_per_node=16,
            read_pattern="native",
        )
        assert best.engine == "hybrid-arrayudf"

    def test_node_hours_objective_prefers_fewer_nodes(self):
        workload = paper_workload()
        fast = best_plan(
            cori_haswell(), workload, node_counts=[91, 1456], cores_per_node=8,
            objective="time", include_mpi_engine=False,
        )
        cheap = best_plan(
            cori_haswell(), workload, node_counts=[91, 1456], cores_per_node=8,
            objective="node_hours", include_mpi_engine=False,
        )
        assert cheap.nodes <= fast.nodes
        assert cheap.node_hours <= fast.node_hours

    def test_balanced_objective_runs(self):
        best = best_plan(
            cori_haswell(), paper_workload(),
            node_counts=[91, 364, 1456], cores_per_node=8, objective="balanced",
            include_mpi_engine=False,
        )
        assert isinstance(best, PlanOption)
        assert best.feasible

    def test_small_workload_prefers_small_allocation(self):
        tiny = WorkloadSpec(total_bytes=10 * 2**30, n_files=16)
        cheap = best_plan(
            cori_haswell(), tiny, node_counts=[8, 364], cores_per_node=8,
            objective="node_hours", include_mpi_engine=False,
        )
        assert cheap.nodes == 8

    def test_validation(self):
        with pytest.raises(ConfigError):
            plan(cori_haswell(), paper_workload(), objective="vibes")
        with pytest.raises(ConfigError):
            plan(cori_haswell(4), paper_workload(), node_counts=[8])
        with pytest.raises(ConfigError):
            plan(cori_haswell(), paper_workload(), node_counts=[])
        with pytest.raises(ConfigError):
            plan(cori_haswell(), paper_workload(), cores_per_node=999)

    def test_no_feasible_plan_raises(self):
        # A workload whose master channel alone exceeds node memory.
        impossible = WorkloadSpec(
            total_bytes=2**30, n_files=4, master_bytes=256 * 2**30
        )
        with pytest.raises(ConfigError, match="no feasible"):
            best_plan(
                cori_haswell(), impossible, node_counts=[91], cores_per_node=16
            )

    def test_cores_used_property(self):
        option = PlanOption(
            engine="x", nodes=10, ranks_per_node=2, threads_per_rank=8,
            total_time=1.0, node_hours=1.0, feasible=True,
        )
        assert option.cores_used == 160
