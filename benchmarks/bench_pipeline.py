"""Streaming-executor benchmark: materialized vs chunked execution.

Runs the *same* Algorithm 3 operator graph
(:func:`repro.core.interferometry.interferometry_operators`) under the
two Fig. 9 execution policies:

* **materialized** — :func:`repro.core.pipeline.run_materialized`:
  stage at a time over the whole array, every intermediate resident
  (the MATLAB structure, vectorised kernels),
* **streamed** — :class:`repro.core.pipeline.StreamPipeline` with
  overlap-aware chunks (``T // 8`` samples per chunk): only one padded
  block plus the decimated accumulator resident at a time.

Asserts the two outputs agree to 1e-9 and that the streamed peak
resident bytes (the profile's per-chunk array-footprint proxy) are
strictly below the materialized peak, then records per-stage seconds,
bytes streamed, and the peaks in ``BENCH_pipeline.json``.

Usage::

    python benchmarks/bench_pipeline.py --smoke   # small sizes, CI-friendly
    python benchmarks/bench_pipeline.py           # default sizes
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.interferometry import (  # noqa: E402
    InterferometryConfig,
    interferometry_operators,
    master_spectrum,
)
from repro.core.pipeline import StreamPipeline, run_materialized  # noqa: E402
from repro.utils.timer import Timer  # noqa: E402

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def build_noise(channels: int, samples: int) -> np.ndarray:
    rng = np.random.default_rng(13)
    data = rng.standard_normal((channels, samples))
    data += np.linspace(0.0, 2.0, samples)[None, :]  # make detrend earn its keep
    return data


def run_comparison(
    channels: int, samples: int, threads: int
) -> dict:
    config = InterferometryConfig(fs=200.0, band=(2.0, 20.0), resample_q=4)
    data = build_noise(channels, samples)
    mc = config.master_channel
    mfft = master_spectrum(data[mc : mc + 1], config)
    operators = interferometry_operators(config, master_fft=mfft)

    mat_timer = Timer()
    t0 = time.perf_counter()
    materialized = run_materialized(operators, data, fs=config.fs, timer=mat_timer)
    mat_wall = time.perf_counter() - t0

    chunk = max(1, samples // 8)
    str_timer = Timer()
    t0 = time.perf_counter()
    streamed = StreamPipeline(operators).run(
        data, chunk_samples=chunk, threads=threads, timer=str_timer, fs=config.fs
    )
    str_wall = time.perf_counter() - t0

    drift = float(np.max(np.abs(streamed.output - materialized.output)))
    assert drift < 1e-9, f"streamed output drifted from materialized by {drift}"
    assert (
        streamed.profile.peak_resident_bytes
        < materialized.profile.peak_resident_bytes
    ), (
        f"streamed peak {streamed.profile.peak_resident_bytes} not below "
        f"materialized peak {materialized.profile.peak_resident_bytes}"
    )

    return {
        "channels": channels,
        "samples": samples,
        "threads": threads,
        "chunk_samples": chunk,
        "max_abs_output_diff": drift,
        "materialized": {
            "wall_seconds": mat_wall,
            **materialized.profile.as_dict(),
        },
        "streamed": {
            "wall_seconds": str_wall,
            **streamed.profile.as_dict(),
        },
        "peak_bytes_ratio": (
            streamed.profile.peak_resident_bytes
            / materialized.profile.peak_resident_bytes
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_pipeline.json"),
        help="JSON output path",
    )
    args = parser.parse_args()

    if args.smoke:
        cases = [(8, 20_000, 2)]
    else:
        cases = [(32, 120_000, 4), (64, 240_000, 4)]

    results = []
    for channels, samples, threads in cases:
        print(f"== {channels} channels x {samples} samples, {threads} threads ==")
        entry = run_comparison(channels, samples, threads)
        mat, srt = entry["materialized"], entry["streamed"]
        print(
            f"  materialized: {mat['wall_seconds']:.3f} s, "
            f"peak {mat['peak_resident_bytes'] / 1e6:.1f} MB"
        )
        print(
            f"  streamed    : {srt['wall_seconds']:.3f} s, "
            f"peak {srt['peak_resident_bytes'] / 1e6:.1f} MB "
            f"({entry['peak_bytes_ratio']:.2f}x of materialized), "
            f"{srt['n_chunks']} chunks"
        )
        print(f"  max |diff|  : {entry['max_abs_output_diff']:.2e}")
        results.append(entry)

    payload = {"benchmark": "streaming_pipeline", "cases": results}
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
