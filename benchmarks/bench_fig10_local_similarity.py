"""Fig. 10 — events detected by local similarity (Algorithm 2).

Paper result: the local-similarity map of the 6-minute record makes it
"possible to distinguish two moving vehicles and a M4.4 earthquake" plus
a persistent vibrating zone.

Here the Fig. 1b scene is synthesised, the similarity map computed with
the vectorised Algorithm 2 kernel (benchmark), and the detector must
recover all three event kinds with sensible geometry.
"""

import numpy as np
import pytest

from repro.core.detection import detect_events
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    local_similarity_block,
)
from repro.synthetic import fig1b_scene, synthesize_scene

FS = 50.0
CHANNELS = 96
MINUTES = 6
SPM = int(60 * FS)
CONFIG = LocalSimilarityConfig(half_window=50, channel_offset=1, half_lag=5, stride=100)


@pytest.fixture(scope="module")
def scene_data():
    scene = fig1b_scene(
        n_channels=CHANNELS, fs=FS, minutes=MINUTES, samples_per_minute=SPM
    )
    return synthesize_scene(scene, MINUTES, samples_per_minute=SPM)


def test_fig10_similarity_kernel_benchmark(benchmark, scene_data):
    simi, centers = benchmark.pedantic(
        local_similarity_block, args=(scene_data, CONFIG), rounds=3, iterations=1
    )
    assert simi.shape[0] == CHANNELS - 2


def test_fig10_detection(benchmark, scene_data, report):
    benchmark.pedantic(
        _fig10_detection, args=(scene_data, report), rounds=1, iterations=1
    )


def _fig10_detection(scene_data, report):
    simi, centers = local_similarity_block(scene_data, CONFIG)
    events = detect_events(
        simi,
        centers,
        fs=FS,
        threshold_sigmas=3.0,
        min_vehicle_speed=0.1,
        remove_channel_bias=True,
        split_array_wide=True,
    )
    lines = [
        "Fig. 10 - events detected with local similarity (Algorithm 2)",
        f"scene: {MINUTES} min x {CHANNELS} channels at {FS:.0f} Hz "
        "(2 vehicles + M4.4-style earthquake + persistent vibration)",
        "",
        f"{'kind':<14} {'channels':<12} {'time (s)':<18} {'peak':<7} {'speed (ch/s)'}",
    ]
    for ev in events:
        lines.append(
            f"{ev.kind:<14} {ev.channel_lo}-{ev.channel_hi:<10} "
            f"{ev.t_start:7.1f}-{ev.t_end:<9.1f} {ev.peak_similarity:<7.2f} "
            f"{ev.speed_channels_per_s:+.2f}"
        )

    kinds = {ev.kind for ev in events}
    lines += ["", f"recovered kinds: {sorted(kinds)} (paper: vehicles, earthquake"
              " + persistent vibrating visible)"]
    report("fig10_local_similarity", lines)

    # The paper's claim: all three phenomena are distinguishable.
    assert "earthquake" in kinds
    assert "vehicle" in kinds
    assert "persistent" in kinds
    vehicles = [e for e in events if e.kind == "vehicle"]
    assert len(vehicles) >= 2
    # The two cars travel in opposite directions in the scene.
    slopes = sorted(v.speed_channels_per_s for v in vehicles)
    assert slopes[0] < 0 < slopes[-1]
    # The earthquake hits (nearly) the whole array around 0.55 T.
    quake = next(e for e in events if e.kind == "earthquake")
    assert quake.channel_span > 0.8 * simi.shape[0]
    total_seconds = MINUTES * SPM / FS
    assert abs(quake.t_start - 0.55 * total_seconds) < 0.1 * total_seconds
