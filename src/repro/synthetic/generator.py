"""Scene composition and per-minute dataset generation."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigError
from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.synthetic.events import earthquake_signal, vehicle_signal
from repro.synthetic.noise import ambient_noise, persistent_vibration


@dataclass
class SceneSpec:
    """A recording scenario: array geometry plus a list of event layers.

    Each event is ``(kind, kwargs)`` with kind in {"earthquake",
    "vehicle", "vibration"}; kwargs are passed to the signal model.
    """

    n_channels: int = 256
    fs: float = 500.0
    channel_spacing: float = 2.0
    noise_amplitude: float = 1.0
    noise_band: tuple[float, float] = (0.5, 40.0)
    events: list[tuple[str, dict[str, Any]]] = field(default_factory=list)
    seed: int = 2020

    def duration_samples(self, minutes: int, samples_per_minute: int | None = None) -> int:
        spm = samples_per_minute or int(60 * self.fs)
        return minutes * spm


def fig1b_scene(
    n_channels: int = 256,
    fs: float = 500.0,
    minutes: int = 6,
    samples_per_minute: int | None = None,
    seed: int = 2020,
) -> SceneSpec:
    """The paper's Fig. 1b scenario: 6 minutes with two moving vehicles,
    one distant M4.4 earthquake, and a persistent vibration zone."""
    spm = samples_per_minute or int(60 * fs)
    total_seconds = minutes * spm / fs
    # Vehicle speeds scale with the (possibly scaled-down) array so the
    # cars traverse it within the record, like the Fig. 1b diagonals:
    # crossing takes ~45 % / ~60 % of the recording.
    spacing = 2.0
    array_length = n_channels * spacing
    v1 = array_length / (0.45 * total_seconds)
    v2 = -array_length / (0.60 * total_seconds)
    return SceneSpec(
        n_channels=n_channels,
        fs=fs,
        noise_amplitude=1.0,
        seed=seed,
        events=[
            (
                "vehicle",
                dict(
                    start_time=0.05 * total_seconds,
                    start_channel=0.0,
                    speed_mps=v1,
                    amplitude=3.0,
                    freq=15.0,
                ),
            ),
            (
                "vehicle",
                dict(
                    start_time=0.30 * total_seconds,
                    start_channel=n_channels - 1.0,
                    speed_mps=v2,
                    amplitude=2.5,
                    freq=12.0,
                ),
            ),
            (
                "earthquake",
                dict(
                    origin_time=0.55 * total_seconds,
                    epicenter_channel=0.35 * n_channels,
                    amplitude=5.0,
                    peak_freq=5.0,
                ),
            ),
            (
                "vibration",
                dict(
                    center_channel=int(0.8 * n_channels),
                    width=max(2, n_channels // 40),
                    freq=20.0,
                    amplitude=1.5,
                ),
            ),
        ],
    )


_EVENT_BUILDERS: dict[str, Callable[..., np.ndarray]] = {
    "earthquake": earthquake_signal,
    "vehicle": vehicle_signal,
    "vibration": persistent_vibration,
}


def synthesize_scene(
    scene: SceneSpec, minutes: int, samples_per_minute: int | None = None
) -> np.ndarray:
    """Render a scene to one ``(channels, samples)`` array."""
    if minutes < 1:
        raise ConfigError("minutes must be >= 1")
    spm = samples_per_minute or int(60 * scene.fs)
    n_samples = minutes * spm
    rng = np.random.default_rng(scene.seed)
    data = ambient_noise(
        scene.n_channels,
        n_samples,
        fs=scene.fs,
        band=scene.noise_band,
        amplitude=scene.noise_amplitude,
        rng=rng,
    )
    for kind, kwargs in scene.events:
        if kind not in _EVENT_BUILDERS:
            raise ConfigError(f"unknown event kind {kind!r}")
        builder = _EVENT_BUILDERS[kind]
        call_kwargs = dict(kwargs)
        if kind in ("earthquake", "vehicle"):
            call_kwargs.setdefault("channel_spacing", scene.channel_spacing)
        if kind in ("earthquake", "vibration"):
            call_kwargs.setdefault("rng", rng)
        data += builder(scene.n_channels, n_samples, fs=scene.fs, **call_kwargs)
    return data.astype(np.float32)


def generate_dataset(
    directory: str | os.PathLike,
    minutes: int,
    scene: SceneSpec | None = None,
    samples_per_minute: int | None = None,
    start_timestamp: str = "170620100545",
    prefix: str = "westSac",
    channel_groups: bool = False,
    codec: object = None,
) -> list[str]:
    """Write a scene as per-minute DAS files (the acquisition layout).

    Returns the file paths in time order.  ``channel_groups=False`` skips
    the per-channel Fig. 4 metadata groups (they're exercised separately;
    at 10k+ channels they dominate file-creation time).  ``codec``
    selects per-chunk compression of each file's ``DataCT`` (see
    :mod:`repro.hdf5lite.codecs`).
    """
    if scene is None:
        scene = fig1b_scene(minutes=minutes, samples_per_minute=samples_per_minute)
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    spm = samples_per_minute or int(60 * scene.fs)
    data = synthesize_scene(scene, minutes, samples_per_minute=spm)

    paths: list[str] = []
    stamp = start_timestamp
    for minute in range(minutes):
        block = data[:, minute * spm : (minute + 1) * spm]
        metadata = DASMetadata(
            sampling_frequency=scene.fs,
            spatial_resolution=scene.channel_spacing,
            timestamp=stamp,
            n_channels=scene.n_channels,
        )
        path = os.path.join(directory, das_filename(stamp, prefix=prefix))
        write_das_file(
            path, block, metadata, channel_groups=channel_groups, codec=codec
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, spm / scene.fs)
    return paths


def drip_feed_dataset(
    directory: str | os.PathLike,
    minutes: int,
    scene: SceneSpec | None = None,
    samples_per_minute: int | None = None,
    start_timestamp: str = "170620100545",
    prefix: str = "westSac",
    channel_groups: bool = False,
    interval_seconds: float = 0.0,
    sleep=None,
    codec: object = None,
):
    """Yield per-minute file paths one at a time, like a live acquisition.

    The drip-feed mode for exercising the monitoring service: each file
    is written to a temp name and atomically renamed into place (a
    watcher never observes a half-written ``.h5``), then the generator
    yields its path; with ``interval_seconds > 0`` it sleeps between
    files to emulate the acquisition cadence.  ``sleep`` is injectable
    so tests can drip without waiting.
    """
    import time as _time

    if scene is None:
        scene = fig1b_scene(minutes=minutes, samples_per_minute=samples_per_minute)
    if interval_seconds < 0:
        raise ConfigError("interval_seconds must be >= 0")
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    spm = samples_per_minute or int(60 * scene.fs)
    data = synthesize_scene(scene, minutes, samples_per_minute=spm)
    sleep = sleep if sleep is not None else _time.sleep

    stamp = start_timestamp
    for minute in range(minutes):
        block = data[:, minute * spm : (minute + 1) * spm]
        metadata = DASMetadata(
            sampling_frequency=scene.fs,
            spatial_resolution=scene.channel_spacing,
            timestamp=stamp,
            n_channels=scene.n_channels,
        )
        path = os.path.join(directory, das_filename(stamp, prefix=prefix))
        tmp = os.path.join(
            directory, "." + os.path.basename(path) + ".part"
        )
        write_das_file(
            tmp, block, metadata, channel_groups=channel_groups, codec=codec
        )
        os.replace(tmp, path)
        yield path
        stamp = timestamp_add_seconds(stamp, spm / scene.fs)
        if interval_seconds > 0 and minute + 1 < minutes:
            sleep(interval_seconds)
