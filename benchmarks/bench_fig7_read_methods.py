"""Fig. 7 — reading DAS data from a VCA: "collective-per-file" vs
"communication-avoiding" (RCA read as reference).

Paper result (90 processes): communication-avoiding is on average ~37x
faster than collective-per-file; collective-per-file is even slower than
the RCA read; communication-avoiding beats the RCA read too.

Here: (a) the two readers *really execute* on 8 simulated ranks over the
scaled VCA, verifying identical output and comparing virtual makespans;
(b) the machine model reproduces the 90-process / 2880-file figure.
"""

import numpy as np
import pytest

from repro.cluster import cori_haswell
from repro.simmpi import run_spmd
from repro.storage.model import (
    model_collective_per_file,
    model_communication_avoiding,
    model_rca_read,
)
from repro.storage.parallel_read import (
    read_rca_direct,
    read_vca_collective_per_file,
    read_vca_communication_avoiding,
)
from repro.storage.rca import create_rca
from repro.storage.search import scan_directory
from repro.storage.vca import create_vca

RANKS = 8


@pytest.fixture(scope="module")
def merged(tmp_path_factory, scaled_dataset):
    root = tmp_path_factory.mktemp("fig7")
    catalog = scan_directory(scaled_dataset["dir"])[:16]
    vca = create_vca(str(root / "v.h5"), catalog)
    rca = create_rca(str(root / "r.h5"), catalog)
    return {"vca": vca, "rca": rca}


def _spmd(reader, path, cluster):
    def fn(comm):
        return reader(comm, path, cluster.storage)

    return run_spmd(fn, RANKS, cluster=cluster, ranks_per_node=1)


def test_fig7_collective_per_file_benchmark(benchmark, merged):
    cluster = cori_haswell(RANKS)
    result = benchmark.pedantic(
        _spmd,
        args=(read_vca_collective_per_file, merged["vca"], cluster),
        rounds=3,
        iterations=1,
    )
    assert result.size == RANKS


def test_fig7_communication_avoiding_benchmark(benchmark, merged):
    cluster = cori_haswell(RANKS)
    result = benchmark.pedantic(
        _spmd,
        args=(read_vca_communication_avoiding, merged["vca"], cluster),
        rounds=3,
        iterations=1,
    )
    assert result.size == RANKS


def test_fig7_rca_read_benchmark(benchmark, merged):
    cluster = cori_haswell(RANKS)
    result = benchmark.pedantic(
        _spmd, args=(read_rca_direct, merged["rca"], cluster), rounds=3, iterations=1
    )
    assert result.size == RANKS


def test_fig7_table(benchmark, merged, report):
    benchmark.pedantic(_fig7_table, args=(merged, report), rounds=1, iterations=1)


def _fig7_table(merged, report):
    cluster = cori_haswell(RANKS)
    lines = ["Fig. 7 - VCA read methods", ""]

    # --- executed at 8 ranks over the scaled VCA ----------------------
    runs = {
        "collective-per-file": _spmd(
            read_vca_collective_per_file, merged["vca"], cluster
        ),
        "communication-avoiding": _spmd(
            read_vca_communication_avoiding, merged["vca"], cluster
        ),
        "RCA direct": _spmd(read_rca_direct, merged["rca"], cluster),
    }
    # All three deliver identical data.
    assembled = {
        name: np.concatenate(run.results, axis=0) for name, run in runs.items()
    }
    np.testing.assert_array_equal(
        assembled["collective-per-file"], assembled["communication-avoiding"]
    )
    np.testing.assert_array_equal(
        assembled["collective-per-file"], assembled["RCA direct"]
    )

    lines.append(f"executed ({RANKS} ranks, 16 scaled files) - virtual makespan:")
    for name, run in runs.items():
        lines.append(f"  {name:<24} {run.makespan * 1e3:10.3f} ms")
    t_coll = runs["collective-per-file"].makespan
    t_avoid = runs["communication-avoiding"].makespan
    assert t_avoid < t_coll

    # --- machine model at the paper's scale ----------------------------
    p = 90
    file_bytes = 700 * 2**20
    big = cori_haswell(p)
    lines += ["", f"model at paper scale ({p} processes, 700 MB files):"]
    lines.append(
        f"{'files':>6} {'collective(s)':>14} {'comm-avoid(s)':>14} "
        f"{'RCA read(s)':>12} {'speedup':>8}"
    )
    ratios = []
    for n in (90, 360, 720, 1440, 2880):
        coll = model_collective_per_file(big, p, n, file_bytes)
        avoid = model_communication_avoiding(big, p, n, file_bytes)
        rca = model_rca_read(big, p, n * file_bytes)
        ratios.append(coll.total / avoid.total)
        lines.append(
            f"{n:>6} {coll.total:>14.1f} {avoid.total:>14.2f} "
            f"{rca.total:>12.1f} {coll.total / avoid.total:>7.1f}x"
        )
        # Orderings the paper reports:
        assert avoid.total < rca.total < coll.total
    mean_ratio = float(np.mean(ratios))
    lines += [
        "",
        f"mean collective/comm-avoiding speedup: {mean_ratio:.1f}x "
        f"(paper: ~37x on average)",
    ]
    assert 10 < mean_ratio < 120
    report("fig7_read_methods", lines)
