"""Terminal rendering of 2-D arrays (the ASCII Fig. 1b / Fig. 10 view)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_SHADES = " .:-=+*#%@"


def to_ascii(
    array: np.ndarray,
    rows: int = 24,
    cols: int = 72,
    clip_percentile: float | None = None,
) -> str:
    """Render a 2-D array as an ASCII intensity map.

    The array is downsampled to ``rows x cols`` by nearest sampling and
    scaled to the shade ramp; ``clip_percentile`` (e.g. 99) limits the
    dynamic range so outliers don't flatten everything else.
    """
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2 or array.size == 0:
        raise ConfigError("to_ascii needs a non-empty 2-D array")
    if rows < 1 or cols < 1:
        raise ConfigError("rows and cols must be >= 1")
    r_idx = np.linspace(0, array.shape[0] - 1, min(rows, array.shape[0])).astype(int)
    c_idx = np.linspace(0, array.shape[1] - 1, min(cols, array.shape[1])).astype(int)
    small = array[np.ix_(r_idx, c_idx)]
    if clip_percentile is not None:
        if not (50.0 < clip_percentile <= 100.0):
            raise ConfigError("clip_percentile must be in (50, 100]")
        hi = np.percentile(small, clip_percentile)
        lo = np.percentile(small, 100.0 - clip_percentile)
        small = np.clip(small, lo, hi)
    lo, hi = small.min(), small.max()
    scaled = (small - lo) / (hi - lo + 1e-300)
    lines = []
    for row in scaled:
        lines.append(
            "".join(_SHADES[int(v * (len(_SHADES) - 1))] for v in row)
        )
    return "\n".join(lines)


def wiggle_summary(array: np.ndarray, n_channels: int = 8, width: int = 60) -> str:
    """Per-channel RMS bars — a one-glance health view of a record."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2 or array.size == 0:
        raise ConfigError("wiggle_summary needs a non-empty 2-D array")
    idx = np.linspace(0, array.shape[0] - 1, min(n_channels, array.shape[0])).astype(int)
    rms = np.sqrt(np.mean(array[idx] ** 2, axis=1))
    top = rms.max() or 1.0
    lines = []
    for channel, value in zip(idx, rms):
        bar = "#" * int(round(value / top * width))
        lines.append(f"ch {channel:5d} |{bar:<{width}}| rms={value:.3g}")
    return "\n".join(lines)
