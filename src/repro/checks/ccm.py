"""simmpi protocol analyzer (``CCM``): rank-divergent communication.

The bug class: SPMD code where different ranks take different paths
through communication calls.  A collective (``barrier``, ``allgather``,
...) must be entered by *every* rank of the communicator; a blocking
``send`` needs a matching ``recv`` on the peer's path; two ranks that
both block in ``recv`` before either sends deadlock.  DASSA's Alg 2/3
structure — an aggregator rank doing different work from the worker
ranks — is exactly the shape that breeds these bugs.

All three codes are flow-sensitive and (via the call graph) transitive:
a branch "contains" an operation if any statement in its CFG extent
performs it directly *or* calls — at any depth through project code — a
function that does.

``CCM001``
    a rank-conditional branch whose arms reach *different sets* of
    collective kinds.  Extents are CFG-reachable sets from each arm
    entry (bounded at the ``if`` header), so an arm that returns early
    correctly excludes the post-join code the other ranks still run,
    and a collective called in *both* arms (the parallel-read
    aggregator pattern) compares equal.
``CCM002``
    one arm of a rank branch sends (or receives) with no matching
    receive (send) anywhere on the other arm's extent — the unmatched
    message waits forever.
``CCM003``
    a blocking receive on a rank-*unconditional* path with a send
    reachable after it: every rank blocks receiving before any rank
    sends.  Receives inside rank-divergent arms are exempt — the
    parity-ordered halo exchange (``arrayudf/ghost.py``) is the
    blessed fix, not a bug.

Detection is name-based (method-call names on any receiver), so the
analyzer needs no import of simmpi itself and works on fixtures; the
names are the :class:`~repro.simmpi.communicator.Communicator` and
:class:`~repro.simmpi.fabric.Fabric` vocabulary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.callgraph import CallGraph, FunctionInfo, build_callgraph
from repro.checks.cfg import CFG, build_cfg, node_calls, node_exprs
from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["CommProtocolAnalyzer", "COLLECTIVES", "SEND_OPS", "BLOCKING_RECV_OPS"]

#: Communicator methods every rank must enter together.  ``split`` is
#: deliberately absent: the name collides with ``str.split`` everywhere.
COLLECTIVES = frozenset({
    "barrier", "bcast", "scatter", "gather", "allgather", "alltoall",
    "scatterv", "gatherv", "reduce", "allreduce",
})
#: Message-producing calls (fabric ``post`` included).
SEND_OPS = frozenset({"send", "Send", "isend", "post"})
#: Message-consuming calls, blocking or not.
RECV_OPS = frozenset({"recv", "Recv", "irecv", "sendrecv", "match", "match_nowait"})
#: The subset that blocks the caller until a message arrives.
BLOCKING_RECV_OPS = frozenset({"recv", "Recv", "match", "sendrecv"})

_FLOW = frozenset({"normal", "back"})


def _op_name(call: ast.Call) -> str | None:
    """Method-call name, when it is comm vocabulary; None otherwise."""
    if isinstance(call.func, ast.Attribute):
        name = call.func.attr
        if name in COLLECTIVES or name in SEND_OPS or name in RECV_OPS:
            return name
    return None


class _Summary:
    """What one function does communication-wise, directly."""

    __slots__ = ("collectives", "sends", "recvs", "blocking_recvs")

    def __init__(self) -> None:
        self.collectives: set[str] = set()
        self.sends = False
        self.recvs = False
        self.blocking_recvs = False

    def absorb(self, other: "_Summary") -> None:
        self.collectives |= other.collectives
        self.sends = self.sends or other.sends
        self.recvs = self.recvs or other.recvs
        self.blocking_recvs = self.blocking_recvs or other.blocking_recvs

    def note(self, op: str) -> None:
        if op in COLLECTIVES:
            self.collectives.add(op)
        if op in SEND_OPS or op == "sendrecv":
            self.sends = True
        if op in RECV_OPS:
            self.recvs = True
        if op in BLOCKING_RECV_OPS:
            self.blocking_recvs = True

    @property
    def any(self) -> bool:
        return bool(self.collectives) or self.sends or self.recvs


def _is_rank_test(stmt: ast.stmt) -> bool:
    """True for ``if`` headers branching on a rank identity (``rank``,
    ``comm.rank == 0``, ``self.comm.rank % 2``, ...).  A rank passed as
    a *call argument* (``fabric.is_failed(comm.rank)``) is data, not a
    role decision, so calls are pruned from the walk."""
    if not isinstance(stmt, ast.If):
        return False
    stack: list[ast.AST] = [stmt.test]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            continue
        if isinstance(node, ast.Name) and node.id == "rank":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "rank":
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


@register
class CommProtocolAnalyzer(Analyzer):
    name = "simmpi-protocol"
    description = "rank-divergent collectives, unmatched sends, recv ordering"
    version = 1
    codes = {
        "CCM001": "collective reached by some ranks but not others",
        "CCM002": "rank-conditional send/recv with no match on the other arm",
        "CCM003": "blocking recv before send on a rank-unconditional path",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        graph = build_callgraph(project)
        direct = self._direct_summaries(graph)
        transitive = self._transitive_summaries(graph, direct)
        for mod in project.modules:
            if mod.tree is None or mod.relaxed:
                continue
            if not project.in_scope(mod):
                continue
            for func in graph.functions_in(mod.rel):
                yield from self._check_function(mod, func, graph, direct, transitive)

    # -- summaries -------------------------------------------------------------
    def _direct_summaries(
        self, graph: CallGraph
    ) -> dict[tuple[str, str], _Summary]:
        from repro.checks.callgraph import own_calls

        out: dict[tuple[str, str], _Summary] = {}
        for key, func in graph.functions.items():
            summary = _Summary()
            for call in own_calls(func.node):
                op = _op_name(call)
                if op is not None:
                    summary.note(op)
            out[key] = summary
        return out

    def _transitive_summaries(
        self,
        graph: CallGraph,
        direct: dict[tuple[str, str], _Summary],
    ) -> dict[tuple[str, str], _Summary]:
        out: dict[tuple[str, str], _Summary] = {}
        for key, func in graph.functions.items():
            summary = _Summary()
            summary.absorb(direct[key])
            for callee in graph.transitive_closure_calls(func):
                if callee in direct:
                    summary.absorb(direct[callee])
            out[key] = summary
        return out

    # -- per-extent op collection ----------------------------------------------
    def _extent_summary(
        self,
        mod: SourceModule,
        cfg: CFG,
        extent: set[int],
        graph: CallGraph,
        transitive: dict[tuple[str, str], _Summary],
    ) -> _Summary:
        summary = _Summary()
        for uid in extent:
            node = cfg.nodes[uid]
            if node.kind != "stmt" or node.stmt is None:
                continue
            for call in node_calls(node.stmt):
                op = _op_name(call)
                if op is not None:
                    summary.note(op)
                callee = graph.resolve_site(mod.rel, call)
                if callee is not None:
                    summary.absorb(transitive[callee.key])
        return summary

    def _arm_extents(self, cfg: CFG, if_uid: int) -> list[set[int]]:
        """One CFG extent per normal successor of a branch header,
        bounded at the header itself (so a loop around the ``if`` does
        not bleed one arm into the other)."""
        targets: list[int] = []
        for edge in cfg.succs.get(if_uid, ()):
            if edge.kind == "normal" and edge.target not in targets:
                targets.append(edge.target)
        return [
            cfg.reachable_from(t, kinds=_FLOW, stop=frozenset({if_uid}))
            for t in targets
        ]

    # -- the checks ------------------------------------------------------------
    def _check_function(
        self,
        mod: SourceModule,
        func: FunctionInfo,
        graph: CallGraph,
        direct: dict[tuple[str, str], _Summary],
        transitive: dict[tuple[str, str], _Summary],
    ) -> Iterator[Finding]:
        # Fast path: nothing comm-ish here or below — skip the CFG.
        if not transitive[func.key].any:
            return
        cfg = build_cfg(func.node)
        divergent: set[int] = set()
        rank_ifs: list[tuple[int, ast.stmt]] = []
        for node in cfg.stmt_nodes():
            if node.stmt is not None and _is_rank_test(node.stmt):
                rank_ifs.append((node.uid, node.stmt))

        for if_uid, if_stmt in rank_ifs:
            extents = self._arm_extents(cfg, if_uid)
            for extent in extents:
                divergent |= extent
            arms = []
            for extent in extents:
                summary = self._extent_summary(mod, cfg, extent, graph, transitive)
                # A guard arm that only raises (never reaches a normal
                # return, performs no comm) is an error path, not a rank
                # role — ``if dest == self.rank: raise`` must not read
                # as "one rank diverges here".
                if cfg.exit not in extent and not summary.any:
                    continue
                arms.append(summary)
            if len(arms) < 2:
                continue
            yield from self._check_collectives(mod, func, if_stmt, arms)
            yield from self._check_matching(mod, func, if_stmt, arms)

        yield from self._check_recv_order(
            mod, func, cfg, divergent, graph, transitive
        )

    def _check_collectives(
        self, mod: SourceModule, func: FunctionInfo, if_stmt: ast.stmt,
        arms: list[_Summary],
    ) -> Iterator[Finding]:
        kind_sets = [frozenset(a.collectives) for a in arms]
        if len(set(kind_sets)) <= 1:
            return
        if mod.node_suppressed(if_stmt, "CCM001"):
            return
        shown = " vs ".join(
            "{" + ", ".join(sorted(k)) + "}" if k else "{}" for k in kind_sets
        )
        yield self.finding(
            "CCM001", mod, if_stmt.lineno,
            f"{func.qualname}: rank-conditional branch reaches different "
            f"collectives per arm: {shown} — ranks taking the poorer arm "
            f"never enter the missing collective",
            hint="hoist the collective out of the rank branch, or call it "
                 "in every arm (see storage/parallel_read.py)",
        )

    def _check_matching(
        self, mod: SourceModule, func: FunctionInfo, if_stmt: ast.stmt,
        arms: list[_Summary],
    ) -> Iterator[Finding]:
        if mod.node_suppressed(if_stmt, "CCM002"):
            return
        for i, arm in enumerate(arms):
            others = [a for j, a in enumerate(arms) if j != i]
            if arm.sends and not any(o.recvs for o in others):
                yield self.finding(
                    "CCM002", mod, if_stmt.lineno,
                    f"{func.qualname}: one arm of a rank branch sends but "
                    f"the other arm never receives — the message is "
                    f"unmatched",
                    hint="receive on the peer ranks' path, or make the "
                         "exchange symmetric (comm.sendrecv)",
                )
                return
            if arm.blocking_recvs and not any(o.sends for o in others):
                yield self.finding(
                    "CCM002", mod, if_stmt.lineno,
                    f"{func.qualname}: one arm of a rank branch blocks in "
                    f"recv but the other arm never sends — the recv can "
                    f"never complete",
                    hint="send on the peer ranks' path, or use a "
                         "non-blocking probe (fabric.match_nowait)",
                )
                return

    def _check_recv_order(
        self,
        mod: SourceModule,
        func: FunctionInfo,
        cfg: CFG,
        divergent: set[int],
        graph: CallGraph,
        transitive: dict[tuple[str, str], _Summary],
    ) -> Iterator[Finding]:
        for node in cfg.stmt_nodes():
            if node.uid in divergent or node.stmt is None:
                continue
            blocking_call = None
            for call in node_calls(node.stmt):
                op = _op_name(call)
                if op in BLOCKING_RECV_OPS and op != "sendrecv":
                    blocking_call = call
                    break
                callee = graph.resolve_site(mod.rel, call)
                if callee is not None and transitive[callee.key].blocking_recvs:
                    blocking_call = call
                    break
            if blocking_call is None:
                continue
            after = cfg.reachable_from(node.uid, kinds=_FLOW) - {node.uid}
            sends_after = False
            for uid in after:
                later = cfg.nodes[uid]
                if later.kind != "stmt" or later.stmt is None or uid in divergent:
                    continue
                for call in node_calls(later.stmt):
                    op = _op_name(call)
                    if op in SEND_OPS:
                        sends_after = True
                        break
                    callee = graph.resolve_site(mod.rel, call)
                    if callee is not None and transitive[callee.key].sends:
                        sends_after = True
                        break
                if sends_after:
                    break
            if not sends_after:
                continue
            if mod.node_suppressed(node.stmt, "CCM003"):
                continue
            yield self.finding(
                "CCM003", mod, node.line,
                f"{func.qualname}: blocking recv on a rank-unconditional "
                f"path with a send after it — every rank waits to receive "
                f"before any rank sends",
                hint="use comm.sendrecv, send first on half the ranks "
                     "(rank-parity ordering, see arrayudf/ghost.py), or a "
                     "non-blocking recv",
            )
