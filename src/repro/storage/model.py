"""Closed-form / discrete-event cost evaluation of the storage operations.

The threaded runtime executes the read strategies for real at small rank
counts; these functions evaluate the *same schedules* against the machine
model for arbitrary ``(ranks, files, bytes)`` — that is how the paper's
90-rank / 2880-file / 1.9 TB points are produced on one core.  Trace-
equivalence tests pin the two paths together at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import ClusterSpec
from repro.cluster.storage import IORequest


@dataclass(frozen=True)
class ReadCost:
    """Virtual-time breakdown of one read strategy."""

    read_time: float
    comm_time: float
    n_requests: int
    n_broadcasts: int = 0

    @property
    def total(self) -> float:
        return self.read_time + self.comm_time


def files_per_rank(n_files: int, p: int, rank: int) -> int:
    """Round-robin file ownership count (files ``rank, rank+p, ...``)."""
    return len(range(rank, n_files, p))


def model_collective_per_file(
    cluster: ClusterSpec, p: int, n_files: int, file_bytes: int
) -> ReadCost:
    """Fig. 5a cost: files are processed one at a time; each file's
    "merge-read-broadcast" costs k aggregators reading the file's stripes
    in parallel (k bounded by the file's stripe count) plus one p-wide
    broadcast, and the broadcast orders iteration i before i+1."""
    storage = cluster.storage
    k = max(1, min(p, storage.default_stripe_count))
    rate = min(storage.ost_bandwidth, storage.client_bandwidth)
    read_one = storage.open_overhead + (file_bytes / k) / rate
    bcast_one = cluster.network.bcast_time(file_bytes, p)
    return ReadCost(
        read_time=n_files * read_one,
        comm_time=n_files * bcast_one,
        n_requests=n_files * k,
        n_broadcasts=n_files,
    )


def model_communication_avoiding(
    cluster: ClusterSpec, p: int, n_files: int, file_bytes: int
) -> ReadCost:
    """Fig. 5b cost: all ranks read their whole files concurrently (the
    storage DES resolves OST contention), then one all-to-all."""
    storage = cluster.storage
    requests = [
        IORequest(rank=index % p, file_id=index, nbytes=file_bytes, is_open=True)
        for index in range(n_files)
    ]
    read_time = storage.makespan(requests)
    max_files_per_rank = files_per_rank(n_files, p, 0)
    pair_bytes = max_files_per_rank * file_bytes // max(1, p)
    comm_time = cluster.network.alltoallv_time(pair_bytes, p)
    return ReadCost(
        read_time=read_time,
        comm_time=comm_time,
        n_requests=n_files,
        n_broadcasts=0,
    )


def model_rca_read(cluster: ClusterSpec, p: int, total_bytes: int) -> ReadCost:
    """Parallel read of a really-merged array: one contiguous request per
    rank.  A *single* file is striped over only ``default_stripe_count``
    OSTs, so its aggregate bandwidth is capped well below the file
    system's — which is why the communication-avoiding file-per-process
    pattern can beat even the physically merged array (Fig. 7)."""
    storage = cluster.storage
    per_rank = total_bytes // p
    stripes = storage.default_stripe_count
    requests = [
        IORequest(rank=rank, file_id=rank % stripes, nbytes=per_rank, is_open=True)
        for rank in range(p)
    ]
    return ReadCost(
        read_time=storage.makespan(requests),
        comm_time=0.0,
        n_requests=p,
    )


def model_rca_create(cluster: ClusterSpec, n_files: int, file_bytes: int) -> float:
    """Single-process RCA construction: read every file whole, write every
    block back out (the Fig. 6 slow path)."""
    storage = cluster.storage
    read = n_files * storage.request_time(file_bytes, is_open=True)
    write = n_files * storage.request_time(file_bytes, is_open=False)
    return read + write + storage.open_overhead  # + creating the output file


def model_vca_create(
    cluster: ClusterSpec,
    n_files: int,
    validate: bool = False,
    catalog_entry_cost: float = 1e-6,
) -> float:
    """VCA construction cost.

    The fast path (``validate=False``, what the paper measures at
    ~0.01 s) records file names from the already-scanned catalog — one
    footer read for the first file to learn the shape, plus an in-memory
    catalog entry per source and the output-file write.  With
    ``validate=True`` every source's footer is opened (the safe mode of
    :func:`repro.storage.vca.create_vca`)."""
    storage = cluster.storage
    if validate:
        per_file = storage.open_overhead + storage.metadata_op_overhead
        return n_files * per_file + storage.open_overhead
    return 2 * storage.open_overhead + n_files * catalog_entry_cost


def model_search(cluster: ClusterSpec, n_files: int, catalog_entry_cost: float = 5e-7) -> float:
    """Timestamp search over an in-memory catalog (name-derived stamps):
    a linear scan with no storage I/O."""
    return n_files * catalog_entry_cost
