"""Per-function control-flow graphs for the flow-sensitive analyzers.

One :class:`CFG` per ``def``: statement-granularity nodes plus synthetic
``entry`` / ``exit`` / ``raise_exit`` nodes, connected by edges labelled

``normal``
    ordinary fall-through, branch, and call-return flow;
``back``
    a loop back-edge (``while``/``for`` body returning to the header) —
    the same reachability as ``normal``, tagged so tests and widening
    heuristics can tell the two apart;
``exception``
    flow taken when the statement raises.  Every statement is
    conservatively assumed to be able to raise (almost anything in
    Python can: attribute access, indexing, arithmetic, any call), so
    every statement node carries an exception edge to the innermost
    enclosing handler — each ``except`` clause entry — and, unless one
    of those clauses is broad (``except:`` / ``except Exception`` /
    ``BaseException``), onward to the next enclosing frame, ending at
    ``raise_exit`` (the exception leaves the function).

``try/finally`` is modelled with a single copy of the ``finally`` body:
the normal path runs body → finally → after, and the exception path
enters the same finally block, whose *exception continuation* edge leads
to the outer handler.  The known approximation: after an exceptional
entry the single shared copy also reaches the normal ``after``
successor, which can only add paths (safe for may-analyses like leak
detection, which is what this engine runs).

``break``/``continue`` jump to the innermost loop's after/header;
``return`` edges to ``exit`` — or, inside a ``try/finally``, to the
innermost pending finally region, whose frontier then gains an exit
edge (with nested finallies the single-copy approximation may let that
path skip intermediate copies; again this only adds paths).  ``raise``
edges to the exception target only.  ``while True`` (any truthy
constant) gets no false edge, so code
after an escape-free infinite loop is correctly unreachable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CFG", "CFGNode", "Edge", "build_cfg", "node_exprs", "node_calls",
    "BROAD_HANDLERS",
]

#: Handler names that catch everything a library can throw.
BROAD_HANDLERS = frozenset({"Exception", "BaseException"})

ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic entry/exit marker."""

    uid: int
    kind: str  # "stmt" | "entry" | "exit" | "raise-exit"
    stmt: ast.stmt | None = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass(frozen=True)
class Edge:
    target: int
    kind: str  # "normal" | "back" | "exception"


@dataclass
class CFG:
    """The graph; ``succs[uid]`` lists outgoing edges."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: dict[int, CFGNode] = field(default_factory=dict)
    succs: dict[int, list[Edge]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2

    def node_for(self, stmt: ast.stmt) -> CFGNode | None:
        for node in self.nodes.values():
            if node.stmt is stmt:
                return node
        return None

    def preds(self) -> dict[int, list[Edge]]:
        """Reverse adjacency (computed on demand)."""
        rev: dict[int, list[Edge]] = {uid: [] for uid in self.nodes}
        for src, edges in self.succs.items():
            for edge in edges:
                rev[edge.target].append(Edge(src, edge.kind))
        return rev

    def reachable_from(
        self,
        start: int,
        kinds: frozenset[str] | None = None,
        stop: frozenset[int] = frozenset(),
    ) -> set[int]:
        """Every node reachable from ``start`` (inclusive) along edges
        whose kind is in ``kinds`` (default: all kinds).  Nodes in
        ``stop`` are neither entered nor traversed — used to bound a
        branch arm's extent at its own ``if`` header."""
        if start in stop:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            uid = stack.pop()
            for edge in self.succs.get(uid, ()):
                if kinds is not None and edge.kind not in kinds:
                    continue
                if edge.target in stop or edge.target in seen:
                    continue
                seen.add(edge.target)
                stack.append(edge.target)
        return seen

    def stmt_nodes(self) -> list[CFGNode]:
        return [n for n in self.nodes.values() if n.kind == "stmt"]


class _Builder:
    """Recursive-descent CFG construction.

    ``exc_targets`` is the current exception continuation: the list of
    node uids an exception from here may flow to (handler entries plus,
    when no broad handler guards this frame, the outer continuation).
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.cfg = CFG(func=func)
        self.cfg.nodes[0] = CFGNode(0, ENTRY)
        self.cfg.nodes[1] = CFGNode(1, EXIT)
        self.cfg.nodes[2] = CFGNode(2, RAISE_EXIT)
        for uid in (0, 1, 2):
            self.cfg.succs[uid] = []
        self._next = 3
        # Pending finally regions (innermost last): a ``return`` inside
        # a try/finally must run the finally body before reaching exit.
        self._fin: list[dict] = []

    def build(self) -> CFG:
        last = self._seq(
            self.cfg.func.body,
            preds=[(self.cfg.entry, "normal")],
            exc=[self.cfg.raise_exit],
            loop=None,
        )
        self._connect(last, self.cfg.exit, "normal")
        return self.cfg

    # -- plumbing -------------------------------------------------------------
    def _new(self, stmt: ast.stmt) -> int:
        uid = self._next
        self._next += 1
        self.cfg.nodes[uid] = CFGNode(uid, "stmt", stmt)
        self.cfg.succs[uid] = []
        return uid

    def _edge(self, src: int, dst: int, kind: str) -> None:
        edge = Edge(dst, kind)
        if edge not in self.cfg.succs[src]:
            self.cfg.succs[src].append(edge)

    def _connect(self, frontier: list[tuple[int, str]], dst: int, kind_default: str) -> None:
        for src, kind in frontier:
            self._edge(src, dst, kind if kind != "normal" else kind_default)

    # -- statement sequencing --------------------------------------------------
    def _seq(
        self,
        stmts: list[ast.stmt],
        preds: list[tuple[int, str]],
        exc: list[int],
        loop: tuple[int, list[tuple[int, str]]] | None,
    ) -> list[tuple[int, str]]:
        """Wire ``stmts`` one after another; returns the dangling
        frontier (node, edge-kind) pairs that should flow to whatever
        comes next.  ``loop`` is ``(header_uid, break_frontier)``."""
        frontier = preds
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier, exc, loop)
            if not frontier:  # everything returned/raised/broke
                break
        return frontier

    def _stmt(
        self,
        stmt: ast.stmt,
        preds: list[tuple[int, str]],
        exc: list[int],
        loop: tuple[int, list[tuple[int, str]]] | None,
    ) -> list[tuple[int, str]]:
        uid = self._new(stmt)
        self._connect(preds, uid, "normal")
        if not isinstance(stmt, ast.Try):
            # The try header is a structural no-op: its body statements
            # carry their own exception edges (wired in _try), and an
            # edge from the header itself would leak pre-try state
            # straight past the handlers and the finally.
            for target in exc:
                self._edge(uid, target, "exception")

        if isinstance(stmt, (ast.If,)):
            then_f = self._seq(stmt.body, [(uid, "normal")], exc, loop)
            else_f = (
                self._seq(stmt.orelse, [(uid, "normal")], exc, loop)
                if stmt.orelse
                else [(uid, "normal")]
            )
            return then_f + else_f

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[tuple[int, str]] = []
            body_f = self._seq(stmt.body, [(uid, "normal")], exc, (uid, breaks))
            for src, _kind in body_f:
                self._edge(src, uid, "back")
            infinite = (
                isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value)
            )
            exhaust: list[tuple[int, str]] = [] if infinite else [(uid, "normal")]
            if stmt.orelse:
                exhaust = self._seq(stmt.orelse, exhaust, exc, loop) if exhaust else []
            return exhaust + breaks

        if isinstance(stmt, ast.Break):
            if loop is not None:
                loop[1].append((uid, "normal"))
            return []

        if isinstance(stmt, ast.Continue):
            if loop is not None:
                self._edge(uid, loop[0], "back")
            return []

        if isinstance(stmt, ast.Return):
            if self._fin:
                # Route through the innermost pending finally; the
                # finally's frontier gets an exit edge below (single-copy
                # approximation — a nested return may skip intermediate
                # finallies on the way out, see module docstring).
                self._edge(uid, self._fin[-1]["entry"], "normal")
                for frame in self._fin:
                    frame["wants_exit"] = True
            else:
                self._edge(uid, self.cfg.exit, "normal")
            return []

        if isinstance(stmt, ast.Raise):
            # Only the exception edges added above apply.
            return []

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._seq(stmt.body, [(uid, "normal")], exc, loop)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, uid, exc, loop)

        if isinstance(stmt, ast.Match):
            frontier: list[tuple[int, str]] = []
            exhausted = True
            for case in stmt.cases:
                frontier += self._seq(case.body, [(uid, "normal")], exc, loop)
                if (
                    isinstance(case.pattern, (ast.MatchAs,))
                    and case.pattern.pattern is None
                    and case.guard is None
                ):
                    exhausted = False  # wildcard case: no fall-through
            if exhausted:
                frontier.append((uid, "normal"))
            return frontier

        # Plain statement (expr, assign, assert, import, nested def, ...).
        return [(uid, "normal")]

    def _try(
        self,
        stmt: ast.Try,
        uid: int,
        exc: list[int],
        loop: tuple[int, list[tuple[int, str]]] | None,
    ) -> list[tuple[int, str]]:
        # The finally block, if present, becomes the continuation of both
        # the normal and the exceptional path.
        handler_entries: list[int] = []
        broad = False
        for handler in stmt.handlers:
            names = _handler_names(handler)
            if not names or names & BROAD_HANDLERS:
                broad = True

        # Build handler bodies lazily: we need their entry uids first to
        # give try-body statements their exception targets.
        # Synthesise one node per handler clause (the `except X:` line).
        for handler in stmt.handlers:
            huid = self._new(handler_stmt_proxy(handler))
            handler_entries.append(huid)

        # Exception continuation for code inside the try body: the
        # handlers, plus the outer targets unless some handler is broad.
        finally_exc_entry: list[int] = []
        if stmt.finalbody:
            # One shared finally region; exceptions route through it.
            fin_first = self._peek_uid()
            fin_frontier = self._seq(
                stmt.finalbody, [], exc, loop
            )  # wired below via preds
            finally_exc_entry = [fin_first]
            outer_after_finally = fin_frontier
        else:
            outer_after_finally = None

        inner_exc = list(handler_entries) + ([] if broad else (finally_exc_entry or exc))
        if stmt.finalbody and broad is False and not handler_entries:
            inner_exc = finally_exc_entry
        if not inner_exc:
            inner_exc = finally_exc_entry or exc

        fin_frame: dict | None = None
        if stmt.finalbody:
            # Returns inside the body/handlers must run the finally first.
            fin_frame = {"entry": finally_exc_entry[0], "wants_exit": False}
            self._fin.append(fin_frame)

        body_f = self._seq(stmt.body, [(uid, "normal")], inner_exc, loop)
        if stmt.orelse:
            body_f = self._seq(stmt.orelse, body_f, inner_exc, loop)

        # Handler bodies: exceptions inside a handler go to the finally
        # (if any) or the outer continuation.
        handler_exc = finally_exc_entry or exc
        handler_f: list[tuple[int, str]] = []
        for handler, huid in zip(stmt.handlers, handler_entries):
            for target in handler_exc:
                self._edge(huid, target, "exception")
            handler_f += self._seq(handler.body, [(huid, "normal")], handler_exc, loop)

        if fin_frame is not None:
            self._fin.pop()

        after_try = body_f + handler_f
        if stmt.finalbody:
            # Normal completion also runs the finally region.
            self._connect(after_try, finally_exc_entry[0], "normal")
            if fin_frame is not None and fin_frame["wants_exit"]:
                # Some return routed through this finally: after it runs,
                # that path leaves the function.
                self._connect(
                    outer_after_finally or [], self.cfg.exit, "normal"
                )
            # The finally region's exception continuation is the outer one.
            # (Its statements already carry exception edges to ``exc``.)
            # After the finally, fall through to whatever follows the try
            # (single-copy approximation, see module docstring); the
            # exceptional path out of the finally is the exception edges
            # its statements carry.
            return outer_after_finally or []
        return after_try

    def _peek_uid(self) -> int:
        return self._next


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    if node is None:
        return set()
    names: set[str] = set()
    for sub in [node] if not isinstance(node, ast.Tuple) else node.elts:
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names or {"<dynamic>"}


def handler_stmt_proxy(handler: ast.ExceptHandler) -> ast.stmt:
    """An ``ast.stmt`` stand-in so a handler clause can live in a CFGNode
    (``ExceptHandler`` itself is not a statement)."""
    proxy = ast.Pass()
    proxy.lineno = handler.lineno
    proxy.col_offset = handler.col_offset
    proxy._handler = handler  # type: ignore[attr-defined]
    return proxy


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG for one function definition."""
    return _Builder(func).build()


def node_exprs(stmt: ast.stmt):
    """The expressions *this* CFG node evaluates, pruned of nested
    scopes.

    A compound statement's CFG node covers only its header (an ``if``
    node evaluates the test; its body statements are their own nodes),
    and nested ``def``/``lambda`` bodies belong to the nested function,
    so both are excluded from the walk.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        roots: list[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        roots = []
    elif isinstance(stmt, ast.Match):
        roots = [stmt.subject]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        roots = list(stmt.decorator_list)
    else:
        roots = [stmt]
    stack = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def node_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Call expressions evaluated by this CFG node (see node_exprs)."""
    return [n for n in node_exprs(stmt) if isinstance(n, ast.Call)]
