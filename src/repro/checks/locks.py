"""Lock-discipline analyzer (``LCK``).

The convention: an instance attribute whose assignment carries a
``# guarded-by: <lock-attr>`` comment is shared mutable state protected
by ``self.<lock-attr>``.  Every *mutation* of that attribute —

* assignment / augmented assignment / ``del`` of ``self.attr``, of
  ``self.attr[key]`` or of ``self.attr.field``,
* a mutating method call (``append``, ``pop``, ``update``, ``clear``,
  ``add``, ``move_to_end``, ...) on ``self.attr``,
* ``setattr(self, ...)`` in a class that has guarded attributes

— must happen lexically inside a ``with self.<lock-attr>:`` block, or in
a method marked ``# holds-lock`` (documented as called with the lock
held).  ``__init__``-family methods are exempt: the instance is not yet
shared during construction.  Reads are deliberately not checked — the
repo's snapshot-style readers take the lock where consistency matters,
and flagging every read would drown the signal.

Code held inside a nested ``def``/``lambda`` does not inherit the
enclosing ``with``: a closure outlives the block that created it, so the
analyzer conservatively treats it as running with no locks held.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project, SourceModule

__all__ = ["LockDisciplineAnalyzer", "MUTATING_METHODS"]

#: Method names treated as in-place mutation of their receiver.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "remove", "clear", "update",
    "add", "discard", "setdefault", "move_to_end", "sort", "reverse",
    "rotate", "write", "put", "put_nowait",
})

#: Methods where mutation is construction, not sharing.
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__", "__init_subclass__"})


def _self_attr(node: ast.expr, self_name: str) -> str | None:
    """The attribute name when ``node`` is ``self.X`` (possibly through
    subscripts / attribute chains rooted at ``self.X``)."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
        ):
            return node.attr
        node = node.value
    return None


def _collect_guards(
    mod: SourceModule, cls: ast.ClassDef
) -> tuple[dict[str, str], set[str]]:
    """``guards``: attr -> lock attr (from ``# guarded-by``) and the set
    of every attribute assigned anywhere in the class (to validate that
    the named lock actually exists)."""
    guards: dict[str, str] = {}
    assigned: set[str] = set()

    def note_assignment(target: ast.expr, line: int, self_name: str | None) -> None:
        if isinstance(target, ast.Name) and self_name is None:
            attr = target.id  # class-level (dataclass field) assignment
        elif self_name is not None:
            attr = _self_attr(target, self_name)
            if attr is None:
                return
        else:
            return
        assigned.add(attr)
        lock = mod.guarded_on(line)
        if lock is not None:
            guards[attr] = lock

    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                note_assignment(t, stmt.lineno, None)
        elif isinstance(stmt, ast.AnnAssign):
            note_assignment(stmt.target, stmt.lineno, None)
        elif isinstance(stmt, ast.FunctionDef):
            self_name = stmt.args.args[0].arg if stmt.args.args else "self"
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        note_assignment(t, node.lineno, self_name)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    note_assignment(node.target, node.lineno, self_name)
    return guards, assigned


@register
class LockDisciplineAnalyzer(Analyzer):
    name = "lock-discipline"
    description = "guarded attributes only mutate under their lock"
    codes = {
        "LCK001": "guarded attribute mutated outside its lock",
        "LCK002": "guarded-by names a lock attribute the class never assigns",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        for mod in project.modules:
            if mod.tree is None or not project.in_scope(mod):
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(mod, node)

    def _check_class(self, mod: SourceModule, cls: ast.ClassDef) -> Iterator[Finding]:
        guards, assigned = _collect_guards(mod, cls)
        if not guards:
            return
        for attr, lock in sorted(guards.items()):
            if lock not in assigned:
                yield self.finding(
                    "LCK002", mod, cls.lineno,
                    f"{cls.name}.{attr} is guarded-by {lock!r}, "
                    f"but the class never assigns self.{lock}",
                    hint="fix the annotation or create the lock in __init__",
                )
        for stmt in cls.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if stmt.name in _EXEMPT_METHODS:
                continue
            if mod.holds_lock_on(stmt.lineno) or mod.holds_lock_on(stmt.lineno - 1):
                continue
            self_name = stmt.args.args[0].arg if stmt.args.args else "self"
            yield from self._check_method(mod, cls, stmt, self_name, guards)

    def _check_method(
        self,
        mod: SourceModule,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
        self_name: str,
        guards: dict[str, str],
    ) -> Iterator[Finding]:
        def mutations(node: ast.AST) -> Iterator[str]:
            """Guarded attributes this one node mutates."""
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for t in targets:
                attr = _self_attr(t, self_name)
                if attr in guards:
                    yield attr
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                ):
                    attr = _self_attr(func.value, self_name)
                    if attr in guards:
                        yield attr
                elif (
                    isinstance(func, ast.Name)
                    and func.id == "setattr"
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id == self_name
                ):
                    # setattr(self, <dynamic>, v): treat as touching every
                    # guarded attribute — it must hold every guard lock.
                    yield from sorted(set(guards))

        findings: list[Finding] = []

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, ast.With):
                inner = set(held)
                for item in node.items:
                    lock = _self_attr(item.context_expr, self_name)
                    if lock is not None:
                        inner.add(lock)
                    visit(item.context_expr, held)
                for child in node.body:
                    visit(child, frozenset(inner))
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A closure may run after the with-block exits.
                body = node.body if isinstance(node.body, list) else [node.body]
                for child in body:
                    visit(child, frozenset())
                return
            for attr in set(mutations(node)):
                if guards[attr] not in held and not mod.node_suppressed(node, "LCK001"):
                    findings.append(self.finding(
                        "LCK001", mod, node.lineno,
                        f"{cls.name}.{fn.name} mutates guarded attribute "
                        f"{attr!r} without holding self.{guards[attr]}",
                        hint=f"wrap in `with self.{guards[attr]}:` or mark "
                             f"the method `# holds-lock`",
                    ))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn.body:
            visit(stmt, frozenset())
        yield from findings
