"""The Communicator: mpi4py-style API over the simulated fabric.

Data movement is real (objects/arrays actually travel between rank
threads); *time* is virtual, charged per operation from the cluster's
:class:`~repro.cluster.network.NetworkModel` and reconciled across ranks
with the happens-before rule (a receive completes no earlier than its
matching send; a collective starts at the latest participant's entry).

Because ranks are threads in one address space, received objects are not
deep-copied; user code must treat received buffers as read-only or copy
them — the same discipline MPI codes apply to shared windows.
"""

from __future__ import annotations

import pickle
from typing import Any, Sequence

import numpy as np

from repro.cluster.machine import ClusterSpec
from repro.cluster.network import NetworkModel
from repro.errors import MPIError
from repro.simmpi.fabric import ANY_SOURCE, ANY_TAG, Fabric, Message
from repro.simmpi.reduce_ops import SUM, ReduceOp
from repro.simmpi.tracing import Tracer
from repro.utils.timer import VirtualTimer

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG", "payload_nbytes"]


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of a payload.

    Arrays and bytes are exact; other objects use their pickle length
    (what mpi4py's lowercase API would actually ship).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple)) and all(
        isinstance(item, np.ndarray) for item in obj
    ):
        return sum(item.nbytes for item in obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable: charge a token size
        return 64


class Communicator:
    """One rank's endpoint of the simulated communicator."""

    def __init__(
        self,
        rank: int,
        size: int,
        fabric: Fabric,
        clock: VirtualTimer | None = None,
        network: NetworkModel | None = None,
        cluster: ClusterSpec | None = None,
        ranks_per_node: int | None = None,
        tracer: Tracer | None = None,
        recv_timeout: float = 60.0,
    ):
        if not (0 <= rank < size):
            raise MPIError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self._fabric = fabric
        self.clock = clock if clock is not None else VirtualTimer()
        self._network = network if network is not None else (
            cluster.network if cluster is not None else NetworkModel()
        )
        self._cluster = cluster
        self._ranks_per_node = (
            ranks_per_node if ranks_per_node is not None else size
        )
        self.tracer = tracer if tracer is not None else Tracer(rank)
        self._recv_timeout = recv_timeout

    @property
    def fabric(self) -> Fabric:
        """The shared fabric — exposed for dead-rank chaos hooks
        (:meth:`Fabric.fail_rank` / :meth:`Fabric.restore_rank`) and
        non-blocking polling loops."""
        return self._fabric

    # -- topology helpers ----------------------------------------------------------
    @property
    def node(self) -> int:
        """The node this rank runs on (block mapping)."""
        if self._cluster is not None:
            return self._cluster.node_of_rank(self.rank, self._ranks_per_node)
        return self.rank // self._ranks_per_node

    def same_node(self, other_rank: int) -> bool:
        if self._cluster is not None:
            return self._cluster.same_node(self.rank, other_rank, self._ranks_per_node)
        return self.rank // self._ranks_per_node == other_rank // self._ranks_per_node

    # -- point-to-point -------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking eager send of a Python object / numpy array."""
        if dest == self.rank:
            raise MPIError("send to self would deadlock; use a local variable")
        nbytes = payload_nbytes(obj)
        t_start = self.clock.now
        self.clock.advance(
            self._network.p2p_time(nbytes, self.same_node(dest)), phase="comm"
        )
        self._fabric.post(
            dest,
            Message(
                source=self.rank,
                tag=tag,
                payload=obj,
                nbytes=nbytes,
                send_time=self.clock.now,
            ),
        )
        self.tracer.record("send", nbytes, dest, t_start, self.clock.now)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        t_start = self.clock.now
        msg = self._fabric.match(self.rank, source, tag, timeout=self._recv_timeout)
        self.clock.synchronize(msg.send_time)
        self.tracer.record("recv", msg.nbytes, msg.source, t_start, self.clock.now)
        return msg.payload

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer send (numpy array, exact wire size)."""
        self.send(np.ascontiguousarray(array), dest, tag)

    def Recv(self, buffer: np.ndarray, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> None:
        """Buffer receive into a preallocated array."""
        payload = self.recv(source, tag)
        incoming = np.asarray(payload)
        if incoming.size != buffer.size:
            raise MPIError(
                f"Recv buffer size {buffer.size} != message size {incoming.size}"
            )
        buffer.reshape(-1)[:] = incoming.reshape(-1)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Combined send+recv (safe ordering handled by the fabric)."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- nonblocking -----------------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0):
        """Nonblocking send: injects the message immediately (charging only
        the injection latency); the transfer overlaps with later work and
        ``request.wait()`` synchronises to its completion."""
        from repro.simmpi.request import Request

        if dest == self.rank:
            raise MPIError("isend to self would deadlock; use a local variable")
        nbytes = payload_nbytes(obj)
        t_start = self.clock.now
        same = self.same_node(dest)
        transfer_done = t_start + self._network.p2p_time(nbytes, same)
        # Injection overhead only; the wire time overlaps with compute.
        self.clock.advance(
            self._network.intra_latency if same else self._network.latency,
            phase="comm",
        )
        self._fabric.post(
            dest,
            Message(
                source=self.rank,
                tag=tag,
                payload=obj,
                nbytes=nbytes,
                send_time=transfer_done,
            ),
        )
        self.tracer.record("isend", nbytes, dest, t_start, self.clock.now)
        return Request(self, "isend", complete_time=transfer_done)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking receive: returns a request; ``wait()`` blocks for
        and returns the payload, ``test()`` polls."""
        from repro.simmpi.request import Request

        return Request(self, "irecv", source=source, tag=tag)

    # -- collectives ---------------------------------------------------------------
    def _collective(self, op: str, contribution: Any, cost: float, nbytes: int, peer: int = -1) -> list[Any]:
        t_entry = self.clock.now
        contributions, t_start = self._fabric.exchange(self.rank, contribution, t_entry)
        self.clock.synchronize(t_start)
        self.clock.advance(cost, phase="comm")
        self.tracer.record(op, nbytes, peer, t_entry, self.clock.now)
        return contributions

    def barrier(self) -> None:
        self._collective("barrier", None, self._network.barrier_time(self.size), 0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns it."""
        self._check_root(root)
        # Sizes must agree across ranks for the cost; share root's size.
        contribution = obj if self.rank == root else None
        contributions = self._fabric.exchange(self.rank, contribution, self.clock.now)
        payload = contributions[0][root]
        t_start = contributions[1]
        nbytes = payload_nbytes(payload)
        self.clock.synchronize(t_start)
        self.clock.advance(self._network.bcast_time(nbytes, self.size), phase="comm")
        self.tracer.record("bcast", nbytes, root, t_start, self.clock.now)
        return payload

    def scatter(self, seq: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_root(root)
        if self.rank == root:
            seq = list(seq) if seq is not None else []
            if len(seq) != self.size:
                raise MPIError(
                    f"scatter needs exactly {self.size} items, got {len(seq)}"
                )
        contributions, t_start = self._fabric.exchange(
            self.rank, seq if self.rank == root else None, self.clock.now
        )
        items = contributions[root]
        mine = items[self.rank]
        per_rank = max(payload_nbytes(item) for item in items)
        self.clock.synchronize(t_start)
        self.clock.advance(self._network.scatter_time(per_rank, self.size), phase="comm")
        self.tracer.record("scatter", per_rank, root, t_start, self.clock.now)
        return mine

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_root(root)
        nbytes = payload_nbytes(obj)
        contributions = self._collective(
            "gather", obj, self._network.gather_time(nbytes, self.size), nbytes, root
        )
        return list(contributions) if self.rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        nbytes = payload_nbytes(obj)
        contributions = self._collective(
            "allgather", obj, self._network.allgather_time(nbytes, self.size), nbytes
        )
        return list(contributions)

    def alltoall(self, seq: Sequence[Any]) -> list[Any]:
        """Each rank provides one item per destination; receives one per source.

        This is the data-exchange step of the communication-avoiding I/O
        method (Fig. 5b of the paper).
        """
        seq = list(seq)
        if len(seq) != self.size:
            raise MPIError(f"alltoall needs exactly {self.size} items, got {len(seq)}")
        max_pair = max(payload_nbytes(item) for item in seq)
        contributions = self._collective(
            "alltoallv",
            seq,
            self._network.alltoallv_time(max_pair, self.size),
            max_pair * self.size,
        )
        return [contributions[src][self.rank] for src in range(self.size)]

    def scatterv(self, seq: Sequence[Any] | None, counts: Sequence[int], root: int = 0) -> list[Any]:
        """Scatter a flat sequence in uneven contiguous pieces.

        ``counts[r]`` items go to rank ``r`` (mpi4py's ``Scatterv`` for
        object lists).  Every rank must pass the same ``counts``.
        """
        self._check_root(root)
        counts = list(counts)
        if len(counts) != self.size or any(c < 0 for c in counts):
            raise MPIError(f"scatterv needs {self.size} non-negative counts")
        if self.rank == root:
            seq = list(seq) if seq is not None else []
            if len(seq) != sum(counts):
                raise MPIError(
                    f"scatterv data length {len(seq)} != sum(counts) {sum(counts)}"
                )
        contributions, t_start = self._fabric.exchange(
            self.rank, seq if self.rank == root else None, self.clock.now
        )
        items = contributions[root]
        offset = sum(counts[: self.rank])
        mine = items[offset : offset + counts[self.rank]]
        per_rank = max(
            (payload_nbytes(item) for item in items), default=0
        ) * max(counts)
        self.clock.synchronize(t_start)
        self.clock.advance(self._network.scatter_time(per_rank, self.size), phase="comm")
        self.tracer.record("scatterv", per_rank, root, t_start, self.clock.now)
        return list(mine)

    def gatherv(self, items: Sequence[Any], root: int = 0) -> list[Any] | None:
        """Gather variable-length sequences; root receives them
        concatenated in rank order."""
        self._check_root(root)
        items = list(items)
        nbytes = sum(payload_nbytes(item) for item in items)
        contributions = self._collective(
            "gatherv", items, self._network.gather_time(nbytes, self.size), nbytes, root
        )
        if self.rank != root:
            return None
        flat: list[Any] = []
        for rank_items in contributions:
            flat.extend(rank_items)
        return flat

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks sharing a color get a fresh communicator ordered by
        ``(key, old rank)``.  The hybrid engine uses this for per-node
        sub-communicators.
        """
        if color < 0:
            raise MPIError("color must be >= 0 (MPI_UNDEFINED unsupported)")
        key = key if key is not None else self.rank
        membership, t_start = self._fabric.exchange(
            self.rank, (color, key, self.rank), self.clock.now
        )
        self.clock.synchronize(t_start)
        self.clock.advance(self._network.barrier_time(self.size), phase="comm")
        members = sorted(
            (k, old) for (c, k, old) in membership if c == color
        )
        new_size = len(members)
        new_rank = members.index((key, self.rank))
        # One shared fabric per (split generation, color): rank 0 of the
        # whole communicator allocates a registry and broadcasts it.
        registry = self._fabric.exchange(
            self.rank,
            {color: Fabric(new_size)} if new_rank == 0 else None,
            self.clock.now,
        )[0]
        fabric = None
        for contribution in registry:
            if contribution and color in contribution:
                fabric = contribution[color]
                break
        assert fabric is not None
        return Communicator(
            new_rank,
            new_size,
            fabric,
            clock=self.clock,
            network=self._network,
            cluster=self._cluster,
            ranks_per_node=self._ranks_per_node,
            tracer=self.tracer,
            recv_timeout=self._recv_timeout,
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any:
        self._check_root(root)
        nbytes = payload_nbytes(value)
        contributions = self._collective(
            "reduce", value, self._network.reduce_time(nbytes, self.size), nbytes, root
        )
        return op.reduce_all(contributions) if self.rank == root else None

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        nbytes = payload_nbytes(value)
        contributions = self._collective(
            "allreduce", value, self._network.allreduce_time(nbytes, self.size), nbytes
        )
        return op.reduce_all(contributions)

    # -- misc -----------------------------------------------------------------------
    def charge_io(self, seconds: float, op: str = "read", nbytes: int = 0) -> None:
        """Charge simulated I/O time against this rank's clock (used by the
        DASS readers, which compute costs from the storage model)."""
        t_start = self.clock.now
        self.clock.advance(seconds, phase="io")
        self.tracer.record(op, nbytes, -1, t_start, self.clock.now)

    def charge_compute(self, seconds: float, op: str = "compute") -> None:
        t_start = self.clock.now
        self.clock.advance(seconds, phase="compute")
        self.tracer.record(op, 0, -1, t_start, self.clock.now)

    def _check_root(self, root: int) -> None:
        if not (0 <= root < self.size):
            raise MPIError(f"root {root} out of range [0, {self.size})")

    def __repr__(self) -> str:
        return f"<Communicator rank={self.rank} size={self.size}>"
