"""Byte/size/time unit helpers used across the storage and cluster models."""

from __future__ import annotations

import re

from repro.errors import ConfigError

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

_SUFFIXES = {
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "t": TIB,
    "tb": TIB,
    "tib": TIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(value: int | float | str) -> int:
    """Parse a byte count from an int, float, or string like ``"1.9TB"``.

    >>> parse_bytes("1.9TB") == int(1.9 * TIB)
    True
    >>> parse_bytes(4096)
    4096
    """
    if isinstance(value, (int, float)):
        if value < 0:
            raise ConfigError(f"negative byte count: {value}")
        return int(value)
    match = _SIZE_RE.match(value)
    if not match:
        raise ConfigError(f"cannot parse byte count: {value!r}")
    number, suffix = match.groups()
    suffix = suffix.lower() or "b"
    if suffix not in _SUFFIXES:
        raise ConfigError(f"unknown size suffix {suffix!r} in {value!r}")
    return int(float(number) * _SUFFIXES[suffix])


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count: ``format_bytes(1.5 * GIB) == '1.50 GiB'``."""
    if nbytes < 0:
        return "-" + format_bytes(-nbytes)
    for unit, name in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if nbytes >= unit:
            return f"{nbytes / unit:.2f} {name}"
    return f"{int(nbytes)} B"


def format_seconds(seconds: float) -> str:
    """Human-readable duration: microseconds up to hours."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.3f} s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.2f} min"
    return f"{seconds / 3600.0:.2f} h"


def format_count(count: float) -> str:
    """Compact count formatting: ``format_count(11648) == '11.6K'``."""
    if count < 0:
        return "-" + format_count(-count)
    if count >= 1e9:
        return f"{count / 1e9:.1f}G"
    if count >= 1e6:
        return f"{count / 1e6:.1f}M"
    if count >= 1e3:
        return f"{count / 1e3:.1f}K"
    return str(int(count))
