"""Persistent acquisition catalog.

Searching 2880 files in 0.002 s (paper Fig. 6) is only possible against
an index, not a directory walk.  ``Catalog`` maintains that index: a
JSON sidecar (``.das_catalog.json``) mapping timestamps to file entries,
refreshed incrementally (only files newer than the last scan are
stat'ed).  ``das_search`` accepts a catalog anywhere it accepts a
directory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.search import DASFileInfo, scan_directory

CATALOG_NAME = ".das_catalog.json"
CATALOG_VERSION = 1


@dataclass
class Catalog:
    """An indexed directory of DAS files."""

    directory: str
    entries: list[DASFileInfo] = field(default_factory=list)
    last_mtime: float = 0.0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, CATALOG_NAME)

    # -- construction -----------------------------------------------------------
    @classmethod
    def build(cls, directory: str | os.PathLike, read_shapes: bool = False) -> "Catalog":
        """Scan a directory from scratch and build the index."""
        directory = os.fspath(directory)
        entries = scan_directory(directory, read_shapes=read_shapes)
        catalog = cls(directory=directory, entries=entries)
        catalog.last_mtime = catalog._dir_mtime()
        return catalog

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "Catalog":
        """Load the sidecar index; raises if absent or corrupt."""
        directory = os.fspath(directory)
        path = os.path.join(directory, CATALOG_NAME)
        try:
            with open(path) as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            raise StorageError(f"no catalog at {path!r}; build one first") from None
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt catalog {path!r}: {exc}") from exc
        if raw.get("version") != CATALOG_VERSION:
            raise StorageError(
                f"catalog version {raw.get('version')} unsupported"
            )
        entries = [
            DASFileInfo(
                path=os.path.join(directory, entry["name"]),
                timestamp=entry["timestamp"],
                n_channels=entry.get("n_channels", 0),
                n_samples=entry.get("n_samples", 0),
            )
            for entry in raw["entries"]
        ]
        return cls(
            directory=directory, entries=entries, last_mtime=raw.get("last_mtime", 0.0)
        )

    @classmethod
    def open(cls, directory: str | os.PathLike) -> "Catalog":
        """Load the index if present (refreshing if stale), else build it."""
        directory = os.fspath(directory)
        try:
            catalog = cls.load(directory)
        except StorageError:
            catalog = cls.build(directory)
            catalog.save()
            return catalog
        if catalog.stale():
            catalog.refresh()
            catalog.save()
        return catalog

    # -- persistence --------------------------------------------------------------
    def save(self) -> str:
        payload = {
            "version": CATALOG_VERSION,
            "last_mtime": self.last_mtime,
            "entries": [
                {
                    "name": os.path.basename(entry.path),
                    "timestamp": entry.timestamp,
                    "n_channels": entry.n_channels,
                    "n_samples": entry.n_samples,
                }
                for entry in self.entries
            ],
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        return self.path

    # -- freshness ------------------------------------------------------------------
    def _dir_mtime(self) -> float:
        try:
            return os.stat(self.directory).st_mtime
        except OSError:
            return 0.0

    def stale(self) -> bool:
        """True if the directory may have changed since the index was
        written.

        ``>=`` rather than ``>``: directory mtimes have finite
        resolution, so a file created in the *same* tick the index was
        written leaves ``_dir_mtime() == last_mtime`` — strict comparison
        would skip the rescan and the file would stay invisible until an
        unrelated change bumped the mtime.  Equality therefore counts as
        possibly-stale; the rescan is cheap and idempotent.
        """
        return self._dir_mtime() >= self.last_mtime

    def refresh(self) -> int:
        """Re-scan the directory, keeping known entries; returns the number
        of added-or-removed files."""
        fresh = scan_directory(self.directory)
        known = {entry.path: entry for entry in self.entries}
        merged = []
        changes = 0
        fresh_paths = set()
        for entry in fresh:
            if entry.path in fresh_paths:
                continue  # one entry per path, whatever the scan yields
            fresh_paths.add(entry.path)
            old = known.get(entry.path)
            if old is not None:
                merged.append(old)  # keep any shape info already gathered
            else:
                merged.append(entry)
                changes += 1
        changes += sum(1 for path in known if path not in fresh_paths)
        merged.sort(key=lambda e: e.timestamp)
        self.entries = merged
        self.last_mtime = self._dir_mtime()
        return changes

    # -- queries ----------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def range_query(self, start: str, count: int | None = None) -> list[DASFileInfo]:
        """Type-1 query over the index (binary search on timestamps)."""
        import bisect

        stamps = [entry.timestamp for entry in self.entries]
        lo = bisect.bisect_left(stamps, start)
        selected = self.entries[lo:]
        if count is not None:
            if count < 0:
                raise StorageError("count must be >= 0")
            selected = selected[:count]
        return selected
