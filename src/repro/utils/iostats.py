"""I/O operation counters.

The paper's storage arguments are about *operation counts*: number of file
opens (each has a constant overhead on a disk file system), number of read
requests (IOPS pressure), and bytes moved.  ``IOStats`` is threaded through
the hdf5lite backend and the DASS readers so every experiment can report —
and every test can assert on — exact counts.

Cache-layer counters (block-cache hits/misses/evictions, handle-pool
hits/misses) live on the same object so one ``IOStats`` tells the whole
story of a read path: how many requests reached the backend *and* how many
were absorbed by the cache.  They are reported via :meth:`cache_snapshot`
/ :meth:`full_snapshot`; :meth:`snapshot` keeps its historical seven-key
shape for backend-only accounting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

_BASE_FIELDS = (
    "opens",
    "closes",
    "seeks",
    "reads",
    "writes",
    "bytes_read",
    "bytes_written",
)
_CACHE_FIELDS = (
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "pool_hits",
    "pool_misses",
)


@dataclass
class IOStats:
    """Thread-safe accumulator of I/O operation counts."""

    opens: int = 0  # guarded-by: _lock
    closes: int = 0  # guarded-by: _lock
    seeks: int = 0  # guarded-by: _lock
    reads: int = 0  # guarded-by: _lock
    writes: int = 0  # guarded-by: _lock
    bytes_read: int = 0  # guarded-by: _lock
    bytes_written: int = 0  # guarded-by: _lock
    cache_hits: int = 0  # guarded-by: _lock
    cache_misses: int = 0  # guarded-by: _lock
    cache_evictions: int = 0  # guarded-by: _lock
    pool_hits: int = 0  # guarded-by: _lock
    pool_misses: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record_open(self) -> None:
        with self._lock:
            self.opens += 1

    def record_close(self) -> None:
        with self._lock:
            self.closes += 1

    def record_seek(self) -> None:
        with self._lock:
            self.seeks += 1

    def record_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def record_write(self, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    def record_cache_eviction(self, count: int = 1) -> None:
        with self._lock:
            self.cache_evictions += count

    def record_pool_hit(self) -> None:
        with self._lock:
            self.pool_hits += 1

    def record_pool_miss(self) -> None:
        with self._lock:
            self.pool_misses += 1

    @property
    def requests(self) -> int:
        """Total I/O requests (reads + writes) — the IOPS-relevant count."""
        return self.reads + self.writes

    def merge(self, other: "IOStats") -> None:
        """Add ``other``'s counters into this accumulator.

        Reads ``other`` through its own lock (via :meth:`full_snapshot`) so
        a source that is still being mutated by another thread cannot be
        torn mid-merge.  The two locks are never held simultaneously, so no
        ordering discipline (and no deadlock) is needed.
        """
        other_snap = other.full_snapshot()
        with self._lock:
            for name in _BASE_FIELDS + _CACHE_FIELDS:
                setattr(self, name, getattr(self, name) + other_snap[name])

    def reset(self) -> None:
        with self._lock:
            for name in _BASE_FIELDS + _CACHE_FIELDS:
                setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Backend operation counts (the historical seven-key view)."""
        with self._lock:
            return {name: getattr(self, name) for name in _BASE_FIELDS}

    def cache_snapshot(self) -> dict[str, int]:
        """Block-cache and handle-pool counters."""
        with self._lock:
            return {name: getattr(self, name) for name in _CACHE_FIELDS}

    def full_snapshot(self) -> dict[str, int]:
        """Every counter (backend + cache layer) in one consistent view."""
        with self._lock:
            return {name: getattr(self, name) for name in _BASE_FIELDS + _CACHE_FIELDS}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counters accumulated since ``before`` (a :meth:`full_snapshot`).

        Keys absent from ``before`` count from zero, so a plain
        :meth:`snapshot` works too.  This is how per-run profiles report
        the I/O of one pipeline execution against a shared accumulator.
        """
        now = self.full_snapshot()
        return {name: now[name] - before.get(name, 0) for name in now}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.full_snapshot()
        return (
            f"IOStats(opens={snap['opens']}, reads={snap['reads']}, "
            f"writes={snap['writes']}, bytes_read={snap['bytes_read']}, "
            f"bytes_written={snap['bytes_written']}, "
            f"cache_hits={snap['cache_hits']}, cache_misses={snap['cache_misses']})"
        )
