"""Really Concatenated Array (RCA) — paper §IV-A and Table I.

An RCA physically copies every source file's data into one large
contiguous dataset.  It doubles storage during construction and costs a
full read+write of the data — the slow path Fig. 6 quantifies — but the
result supports trivially parallel reads (each rank's channel block is
one contiguous run).
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.errors import StorageError
from repro.hdf5lite import File, Hyperslab
from repro.storage.dasfile import DATASET_NAME, read_das_metadata
from repro.storage.metadata import DASMetadata
from repro.storage.search import DASFileInfo
from repro.utils.iostats import IOStats

RCA_DATASET = "RCA"


def create_rca(
    out_path: str | os.PathLike,
    files: Sequence[DASFileInfo | str],
    dtype: object = np.float32,
    iostats: IOStats | None = None,
) -> str:
    """Build an RCA by physically concatenating files along time.

    Streams one source file at a time (the construction never holds more
    than one minute of data), writing each block into its time slot of
    the preallocated output dataset.
    """
    if not files:
        raise StorageError("cannot build an RCA from zero files")
    out_path = os.fspath(out_path)
    paths = [f.path if isinstance(f, DASFileInfo) else os.fspath(f) for f in files]

    metas: list[DASMetadata] = []
    shapes: list[tuple[int, ...]] = []
    for path in paths:
        metadata, shape = read_das_metadata(path, iostats=iostats)
        metas.append(metadata)
        shapes.append(shape)
    n_channels = shapes[0][0]
    if any(shape[0] != n_channels for shape in shapes):
        raise StorageError("all sources must share the channel count")
    total_samples = sum(shape[1] for shape in shapes)

    merged = DASMetadata(
        sampling_frequency=metas[0].sampling_frequency,
        spatial_resolution=metas[0].spatial_resolution,
        timestamp=metas[0].timestamp,
        n_channels=n_channels,
        extras=dict(metas[0].extras),
    )
    with File(out_path, "w", iostats=iostats) as out:
        out.attrs.update_many(merged.to_attrs())
        out.attrs["RCA source count"] = len(paths)
        out.attrs["RCA source timestamps"] = [m.timestamp for m in metas]
        ds = out.create_dataset(
            RCA_DATASET, shape=(n_channels, total_samples), dtype=dtype
        )
        offset = 0
        for path, shape in zip(paths, shapes):
            with File(path, "r", iostats=iostats) as src:
                block = src.dataset(DATASET_NAME).read()
            ds.write_hyperslab(
                Hyperslab((0, offset), (n_channels, shape[1]), (1, 1)),
                block.astype(np.dtype(dtype), copy=False),
            )
            offset += shape[1]
    return out_path
