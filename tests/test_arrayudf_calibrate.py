"""Tests for compute-model calibration."""

import numpy as np
import pytest

from repro.arrayudf.calibrate import (
    calibrate,
    machine_speed_probe,
    measure_seconds_per_sample,
)
from repro.arrayudf.engine import ComputeModel
from repro.errors import ConfigError


def cheap_kernel(block):
    return block.sum()


class TestMeasure:
    def test_positive_and_finite(self):
        block = np.zeros((16, 1024))
        sps = measure_seconds_per_sample(cheap_kernel, block)
        assert 0 < sps < 1e-3

    def test_heavier_kernel_costs_more(self):
        block = np.random.default_rng(0).normal(size=(8, 4096))

        def heavy(b):
            for _ in range(20):
                np.fft.rfft(b, axis=-1)
            return None

        cheap = measure_seconds_per_sample(cheap_kernel, block)
        heavier = measure_seconds_per_sample(heavy, block)
        assert heavier > cheap

    def test_validation(self):
        with pytest.raises(ConfigError):
            measure_seconds_per_sample(cheap_kernel, np.zeros(0))
        with pytest.raises(ConfigError):
            measure_seconds_per_sample(cheap_kernel, np.zeros(10), repeats=0)


class TestProbeAndCalibrate:
    def test_probe_positive(self):
        speed = machine_speed_probe(n=2**14)
        assert speed > 1e5  # any machine manages 100k samples/s of FFT

    def test_calibrate_returns_model(self):
        model = calibrate(cheap_kernel, np.zeros((8, 512)))
        assert isinstance(model, ComputeModel)
        assert model.seconds_per_sample > 0

    def test_target_speed_rescales(self):
        block = np.zeros((8, 2048))
        local = calibrate(cheap_kernel, block)
        # Modelling a machine 10x slower than the probe says we are:
        slow_target = machine_speed_probe(n=2**14) / 10.0
        slow = calibrate(cheap_kernel, block, target_speed=slow_target)
        assert slow.seconds_per_sample > 2 * local.seconds_per_sample

    def test_model_usable_in_estimates(self):
        from repro.arrayudf.engine import HybridEngine, WorkloadSpec
        from repro.cluster import cori_haswell

        model = calibrate(cheap_kernel, np.zeros((8, 512)))
        engine = HybridEngine(cori_haswell(91), 91, threads_per_rank=8, compute=model)
        workload = WorkloadSpec(total_bytes=10 * 2**30, n_files=10)
        report = engine.estimate(workload)
        assert report.failed is None
        assert report.compute_time > 0

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            calibrate(cheap_kernel, np.zeros(16), target_speed=0.0)
