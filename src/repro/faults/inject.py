"""Deterministic, seeded fault injection for storage-path testing.

At the 1.9 TB / 2880-file campaign scale of the paper's §V evaluation,
corrupt, truncated, and vanished files are the steady state; this module
manufactures exactly those conditions on demand so the degraded-read and
retry machinery can be exercised (and benchmarked) reproducibly.

Two injection surfaces:

* **On-disk faults** mutate real files: :meth:`FaultInjector.bit_flip`
  flips one bit inside the data region (checksummed reads then raise
  :class:`~repro.errors.CorruptDataError`; unchecksummed reads return
  silently wrong bytes — which is the argument for checksums),
  :meth:`FaultInjector.truncate` cuts the file short (short reads), and
  :meth:`FaultInjector.vanish` removes it.
* **Read hooks** intercept backend reads without touching the file:
  :func:`install_read_fault` registers a per-path hook consulted by
  :class:`~repro.hdf5lite.binary.FileBackend` before every positioned
  read — ``slow-read`` sleeps, ``raise-on-nth-read`` fails the first
  *n* reads and then succeeds (the transient fault that bounded retry
  must absorb).  Hooks are process-global; tests pair
  :func:`install_read_fault` with :func:`clear_read_faults` (or use the
  :func:`read_faults` context manager).

Everything is seeded: the same seed over the same file list picks the
same victims, the same flip offsets, the same truncation points.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

from repro.errors import ConfigError, DegradedReadError
from repro.hdf5lite.binary import HEADER_SIZE, FileBackend, Header


# ---------------------------------------------------------------------------
# read hooks (slow-read / raise-on-nth-read)
# ---------------------------------------------------------------------------

_hooks: dict[str, Callable[[int, int], None]] = {}
_hooks_lock = threading.Lock()


def _normalize(path: str | os.PathLike) -> str:
    return os.path.normpath(os.path.abspath(os.fspath(path)))


def _dispatch(path: str, offset: int, nbytes: int) -> None:
    """The hook FileBackend calls before every positioned read."""
    hook = _hooks.get(_normalize(path))
    if hook is not None:
        hook(offset, nbytes)


def install_read_fault(
    path: str | os.PathLike,
    kind: str,
    delay: float = 0.0,
    fail_reads: int = 1,
    error: Exception | None = None,
) -> None:
    """Install a read-side fault for ``path``.

    ``kind="slow-read"`` sleeps ``delay`` seconds per backend read;
    ``kind="raise-on-nth-read"`` raises on the first ``fail_reads``
    reads of the path and then lets reads through (a transient fault).
    ``error`` overrides the raised exception (default
    :class:`~repro.errors.DegradedReadError`).
    """
    key = _normalize(path)
    if kind == "slow-read":
        if delay < 0:
            raise ConfigError("delay must be >= 0")

        def hook(offset: int, nbytes: int, _d: float = float(delay)) -> None:
            time.sleep(_d)

    elif kind == "raise-on-nth-read":
        if fail_reads < 1:
            raise ConfigError("fail_reads must be >= 1")
        remaining = [int(fail_reads)]
        exc = error if error is not None else DegradedReadError(
            key, reason="injected transient read failure"
        )
        lock = threading.Lock()

        def hook(offset: int, nbytes: int) -> None:
            with lock:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            raise exc

    else:
        raise ConfigError(f"unknown read-fault kind {kind!r}")
    with _hooks_lock:
        _hooks[key] = hook
        FileBackend.read_fault_hook = _dispatch


def clear_read_faults(path: str | os.PathLike | None = None) -> None:
    """Remove the fault for ``path`` (or all faults when ``None``)."""
    with _hooks_lock:
        if path is None:
            _hooks.clear()
        else:
            _hooks.pop(_normalize(path), None)
        if not _hooks:
            FileBackend.read_fault_hook = None


@contextmanager
def read_faults(**per_path: dict) -> Iterator[None]:
    """Context manager form: ``read_faults(**{path: {"kind": ...}})``."""
    for path, spec in per_path.items():
        install_read_fault(path, **spec)
    try:
        yield
    finally:
        for path in per_path:
            clear_read_faults(path)


# ---------------------------------------------------------------------------
# on-disk faults
# ---------------------------------------------------------------------------

KINDS = ("bit-flip", "truncate", "vanish", "slow-read", "raise-on-nth-read")


class FaultInjector:
    """Seeded source of reproducible storage faults.

    One injector = one deterministic scenario: victim selection
    (:meth:`choose`), per-victim offsets, and truncation points all come
    from the injector's private RNG, so a test or benchmark that logs its
    seed can be replayed bit-for-bit.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.injected: list[tuple[str, str]] = []  # (kind, path) log

    def choose(self, paths: Sequence[str], fraction: float = 0.05, at_least: int = 1) -> list[str]:
        """Pick ``max(at_least, round(fraction * len(paths)))`` victims,
        deterministically for this seed, preserving input order."""
        if not 0 <= fraction <= 1:
            raise ConfigError("fraction must be in [0, 1]")
        paths = [os.fspath(p) for p in paths]
        count = min(len(paths), max(int(at_least), round(fraction * len(paths))))
        victims = set(self.rng.sample(range(len(paths)), count))
        return [p for i, p in enumerate(paths) if i in victims]

    # -- individual faults ---------------------------------------------------
    def _data_region(self, path: str) -> tuple[int, int]:
        """The ``[start, end)`` byte range holding raw dataset bytes."""
        with open(path, "rb") as fh:
            header = Header.unpack(fh.read(HEADER_SIZE))
        end = header.meta_offset if header.meta_offset > HEADER_SIZE else os.path.getsize(path)
        return HEADER_SIZE, end

    def bit_flip(self, path: str | os.PathLike) -> int:
        """Flip one random bit inside the data region; returns the byte
        offset flipped.  Metadata stays intact, so the file still opens —
        only checksums can tell the payload changed."""
        path = os.fspath(path)
        lo, hi = self._data_region(path)
        if hi <= lo:
            raise ConfigError(f"{path}: no data region to corrupt")
        offset = self.rng.randrange(lo, hi)
        bit = self.rng.randrange(8)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)[0]
            fh.seek(offset)
            fh.write(bytes([byte ^ (1 << bit)]))
        self.injected.append(("bit-flip", path))
        return offset

    def truncate(self, path: str | os.PathLike, keep_fraction: float = 0.5) -> int:
        """Cut the file to ``header + keep_fraction`` of its data region
        (the classic mid-write acquisition crash); returns the new size."""
        if not 0 <= keep_fraction < 1:
            raise ConfigError("keep_fraction must be in [0, 1)")
        path = os.fspath(path)
        lo, hi = self._data_region(path)
        new_size = lo + int((hi - lo) * keep_fraction)
        with open(path, "r+b") as fh:
            fh.truncate(new_size)
        self.injected.append(("truncate", path))
        return new_size

    def vanish(self, path: str | os.PathLike) -> None:
        """Remove the file (swept away mid-campaign)."""
        path = os.fspath(path)
        os.remove(path)
        self.injected.append(("vanish", path))

    def slow_read(self, path: str | os.PathLike, delay: float = 0.05) -> None:
        """Make every backend read of ``path`` take ``delay`` extra seconds."""
        install_read_fault(path, "slow-read", delay=delay)
        self.injected.append(("slow-read", os.fspath(path)))

    def raise_on_nth_read(
        self, path: str | os.PathLike, fail_reads: int = 1, error: Exception | None = None
    ) -> None:
        """Fail the next ``fail_reads`` backend reads of ``path``, then
        recover — the transient fault bounded retry exists for."""
        install_read_fault(path, "raise-on-nth-read", fail_reads=fail_reads, error=error)
        self.injected.append(("raise-on-nth-read", os.fspath(path)))

    def inject(self, kind: str, path: str | os.PathLike, **kwargs) -> None:
        """Dispatch by kind name (the fault-matrix parametrisation entry)."""
        if kind not in KINDS:
            raise ConfigError(f"unknown fault kind {kind!r}; known: {KINDS}")
        getattr(self, kind.replace("-", "_"))(path, **kwargs)
