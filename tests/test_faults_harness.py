"""Tests for the fault-injection harness (`repro.faults.inject`), the
shared failure policy (`repro.faults.policy`), and the fault-tolerant
ApplyMT scheduler."""

import threading
import time

import numpy as np
import pytest

from repro.arrayudf.apply_mt import apply_mt
from repro.errors import ConfigError, DegradedReadError, UDFError
from repro.faults.inject import (
    KINDS,
    FaultInjector,
    clear_read_faults,
    install_read_fault,
    read_faults,
)
from repro.faults.policy import CONTINUE, FailurePolicy, TaskFailure, retry_call
from repro.hdf5lite import File


@pytest.fixture(autouse=True)
def _clean_hooks():
    yield
    clear_read_faults()


class TestFaultInjector:
    def test_choose_is_seeded_and_order_preserving(self):
        paths = [f"f{i}.h5" for i in range(40)]
        a = FaultInjector(seed=7).choose(paths, fraction=0.25)
        b = FaultInjector(seed=7).choose(paths, fraction=0.25)
        c = FaultInjector(seed=8).choose(paths, fraction=0.25)
        assert a == b
        assert a != c
        assert a == [p for p in paths if p in set(a)]
        assert len(a) == 10

    def test_choose_at_least(self):
        paths = ["a", "b", "c"]
        assert len(FaultInjector(0).choose(paths, fraction=0.0)) == 1

    def test_bit_flip_changes_exactly_one_bit_in_data(self, tmp_path):
        path = str(tmp_path / "x.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.arange(64, dtype=np.float64))
        before = open(path, "rb").read()
        offset = FaultInjector(seed=3).bit_flip(path)
        after = open(path, "rb").read()
        assert len(before) == len(after)
        diffs = [i for i, (x, y) in enumerate(zip(before, after)) if x != y]
        assert diffs == [offset]
        assert bin(before[offset] ^ after[offset]).count("1") == 1

    def test_bit_flip_is_seeded(self, tmp_path):
        offs = []
        for trial in range(2):
            path = str(tmp_path / f"s{trial}.h5")
            with File(path, "w") as f:
                f.create_dataset("d", data=np.arange(64, dtype=np.float64))
            offs.append(FaultInjector(seed=11).bit_flip(path))
        assert offs[0] == offs[1]

    def test_truncate_and_vanish(self, tmp_path):
        path = str(tmp_path / "t.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.zeros(128))
        import os

        size = os.path.getsize(path)
        new = FaultInjector(0).truncate(path, keep_fraction=0.25)
        assert os.path.getsize(path) == new < size
        FaultInjector(0).vanish(path)
        assert not os.path.exists(path)

    def test_inject_dispatch_and_log(self, tmp_path):
        path = str(tmp_path / "v.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.zeros(16))
        inj = FaultInjector(0)
        inj.inject("truncate", path)
        assert inj.injected == [("truncate", path)]
        with pytest.raises(ConfigError):
            inj.inject("meteor-strike", path)
        assert "bit-flip" in KINDS


class TestReadHooks:
    def _write(self, tmp_path, name="h.h5"):
        path = str(tmp_path / name)
        with File(path, "w") as f:
            f.create_dataset("d", data=np.arange(32, dtype=np.float64))
        return path

    def test_raise_on_nth_read_is_transient(self, tmp_path):
        path = self._write(tmp_path)
        install_read_fault(path, "raise-on-nth-read", fail_reads=1)
        with pytest.raises(DegradedReadError):
            with File(path, "r") as f:
                f.dataset("d").read()
        # The hook is spent: the next read succeeds.
        with File(path, "r") as f:
            assert f.dataset("d").read()[5] == 5.0

    def test_slow_read_delays(self, tmp_path):
        path = self._write(tmp_path)
        t0 = time.perf_counter()
        with File(path, "r") as f:
            f.dataset("d").read()
        fast = time.perf_counter() - t0
        install_read_fault(path, "slow-read", delay=0.05)
        t0 = time.perf_counter()
        with File(path, "r") as f:
            f.dataset("d").read()
        assert time.perf_counter() - t0 >= fast + 0.04

    def test_clear_and_context_manager(self, tmp_path):
        path = self._write(tmp_path)
        install_read_fault(path, "raise-on-nth-read", fail_reads=99)
        clear_read_faults(path)
        with File(path, "r") as f:
            f.dataset("d").read()
        with read_faults(**{path: {"kind": "raise-on-nth-read", "fail_reads": 99}}):
            with pytest.raises(DegradedReadError):
                with File(path, "r") as f:
                    f.dataset("d").read()
        with File(path, "r") as f:
            f.dataset("d").read()

    def test_unknown_kind(self, tmp_path):
        with pytest.raises(ConfigError):
            install_read_fault(self._write(tmp_path), "gamma-ray")


class TestRetryCall:
    def test_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return 42

        assert retry_call(flaky, retries=2) == 42
        assert len(calls) == 3

    def test_exhausted_retries_propagate(self):
        def dead():
            raise OSError("gone")

        with pytest.raises(OSError):
            retry_call(dead, retries=2)

    def test_non_retryable_raises_immediately(self):
        calls = []

        def bug():
            calls.append(1)
            raise ValueError("logic")

        with pytest.raises(ValueError):
            retry_call(bug, retries=5)
        assert len(calls) == 1

    def test_backoff_grows_exponentially(self):
        slept = []

        def dead():
            raise OSError("x")

        with pytest.raises(OSError):
            retry_call(dead, retries=3, backoff=0.1, sleep=slept.append)
        assert slept == pytest.approx([0.1, 0.2, 0.4])


class TestFailurePolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FailurePolicy(mode="explode")
        with pytest.raises(ConfigError):
            FailurePolicy(retries=-1)
        with pytest.raises(ConfigError):
            FailurePolicy(timeout=0)
        assert FailurePolicy().fail_fast
        assert not FailurePolicy(mode=CONTINUE).fail_fast


def _mean(s):
    return float(np.mean([s(0, -1), s(0, 0), s(0, 1)]))


class TestApplyMTFaultTolerance:
    @pytest.fixture
    def block(self):
        return np.random.default_rng(0).normal(size=(8, 32))

    def test_policy_matches_static_schedule(self, block):
        a = apply_mt(block, _mean, threads=4, boundary="clamp")
        b = apply_mt(block, _mean, threads=4, boundary="clamp", policy=FailurePolicy())
        assert np.array_equal(a, b)

    def test_transient_fault_absorbed_by_retry(self, block):
        ref = apply_mt(block, _mean, threads=4, boundary="clamp")
        seen = {}
        lock = threading.Lock()

        def flaky(s):
            key = (s.row, s.col)
            with lock:
                n = seen.get(key, 0)
                seen[key] = n + 1
            if key == (3, 5) and n == 0:
                raise OSError("transient")
            return _mean(s)

        out = apply_mt(
            block, flaky, threads=4, boundary="clamp",
            policy=FailurePolicy(retries=2),
        )
        assert np.allclose(out, ref)

    def test_fail_fast_raises_typed_error(self, block):
        def broken(s):
            if s.row == 3:
                raise OSError("dead sector")
            return _mean(s)

        with pytest.raises(UDFError, match="failed after"):
            apply_mt(
                block, broken, threads=4, boundary="clamp",
                policy=FailurePolicy(retries=1),
            )

    def test_continue_isolates_failing_cells(self, block):
        ref = apply_mt(block, _mean, threads=4, boundary="clamp")

        def broken(s):
            if s.row == 3:
                raise OSError("dead sector")
            return _mean(s)

        failures: list[TaskFailure] = []
        out = apply_mt(
            block, broken, threads=4, boundary="clamp",
            policy=FailurePolicy(mode=CONTINUE, retries=1),
            failures=failures,
        )
        assert np.isnan(out[3]).all()
        keep = [r for r in range(8) if r != 3]
        assert np.array_equal(out[keep], ref[keep])
        assert failures
        assert all("OSError" in f.error for f in failures)

    def test_straggler_speculation_completes(self, block):
        ref = apply_mt(block, _mean, threads=4, boundary="clamp")
        stalled = threading.Event()

        def slow(s):
            if (s.row, s.col) == (0, 0) and not stalled.is_set():
                stalled.set()
                time.sleep(0.2)
            return _mean(s)

        out = apply_mt(
            block, slow, threads=4, boundary="clamp",
            policy=FailurePolicy(timeout=0.05),
        )
        assert np.allclose(out, ref)

    def test_non_retryable_udf_bug_not_retried(self, block):
        count = {"n": 0}
        lock = threading.Lock()

        def bug(s):
            if (s.row, s.col) == (2, 2):
                with lock:
                    count["n"] += 1
                raise ValueError("logic bug")
            return _mean(s)

        failures: list[TaskFailure] = []
        out = apply_mt(
            block, bug, threads=1, boundary="clamp",
            policy=FailurePolicy(mode=CONTINUE, retries=3),
            failures=failures,
        )
        assert np.isnan(out[2, 2])
        flat = np.delete(out.ravel(), 2 * 32 + 2)
        assert not np.isnan(flat).any()
        # One task attempt + one cell-isolation attempt; retries skipped.
        assert count["n"] == 2
        assert failures and "ValueError" in failures[0].error
