"""Exception hierarchy for the repro (DASSA) package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework-level failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FormatError(ReproError):
    """Raised when an hdf5lite file is malformed or unsupported."""


class SelectionError(ReproError):
    """Raised for invalid hyperslab / LAV selections."""


class StorageError(ReproError):
    """Raised by the DASS storage engine (search, VCA/RCA, readers)."""


class MPIError(ReproError):
    """Raised by the simulated MPI runtime."""


class OutOfMemoryError(ReproError):
    """Raised by the cluster memory model when a node's memory is exceeded.

    Mirrors the pure-MPI ArrayUDF out-of-memory failure reported in the
    paper's Fig. 8 (91-node case).
    """

    def __init__(self, node: int, requested: float, available: float):
        self.node = node
        self.requested = requested
        self.available = available
        super().__init__(
            f"node {node}: requested {requested / 2**30:.2f} GiB "
            f"but only {available / 2**30:.2f} GiB available"
        )


class UDFError(ReproError):
    """Raised when a user-defined function fails inside the ArrayUDF engine."""


class ConfigError(ReproError):
    """Raised for invalid framework / machine-model configuration."""
