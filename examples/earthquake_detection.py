#!/usr/bin/env python
"""Earthquake detection via local similarity (paper Algorithm 2, Fig. 10).

Synthesises the paper's Fig. 1b scene — ambient noise, two moving
vehicles, one M4.4-style earthquake, and a persistent vibration zone —
then computes the local-similarity map and picks events.

Run:  python examples/earthquake_detection.py
"""

import numpy as np

from repro.core.detection import detect_events
from repro.core.local_similarity import (
    LocalSimilarityConfig,
    streamed_local_similarity,
)
from repro.synthetic import fig1b_scene, synthesize_scene

FS = 50.0
CHANNELS = 96
MINUTES = 6
SPM = int(60 * FS)  # samples per "minute" file


def ascii_map(simi: np.ndarray, rows: int = 20, cols: int = 64) -> str:
    """A terminal rendering of the similarity map (Fig. 10 in ASCII)."""
    shades = " .:-=+*#%@"
    r_idx = np.linspace(0, simi.shape[0] - 1, rows).astype(int)
    c_idx = np.linspace(0, simi.shape[1] - 1, cols).astype(int)
    small = simi[np.ix_(r_idx, c_idx)]
    lo, hi = small.min(), small.max()
    scaled = (small - lo) / (hi - lo + 1e-12)
    lines = []
    for row in scaled:
        lines.append("".join(shades[int(v * (len(shades) - 1))] for v in row))
    return "\n".join(lines)


def main() -> None:
    print(f"synthesising {MINUTES} minutes x {CHANNELS} channels at {FS} Hz ...")
    scene = fig1b_scene(n_channels=CHANNELS, fs=FS, minutes=MINUTES, samples_per_minute=SPM)
    data = synthesize_scene(scene, MINUTES, samples_per_minute=SPM)

    config = LocalSimilarityConfig(half_window=50, channel_offset=1, half_lag=5, stride=100)
    # Stream the record through the chunked executor: one minute-sized
    # block (plus the window/lag halo) resident at a time, threads
    # splitting the channels — never the whole array.
    print("computing local similarity (Algorithm 2, streamed) ...")
    result, centers = streamed_local_similarity(
        data, config, chunk_samples=SPM, threads=4, fs=FS
    )
    simi = result.output
    profile = result.profile
    print(
        f"  {profile.n_chunks} chunks of {profile.chunk_samples} samples, "
        f"peak resident {profile.peak_resident_bytes / 1e6:.1f} MB "
        f"(whole array: {data.nbytes / 1e6:.1f} MB)"
    )

    print("\nlocal-similarity map (channels down, time across):")
    print(ascii_map(simi))

    events = detect_events(
        simi,
        centers,
        fs=FS,
        threshold_sigmas=3.0,
        min_vehicle_speed=0.1,
        remove_channel_bias=True,
        split_array_wide=True,
    )
    print(f"\ndetected {len(events)} events:")
    print(f"{'kind':<12} {'channels':<12} {'time (s)':<16} {'peak':<6} {'speed (ch/s)'}")
    for ev in events:
        print(
            f"{ev.kind:<12} {ev.channel_lo}-{ev.channel_hi:<10} "
            f"{ev.t_start:6.1f}-{ev.t_end:<8.1f} {ev.peak_similarity:<6.2f} "
            f"{ev.speed_channels_per_s:+.2f}"
        )

    kinds = {ev.kind for ev in events}
    print("\nexpected (paper Fig. 10): two vehicles, one earthquake, one "
          "persistent vibration zone")
    print(f"recovered kinds: {sorted(kinds)}")


if __name__ == "__main__":
    main()
