"""IIR/FIR filtering: ``lfilter`` and ``lfilter_zi``.

``lfilter`` implements the direct-form-II-transposed difference equation
from scratch in numpy (a time loop with all other axes vectorised).  When
scipy is importable, ``engine="auto"`` delegates the inner recursion to
``scipy.signal.lfilter`` as a compiled kernel — the algorithmic content
(normalisation, state handling, initial conditions) lives here either
way, and the two paths are cross-validated by tests.
"""

from __future__ import annotations

import numpy as np

try:  # optional compiled kernel
    from scipy.signal import lfilter as _scipy_lfilter
except ImportError:  # pragma: no cover - scipy is present in CI
    _scipy_lfilter = None


def _normalise_ba(b: np.ndarray, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    b = np.atleast_1d(np.asarray(b, dtype=np.float64))
    a = np.atleast_1d(np.asarray(a, dtype=np.float64))
    if a.ndim != 1 or b.ndim != 1:
        raise ValueError("filter coefficients must be 1-D")
    if a[0] == 0:
        raise ValueError("a[0] must be nonzero")
    n = max(len(a), len(b))
    b = np.concatenate([b, np.zeros(n - len(b))]) / a[0]
    a = np.concatenate([a, np.zeros(n - len(a))]) / a[0]
    return b, a


def _lfilter_numpy(
    b: np.ndarray, a: np.ndarray, x: np.ndarray, zi: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Direct form II transposed, time loop over the last axis."""
    n = len(b)
    y = np.empty_like(x)
    state_shape = (n - 1,) + x.shape[:-1]
    z = np.zeros(state_shape) if zi is None else np.array(zi, dtype=np.float64)
    if n == 1:
        return b[0] * x, z
    for m in range(x.shape[-1]):
        xm = x[..., m]
        ym = b[0] * xm + z[0]
        y[..., m] = ym
        for i in range(n - 2):
            z[i] = b[i + 1] * xm + z[i + 1] - a[i + 1] * ym
        z[n - 2] = b[n - 1] * xm - a[n - 1] * ym
    return y, z


def lfilter(
    b: np.ndarray,
    a: np.ndarray,
    x: np.ndarray,
    axis: int = -1,
    zi: np.ndarray | None = None,
    engine: str = "auto",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Apply a rational filter ``b/a`` along ``axis``.

    Returns ``y`` when ``zi`` is None, else ``(y, zf)`` with the final
    state — the scipy convention, so pipelines can stream blocks.

    ``engine``: ``"numpy"`` forces the from-scratch recursion, ``"scipy"``
    the compiled kernel, ``"auto"`` picks scipy when available.
    """
    b, a = _normalise_ba(b, a)
    x = np.asarray(x, dtype=np.float64)
    if engine not in ("auto", "numpy", "scipy"):
        raise ValueError(f"unknown engine {engine!r}")
    use_scipy = (engine == "scipy") or (engine == "auto" and _scipy_lfilter is not None)
    if engine == "scipy" and _scipy_lfilter is None:
        raise RuntimeError("scipy is not available")

    moved = np.moveaxis(x, axis, -1)
    if use_scipy:
        if zi is None:
            y = _scipy_lfilter(b, a, moved, axis=-1)
            return np.moveaxis(y, -1, axis)
        # scipy wants the state axis last; ours is first for broadcasting.
        zi_s = np.moveaxis(np.asarray(zi, dtype=np.float64), 0, -1)
        y, zf = _scipy_lfilter(b, a, moved, axis=-1, zi=zi_s)
        return np.moveaxis(y, -1, axis), np.moveaxis(zf, -1, 0)

    y, zf = _lfilter_numpy(b, a, moved, zi)
    y = np.moveaxis(y, -1, axis)
    if zi is None:
        return y
    return y, zf


def _companion(a: np.ndarray) -> np.ndarray:
    """Companion matrix of a monic-normalisable polynomial ``a``."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 1 or len(a) < 2:
        raise ValueError("need a 1-D polynomial of degree >= 1")
    if a[0] == 0:
        raise ValueError("leading coefficient must be nonzero")
    n = len(a) - 1
    mat = np.zeros((n, n))
    mat[0, :] = -a[1:] / a[0]
    if n > 1:
        mat[1:, :-1] = np.eye(n - 1)
    return mat


def lfilter_zi(b: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Initial filter state for a unit-step response (scipy semantics).

    ``lfilter(b, a, ones, zi=zi)`` then yields the steady-state output
    from the first sample — the property ``filtfilt`` relies on to avoid
    edge transients.
    """
    b, a = _normalise_ba(b, a)
    n = len(a)
    if n == 1:
        return np.zeros(0)
    # Solve (I - A^T) zi = B with A the companion matrix of a.
    IminusA = np.eye(n - 1) - _companion(a).T
    B = b[1:] - a[1:] * b[0]
    zi = np.linalg.solve(IminusA, B)
    return zi
