"""Entry point: ``python -m repro.rt watch <spool>``."""

import sys

from repro.rt.cli import main

sys.exit(main())
