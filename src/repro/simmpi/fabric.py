"""The message fabric shared by all ranks of an SPMD run.

Provides point-to-point mailboxes with ``(source, tag)`` matching, a
reusable rendezvous for collectives, and a global abort switch so a rank
failure wakes every blocked rank instead of deadlocking the run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MPIError

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """An in-flight point-to-point message."""

    source: int
    tag: int
    payload: Any
    nbytes: int
    send_time: float  # sender's virtual clock when the send completed
    seq: int = 0  # fabric-wide sequence for deterministic ordering


class Fabric:
    """Mailboxes + collective rendezvous for one communicator."""

    def __init__(self, size: int):
        if size < 1:
            raise MPIError("communicator size must be >= 1")
        self.size = size
        self._lock = threading.Condition()
        self._mailboxes: list[list[Message]] = [[] for _ in range(size)]
        self._seq = 0
        self._aborted: BaseException | None = None
        self._failed: set[int] = set()  # guarded-by: _lock
        # Collective rendezvous state (double-barrier protocol).
        self._coll_barrier = threading.Barrier(size)
        self._coll_slots: list[Any] = [None] * size
        self._coll_times: list[float] = [0.0] * size

    # -- abort handling -------------------------------------------------------
    def abort(self, cause: BaseException) -> None:
        """Wake every blocked rank; subsequent fabric calls raise."""
        with self._lock:
            if self._aborted is None:
                self._aborted = cause
            self._lock.notify_all()
        self._coll_barrier.abort()

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise MPIError(f"SPMD run aborted: {self._aborted!r}")

    # -- dead-rank simulation -------------------------------------------------
    def fail_rank(self, rank: int) -> None:
        """Mark ``rank`` dead: its mailbox is purged (a crashed process
        loses its volatile state), subsequent posts *to* it are silently
        dropped, and receives *by* it raise.  Unlike :meth:`abort`, the
        rest of the fabric keeps running — this is how chaos tests
        simulate a single shard death without killing the whole run."""
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} out of range [0, {self.size})")
        with self._lock:
            self._failed.add(rank)
            self._mailboxes[rank].clear()
            self._lock.notify_all()

    def restore_rank(self, rank: int) -> None:
        """Bring a failed rank back (empty mailbox — a restart, not a
        resume of the dead process's state)."""
        with self._lock:
            self._failed.discard(rank)
            self._mailboxes[rank].clear()
            self._lock.notify_all()

    def is_failed(self, rank: int) -> bool:
        with self._lock:
            return rank in self._failed

    # -- point to point --------------------------------------------------------
    def post(self, dest: int, message: Message) -> None:
        if not (0 <= dest < self.size):
            raise MPIError(f"destination rank {dest} out of range [0, {self.size})")
        with self._lock:
            self._check_abort()
            if dest in self._failed:
                return  # the dead rank will never read it
            message.seq = self._seq
            self._seq += 1
            self._mailboxes[dest].append(message)
            self._lock.notify_all()

    def match(self, dest: int, source: int, tag: int, timeout: float = 60.0) -> Message:
        """Block until a message matching ``(source, tag)`` arrives.

        ``ANY_SOURCE`` / ``ANY_TAG`` wildcard; among matches, the lowest
        fabric sequence number wins (deterministic, FIFO per pair).
        """
        deadline = None if timeout is None else (threading.TIMEOUT_MAX if timeout < 0 else timeout)
        with self._lock:
            while True:
                self._check_abort()
                if dest in self._failed:
                    raise MPIError(f"rank {dest} is failed (dead-rank simulation)")
                box = self._mailboxes[dest]
                best_idx = -1
                for idx, msg in enumerate(box):
                    if (source == ANY_SOURCE or msg.source == source) and (
                        tag == ANY_TAG or msg.tag == tag
                    ):
                        if best_idx < 0 or msg.seq < box[best_idx].seq:
                            best_idx = idx
                if best_idx >= 0:
                    return box.pop(best_idx)
                if not self._lock.wait(timeout=deadline):
                    raise MPIError(
                        f"recv timeout on rank {dest} waiting for "
                        f"(source={source}, tag={tag})"
                    )

    def pending(self, dest: int) -> int:
        with self._lock:
            return len(self._mailboxes[dest])

    def match_nowait(self, dest: int, source: int, tag: int) -> Message | None:
        """Non-blocking match: pop a matching message or return None."""
        with self._lock:
            self._check_abort()
            if dest in self._failed:
                raise MPIError(f"rank {dest} is failed (dead-rank simulation)")
            box = self._mailboxes[dest]
            best_idx = -1
            for idx, msg in enumerate(box):
                if (source == ANY_SOURCE or msg.source == source) and (
                    tag == ANY_TAG or msg.tag == tag
                ):
                    if best_idx < 0 or msg.seq < box[best_idx].seq:
                        best_idx = idx
            if best_idx < 0:
                return None
            return box.pop(best_idx)

    # -- collective rendezvous ------------------------------------------------
    def exchange(self, rank: int, contribution: Any, entry_time: float) -> tuple[list[Any], float]:
        """All-ranks rendezvous: deposit a contribution, get everyone's.

        Returns ``(contributions_by_rank, t_start)`` where ``t_start`` is
        the latest entry time across ranks — the moment the collective can
        begin, used for virtual-clock reconciliation.

        Protocol: deposit → barrier → read → barrier.  The second barrier
        prevents a fast rank from starting the *next* collective and
        overwriting slots another rank has not read yet.
        """
        self._check_abort()
        self._coll_slots[rank] = contribution
        self._coll_times[rank] = entry_time
        try:
            self._coll_barrier.wait()
            contributions = list(self._coll_slots)
            t_start = max(self._coll_times)
            self._coll_barrier.wait()
        except threading.BrokenBarrierError:
            self._check_abort()
            raise MPIError("collective barrier broken") from None
        return contributions, t_start
