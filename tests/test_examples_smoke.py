"""Smoke tests: every shipped example must run to completion and print
its headline results.  Kept at scaled sizes so the whole module stays
under a minute."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, timeout: float = 300.0) -> str:
    path = os.path.join(EXAMPLES, name)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "VCA shape" in out
        assert "smoothing reduced RMS" in out

    def test_earthquake_detection(self):
        out = run_example("earthquake_detection.py")
        assert "earthquake" in out
        assert "vehicle" in out
        assert "persistent" in out

    def test_traffic_interferometry(self):
        out = run_example("traffic_interferometry.py")
        assert "moveout recovered" in out

    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "OUT OF MEMORY" in out.upper() or "out of memory" in out
        assert "1456" in out

    def test_velocity_profiling(self):
        out = run_example("velocity_profiling.py")
        assert "m/s" in out
        assert "err" in out
