"""Tests for the hdf5lite read-side cache layer (cache.py) and its wiring
through contiguous, chunked, and virtual reads."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.hdf5lite import (
    BlockCache,
    CacheConfig,
    File,
    FilePool,
    coalesce_runs,
)
from repro.hdf5lite.cache import resolve_cache
from repro.storage.vca import VCAHandle, create_vca
from repro.utils.iostats import IOStats


# ---------------------------------------------------------------------------
# CacheConfig / BlockCache unit behaviour
# ---------------------------------------------------------------------------
class TestCacheConfig:
    def test_defaults_enabled(self):
        cfg = CacheConfig()
        assert cfg.enabled
        assert cfg.byte_budget > 0

    def test_budget_zero_disables(self):
        assert not CacheConfig(byte_budget=0).enabled

    def test_validation(self):
        with pytest.raises(FormatError):
            CacheConfig(byte_budget=-1)
        with pytest.raises(FormatError):
            CacheConfig(page_size=0)
        with pytest.raises(FormatError):
            CacheConfig(coalesce_gap=-1)

    def test_resolve_cache(self):
        assert resolve_cache(None) is None
        assert resolve_cache(CacheConfig(byte_budget=0)) is None
        cache = BlockCache(CacheConfig(byte_budget=1024))
        assert resolve_cache(cache) is cache
        assert isinstance(resolve_cache(CacheConfig()), BlockCache)
        with pytest.raises(FormatError):
            resolve_cache("not a cache")


class TestBlockCache:
    def test_get_put_and_counters(self):
        cache = BlockCache(CacheConfig(byte_budget=100))
        key = ("f", "page", 0, 0)
        assert cache.get(key) is None
        cache.put(key, b"abc")
        assert cache.get(key) == b"abc"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.current_bytes == 3

    def test_lru_eviction_respects_budget(self):
        cache = BlockCache(CacheConfig(byte_budget=10))
        cache.put(("f", 1), b"aaaa")
        cache.put(("f", 2), b"bbbb")
        cache.put(("f", 3), b"cccc")  # evicts ("f", 1)
        assert cache.get(("f", 1)) is None
        assert cache.get(("f", 3)) == b"cccc"
        assert cache.evictions == 1
        assert cache.current_bytes <= 10

    def test_recently_used_survives(self):
        cache = BlockCache(CacheConfig(byte_budget=10))
        cache.put(("f", 1), b"aaaa")
        cache.put(("f", 2), b"bbbb")
        assert cache.get(("f", 1)) == b"aaaa"  # bump recency
        cache.put(("f", 3), b"cccc")  # now ("f", 2) is LRU
        assert cache.get(("f", 1)) == b"aaaa"
        assert cache.get(("f", 2)) is None

    def test_oversized_block_not_admitted(self):
        cache = BlockCache(CacheConfig(byte_budget=4))
        cache.put(("f", 1), b"toolarge")
        assert len(cache) == 0

    def test_invalidate_file_drops_only_that_file(self):
        cache = BlockCache()
        cache.put(("a", "page", 0, 0), b"x")
        cache.put(("b", "page", 0, 0), b"y")
        assert cache.invalidate_file("a") == 1
        assert cache.get(("a", "page", 0, 0)) is None
        assert cache.get(("b", "page", 0, 0)) == b"y"

    def test_counters_flow_into_iostats(self):
        stats = IOStats()
        cache = BlockCache(CacheConfig(byte_budget=8), iostats=stats)
        cache.get(("f", 1))
        cache.put(("f", 1), b"aaaa")
        cache.get(("f", 1))
        cache.put(("f", 2), b"bbbbbb")  # evicts ("f", 1)
        snap = stats.cache_snapshot()
        assert snap["cache_misses"] == 1
        assert snap["cache_hits"] == 1
        assert snap["cache_evictions"] == 1


class TestCoalesceRuns:
    def test_adjacent_runs_merge(self):
        spans = coalesce_runs([(0, 4), (4, 4)], max_gap=0)
        assert spans == [(0, 8, [(0, 4), (4, 4)])]

    def test_gap_within_threshold_merges(self):
        spans = coalesce_runs([(0, 4), (6, 4)], max_gap=2)
        assert spans == [(0, 10, [(0, 4), (6, 4)])]

    def test_gap_beyond_threshold_splits(self):
        spans = coalesce_runs([(0, 4), (7, 4)], max_gap=2)
        assert [s[:2] for s in spans] == [(0, 4), (7, 4)]

    def test_backwards_run_starts_new_span(self):
        spans = coalesce_runs([(10, 4), (0, 4)], max_gap=100)
        assert [s[:2] for s in spans] == [(10, 4), (0, 4)]

    def test_empty_and_zero_runs(self):
        assert coalesce_runs([], max_gap=4) == []
        assert coalesce_runs([(0, 0), (5, 3)], max_gap=0) == [(5, 3, [(5, 3)])]

    def test_negative_gap_rejected(self):
        from repro.errors import SelectionError

        with pytest.raises(SelectionError):
            coalesce_runs([(0, 1)], max_gap=-1)


# ---------------------------------------------------------------------------
# Cached reads: contiguous, chunked, virtual
# ---------------------------------------------------------------------------
@pytest.fixture
def contiguous_file(tmp_path):
    path = str(tmp_path / "c.h5")
    data = np.arange(64 * 100, dtype=np.float32).reshape(64, 100)
    with File(path, "w") as f:
        f.create_dataset("D", data=data)
    return path, data


@pytest.fixture
def chunked_file(tmp_path):
    path = str(tmp_path / "k.h5")
    data = np.arange(40 * 60, dtype=np.float64).reshape(40, 60)
    with File(path, "w") as f:
        f.create_dataset("D", data=data, chunks=(16, 16))
    return path, data


class TestContiguousCached:
    def test_correctness_full_and_sliced(self, contiguous_file):
        path, data = contiguous_file
        with File(path, "r", cache=CacheConfig()) as f:
            ds = f.dataset("D")
            np.testing.assert_array_equal(ds.read(), data)
            np.testing.assert_array_equal(ds[3:17, 5:90], data[3:17, 5:90])
            np.testing.assert_array_equal(ds[::3, ::7], data[::3, ::7])

    def test_repeat_read_hits_cache_no_new_backend_reads(self, contiguous_file):
        path, data = contiguous_file
        stats = IOStats()
        with File(path, "r", iostats=stats, cache=CacheConfig()) as f:
            ds = f.dataset("D")
            ds.read()
            reads_after_first = stats.reads
            ds.read()
            ds[10:20, :]
            assert stats.reads == reads_after_first
            assert stats.cache_hits > 0

    def test_small_page_size_correctness(self, contiguous_file):
        path, data = contiguous_file
        cfg = CacheConfig(page_size=97)  # deliberately unaligned
        with File(path, "r", cache=cfg) as f:
            np.testing.assert_array_equal(f.dataset("D").read(), data)
            np.testing.assert_array_equal(
                f.dataset("D")[5:40, 13:88], data[5:40, 13:88]
            )

    def test_budget_zero_matches_seed_counts(self, contiguous_file):
        path, data = contiguous_file

        def read_all(cache):
            stats = IOStats()
            with File(path, "r", iostats=stats, cache=cache) as f:
                ds = f.dataset("D")
                a = ds.read()
                b = ds[3:17, 5:90]
                c = ds[::3, ::7]
            return stats.snapshot(), (a, b, c)

        seed_snap, seed_out = read_all(None)
        zero_snap, zero_out = read_all(CacheConfig(byte_budget=0))
        assert seed_snap == zero_snap
        for x, y in zip(seed_out, zero_out):
            np.testing.assert_array_equal(x, y)

    def test_gap_coalescing_reduces_requests(self, tmp_path):
        # A column selection of a wide row-major array: one short run per
        # row.  Uncached: one request per row; cached with a page cache:
        # one request per page.
        path = str(tmp_path / "w.h5")
        data = np.arange(200 * 50, dtype=np.float32).reshape(200, 50)
        with File(path, "w") as f:
            f.create_dataset("D", data=data)

        seed = IOStats()
        with File(path, "r", iostats=seed) as f:
            sel_seed = f.dataset("D")[:, 10:13]
        cached = IOStats()
        with File(path, "r", iostats=cached, cache=CacheConfig()) as f:
            sel_cached = f.dataset("D")[:, 10:13]
        np.testing.assert_array_equal(sel_seed, sel_cached)
        assert cached.reads < seed.reads

    def test_eviction_under_tiny_budget_still_correct(self, contiguous_file):
        path, data = contiguous_file
        stats = IOStats()
        # Budget fits ~2 pages of 1 KiB; the read set needs many more.
        cfg = CacheConfig(byte_budget=2048, page_size=1024)
        with File(path, "r", iostats=stats, cache=cfg) as f:
            np.testing.assert_array_equal(f.dataset("D").read(), data)
            np.testing.assert_array_equal(f.dataset("D").read(), data)
        assert stats.cache_evictions > 0


class TestChunkedCached:
    def test_correctness(self, chunked_file):
        path, data = chunked_file
        with File(path, "r", cache=CacheConfig()) as f:
            ds = f.dataset("D")
            np.testing.assert_array_equal(ds.read(), data)
            np.testing.assert_array_equal(ds[7:25, 10:45], data[7:25, 10:45])
            np.testing.assert_array_equal(ds[::2, ::5], data[::2, ::5])

    def test_miss_loads_whole_chunk_once(self, chunked_file):
        path, data = chunked_file
        stats = IOStats()
        with File(path, "r", iostats=stats, cache=CacheConfig()) as f:
            ds = f.dataset("D")
            before = stats.reads
            # Touches exactly one chunk (rows 0-15, cols 0-15) twice.
            ds[2:10, 3:12]
            assert stats.reads - before == 1  # one whole-chunk request
            ds[0:16, 0:16]
            assert stats.reads - before == 1  # second touch is a hit
            assert stats.cache_hits >= 1

    def test_repeat_full_read_no_new_reads(self, chunked_file):
        path, data = chunked_file
        stats = IOStats()
        with File(path, "r", iostats=stats, cache=CacheConfig()) as f:
            ds = f.dataset("D")
            ds.read()
            after_first = stats.reads
            np.testing.assert_array_equal(ds.read(), data)
            assert stats.reads == after_first

    def test_chunk_larger_than_budget_falls_back(self, chunked_file):
        path, data = chunked_file
        # One 16x16 float64 chunk is 2048 B > budget; per-run fallback.
        stats = IOStats()
        with File(path, "r", iostats=stats, cache=CacheConfig(byte_budget=100)) as f:
            np.testing.assert_array_equal(f.dataset("D").read(), data)
        assert stats.cache_hits == 0

    def test_eviction_cycling_small_budget(self, chunked_file):
        path, data = chunked_file
        # Budget holds exactly one 2048-byte chunk: every new chunk evicts.
        stats = IOStats()
        with File(path, "r", iostats=stats, cache=CacheConfig(byte_budget=2048)) as f:
            np.testing.assert_array_equal(f.dataset("D").read(), data)
        assert stats.cache_evictions > 0

    def test_budget_zero_matches_seed_counts(self, chunked_file):
        path, _ = chunked_file

        def read_all(cache):
            stats = IOStats()
            with File(path, "r", iostats=stats, cache=cache) as f:
                f.dataset("D").read()
                f.dataset("D")[5:30, 7:50]
            return stats.snapshot()

        assert read_all(None) == read_all(CacheConfig(byte_budget=0))


class TestWriteInvalidation:
    def test_write_then_cached_read_sees_new_data(self, tmp_path):
        path = str(tmp_path / "rw.h5")
        data = np.zeros((8, 8), dtype=np.float32)
        with File(path, "w") as f:
            f.create_dataset("D", data=data)
        cache = BlockCache()
        with File(path, "r+", cache=cache) as f:
            ds = f.dataset("D")
            np.testing.assert_array_equal(ds.read(), data)  # warm the cache
            ds[2:4, :] = 7.0
            got = ds.read()
        assert (got[2:4] == 7.0).all()
        assert (got[:2] == 0.0).all()

    def test_truncating_open_invalidates_shared_cache(self, tmp_path):
        path = str(tmp_path / "t.h5")
        cache = BlockCache()
        with File(path, "w") as f:
            f.create_dataset("D", data=np.ones((4, 4), dtype=np.float32))
        with File(path, "r", cache=cache) as f:
            f.dataset("D").read()
        assert len(cache) > 0
        with File(path, "w", cache=cache) as f:
            f.create_dataset("D", data=np.zeros((4, 4), dtype=np.float32))
        with File(path, "r", cache=cache) as f:
            np.testing.assert_array_equal(
                f.dataset("D").read(), np.zeros((4, 4), dtype=np.float32)
            )


# ---------------------------------------------------------------------------
# FilePool
# ---------------------------------------------------------------------------
class TestFilePool:
    def test_acquire_reuses_handle(self, contiguous_file):
        path, _ = contiguous_file
        with FilePool() as pool:
            a = pool.acquire(path)
            b = pool.acquire(path)
            assert a is b
            assert pool.hits == 1
            assert pool.misses == 1
            assert len(pool) == 1

    def test_pool_hit_counters_in_iostats(self, contiguous_file):
        path, _ = contiguous_file
        stats = IOStats()
        with FilePool(iostats=stats) as pool:
            pool.acquire(path)
            pool.acquire(path)
        snap = stats.cache_snapshot()
        assert snap["pool_misses"] == 1
        assert snap["pool_hits"] == 1

    def test_eviction_closes_lru_handle(self, tmp_path):
        paths = []
        for i in range(3):
            p = str(tmp_path / f"p{i}.h5")
            with File(p, "w") as f:
                f.create_dataset("D", data=np.ones((2, 2), dtype=np.float32))
            paths.append(p)
        with FilePool(max_handles=2) as pool:
            h0 = pool.acquire(paths[0])
            pool.acquire(paths[1])
            pool.acquire(paths[2])  # evicts h0
            assert h0.closed
            assert len(pool) == 2
            assert pool.evictions == 1
            # Re-acquiring an evicted path reopens it.
            h0b = pool.acquire(paths[0])
            assert not h0b.closed

    def test_close_all(self, contiguous_file):
        path, _ = contiguous_file
        pool = FilePool()
        h = pool.acquire(path)
        pool.close_all()
        assert h.closed
        assert len(pool) == 0

    def test_max_handles_validation(self):
        with pytest.raises(FormatError):
            FilePool(max_handles=0)


# ---------------------------------------------------------------------------
# Virtual reads (VCA) through cache + pool
# ---------------------------------------------------------------------------
class TestVirtualCached:
    def test_vca_read_correct_through_pool(self, das_dir, tmp_path):
        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
        cache = BlockCache()
        with FilePool(cache=cache) as pool:
            with VCAHandle(vca_path, pool=pool) as vca:
                np.testing.assert_array_equal(vca.dataset.read(), das_dir["full"])

    def test_repeated_vca_reads_do_not_grow_opens(self, das_dir, tmp_path):
        """Regression: each VCAHandle used to re-open the VCA file and every
        source file; with a pool, opens stay flat across repeats."""
        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
        stats = IOStats()
        cache = BlockCache(iostats=stats)
        with FilePool(iostats=stats, cache=cache) as pool:
            with VCAHandle(vca_path, iostats=stats, pool=pool) as vca:
                vca.dataset.read()
            opens_after_first = stats.opens
            for _ in range(3):
                with VCAHandle(vca_path, iostats=stats, pool=pool) as vca:
                    vca.dataset.read()
            assert stats.opens == opens_after_first
            assert stats.pool_hits >= 3

    def test_repeated_vca_reads_no_new_backend_reads(self, das_dir, tmp_path):
        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
        stats = IOStats()
        cache = BlockCache(iostats=stats)
        with FilePool(iostats=stats, cache=cache) as pool:
            with VCAHandle(vca_path, iostats=stats, pool=pool) as vca:
                first = vca.dataset.read()
            reads_after_first = stats.reads
            with VCAHandle(vca_path, iostats=stats, pool=pool) as vca:
                second = vca.dataset.read()
            assert stats.reads == reads_after_first
        np.testing.assert_array_equal(first, second)

    def test_vca_cached_without_pool(self, das_dir, tmp_path):
        """Cache propagates from the VCA file to its private source handles."""
        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
        stats = IOStats()
        with VCAHandle(vca_path, iostats=stats, cache=CacheConfig()) as vca:
            vca.dataset.read()
            reads_after_first = stats.reads
            np.testing.assert_array_equal(vca.dataset.read(), das_dir["full"])
            assert stats.reads == reads_after_first

    def test_partial_vca_read_correct(self, das_dir, tmp_path):
        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
        cache = BlockCache()
        with FilePool(cache=cache) as pool:
            with VCAHandle(vca_path, pool=pool) as vca:
                np.testing.assert_array_equal(
                    vca.dataset[4:12, 100:500], das_dir["full"][4:12, 100:500]
                )

    def test_budget_zero_vca_matches_seed(self, das_dir, tmp_path):
        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])

        def read(cache):
            stats = IOStats()
            with VCAHandle(vca_path, iostats=stats, cache=cache) as vca:
                vca.dataset.read()
            return stats.snapshot()

        assert read(None) == read(CacheConfig(byte_budget=0))


class TestOpenLav:
    def test_open_lav_through_pool(self, das_dir, tmp_path):
        from repro.storage.lav import open_lav

        vca_path = create_vca(str(tmp_path / "v.h5"), das_dir["paths"])
        stats = IOStats()
        with FilePool(iostats=stats, cache=BlockCache(iostats=stats)) as pool:
            view = open_lav(pool, vca_path, "VCA", channels=slice(2, 10))
            np.testing.assert_array_equal(view.read(), das_dir["full"][2:10])
            opens = stats.opens
            # A second view over the same file: no new open.
            view2 = open_lav(pool, vca_path, "VCA", times=slice(0, 50))
            np.testing.assert_array_equal(view2.read(), das_dir["full"][:, :50])
            assert stats.opens == opens
