"""Edge coverage: read-write reopen ("r+"), flush semantics, engine
estimate validation, and misc small paths."""

import numpy as np
import pytest

from repro.arrayudf.engine import HybridEngine, WorkloadSpec
from repro.cluster import cori_haswell
from repro.errors import ConfigError, FormatError
from repro.hdf5lite import File


class TestReadWriteReopen:
    def test_append_dataset_to_existing_file(self, tmp_path):
        path = str(tmp_path / "f.h5")
        with File(path, "w") as f:
            f.create_dataset("first", data=np.arange(10.0))
        with File(path, "r+") as f:
            f.create_dataset("second", data=np.arange(5.0) * 2)
            np.testing.assert_array_equal(f.dataset("first").read(), np.arange(10.0))
        with File(path, "r") as f:
            assert f.datasets() == ["first", "second"]
            np.testing.assert_array_equal(f.dataset("second").read(), np.arange(5.0) * 2)

    def test_modify_data_in_place(self, tmp_path):
        path = str(tmp_path / "f.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.zeros((4, 4)))
        with File(path, "r+") as f:
            f.dataset("d")[1, :] = 7.0
        with File(path, "r") as f:
            np.testing.assert_array_equal(f.dataset("d")[1], np.full(4, 7.0))
            np.testing.assert_array_equal(f.dataset("d")[0], np.zeros(4))

    def test_attr_update_on_reopen(self, tmp_path):
        path = str(tmp_path / "f.h5")
        with File(path, "w") as f:
            f.attrs["version"] = 1
        with File(path, "r+") as f:
            f.attrs["version"] = 2
        with File(path, "r") as f:
            assert f.attrs["version"] == 2

    def test_flush_without_changes_noop(self, tmp_path):
        path = str(tmp_path / "f.h5")
        with File(path, "w") as f:
            f.create_dataset("d", data=np.zeros(4))
        import os

        size_before = os.path.getsize(path)
        with File(path, "r+") as f:
            f.flush()  # nothing dirty
        assert os.path.getsize(path) == size_before

    def test_explicit_flush_midway(self, tmp_path):
        path = str(tmp_path / "f.h5")
        writer = File(path, "w")
        writer.create_dataset("d", data=np.arange(6.0))
        writer.flush()
        # A concurrent reader sees the flushed state.
        with File(path, "r") as reader:
            np.testing.assert_array_equal(reader.dataset("d").read(), np.arange(6.0))
        writer.create_dataset("e", data=np.zeros(2))
        writer.close()
        with File(path, "r") as reader:
            assert reader.datasets() == ["d", "e"]

    def test_many_small_datasets(self, tmp_path):
        path = str(tmp_path / "many.h5")
        with File(path, "w") as f:
            for i in range(100):
                f.create_dataset(f"group{i % 10}/ds{i}", data=np.array([float(i)]))
        with File(path, "r") as f:
            assert len(f["group3"].datasets()) == 10
            np.testing.assert_array_equal(f.dataset("group4/ds44").read(), [44.0])

    def test_empty_dataset_roundtrip(self, tmp_path):
        path = str(tmp_path / "f.h5")
        with File(path, "w") as f:
            f.create_dataset("empty", data=np.zeros((0, 5), dtype=np.float32))
        with File(path, "r") as f:
            ds = f.dataset("empty")
            assert ds.shape == (0, 5)
            assert ds.read().size == 0


class TestEngineEstimateValidation:
    def test_unknown_read_pattern(self):
        engine = HybridEngine(cori_haswell(91), 91, threads_per_rank=8)
        workload = WorkloadSpec(total_bytes=2**30, n_files=10)
        with pytest.raises(ConfigError, match="read pattern"):
            engine.estimate(workload, read_pattern="telepathy")

    def test_workload_properties(self):
        workload = WorkloadSpec(total_bytes=1000, n_files=10, itemsize=4)
        assert workload.file_bytes == 100
        assert workload.total_samples == 250

    def test_zero_master_workload(self):
        engine = HybridEngine(cori_haswell(91), 91, threads_per_rank=8)
        workload = WorkloadSpec(total_bytes=2**30, n_files=4, master_bytes=0)
        report = engine.estimate(workload)
        assert report.failed is None


class TestMiscFormat:
    def test_dataset_on_group_path_rejected(self, tmp_path):
        with File(str(tmp_path / "f.h5"), "w") as f:
            f.create_group("g")
            with pytest.raises(FormatError):
                f.create_dataset("g", data=np.zeros(2))

    def test_group_over_dataset_rejected(self, tmp_path):
        with File(str(tmp_path / "f.h5"), "w") as f:
            f.create_dataset("d", data=np.zeros(2))
            with pytest.raises(FormatError):
                f.create_group("d/sub")

    def test_dataset_lookup_on_group_raises(self, tmp_path):
        with File(str(tmp_path / "f.h5"), "w") as f:
            f.create_group("g")
            with pytest.raises(FormatError, match="group, not a dataset"):
                f.dataset("g")

    def test_empty_names_rejected(self, tmp_path):
        with File(str(tmp_path / "f.h5"), "w") as f:
            with pytest.raises(FormatError):
                f.create_group("")
            with pytest.raises(FormatError):
                f.create_dataset("//", data=np.zeros(1))
