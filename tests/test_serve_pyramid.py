"""Pyramid correctness: stored levels are bit-exact DecimateOp outputs.

The contract under test (``repro.serve.pyramid`` + ``repro.hdf5lite.pyramid``):

* every stored level ``k`` equals ``DecimateOp(factor**k)`` streamed
  over the raw record with the builder's chunking — bit-for-bit (the
  computation is deterministic), and within the repo's established
  1e-9 of a single-chunk whole-record run under any other chunking
  (``decimate_chunk`` convolves via FFT, whose rounding is
  block-length-dependent — same tolerance the core streaming suite
  uses for resample chains);
* NaN gap columns in the raw record propagate into NaN (masked) preview
  pixels: every pixel centred in the gap is NaN, and every pixel that
  stays finite is bit-identical to the clean record's pixel;
* the stored form round-trips through codecs + CRC sidecars and is
  covered by ``das_inspect``-style ``describe``/``verify``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import DecimateOp
from repro.core.optimizer import execute, optimize
from repro.core.graph import Query
from repro.errors import ConfigError, ServeError
from repro.hdf5lite import File, pyramid_levels
from repro.hdf5lite.inspect import describe, verify
from repro.hdf5lite.pyramid import FACTOR_ATTR, PyramidLevel
from repro.serve.pyramid import (
    PyramidConfig,
    build_pyramid,
    compute_level,
    level_slice,
    select_level,
)
from repro.storage.chunks import ArraySource
from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.storage.vca import create_vca


def whole_record_reference(data: np.ndarray, factor: int) -> np.ndarray:
    """DecimateOp in one chunk covering the entire record."""
    plan = optimize(
        Query.scan(None).then(DecimateOp(factor)),
        chunk_samples=data.shape[1],
        verify=False,
    )
    (result,) = execute(plan, source=ArraySource(data))
    return result.output


def make_vca(root: str, n_channels=8, minutes=3, spm=600, fs=10.0, seed=7):
    rng = np.random.default_rng(seed)
    stamp = "170620100545"
    paths = []
    for _ in range(minutes):
        block = rng.normal(size=(n_channels, spm)).astype(np.float32)
        path = os.path.join(root, das_filename(stamp))
        write_das_file(
            path,
            block,
            DASMetadata(
                sampling_frequency=fs,
                spatial_resolution=2.0,
                timestamp=stamp,
                n_channels=n_channels,
            ),
            channel_groups=False,
        )
        paths.append(path)
        stamp = timestamp_add_seconds(stamp, 60)
    return create_vca(os.path.join(root, "arch.h5"), paths)


# -- streamed == whole-record, swept ----------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    n_samples=st.integers(50, 400),
    factor=st.integers(2, 5),
    chunk=st.integers(16, 96),
    seed=st.integers(0, 2**16),
)
def test_compute_level_matches_whole_record(n_samples, factor, chunk, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(3, n_samples))
    streamed = compute_level(data, factor, chunk_samples=chunk)
    assert streamed.shape == (3, -(-n_samples // factor))
    # FFT convolution rounds per block length: chunked agrees with the
    # whole-record run to the core suite's resample tolerance, and the
    # computation itself is deterministic bit-for-bit.
    np.testing.assert_allclose(
        streamed, whole_record_reference(data, factor), rtol=0, atol=1e-9
    )
    np.testing.assert_array_equal(
        streamed, compute_level(data, factor, chunk_samples=chunk)
    )


def test_ragged_tail_lengths():
    # every residue class mod factor, so the last chunk and the last
    # output sample hit each ragged configuration
    for extra in range(4):
        data = np.random.default_rng(extra).normal(size=(2, 96 + extra))
        out = compute_level(data, 4, chunk_samples=25)
        assert out.shape == (2, -(-(96 + extra) // 4))
        np.testing.assert_allclose(
            out, whole_record_reference(data, 4), rtol=0, atol=1e-9
        )


# -- NaN gaps → masked pixels ------------------------------------------------

def test_nan_gap_columns_mask_preview_pixels():
    rng = np.random.default_rng(3)
    clean = rng.normal(size=(4, 800))
    gapped = clean.copy()
    g0, g1 = 300, 420
    gapped[:, g0:g1] = np.nan
    factor = 4
    out_clean = compute_level(clean, factor, chunk_samples=128)
    out_gapped = compute_level(gapped, factor, chunk_samples=128)

    # every pixel centred inside the gap is NaN (masked in a Preview)
    j_lo, j_hi = level_slice(factor, g0, g1)
    assert not np.isfinite(out_gapped[:, j_lo:j_hi]).any()
    # contamination is bounded: a pixel either went NaN or is untouched —
    # finite pixels are bit-identical to the clean record's (the chunks
    # that never read a gap sample saw identical input blocks)
    finite = np.isfinite(out_gapped).all(axis=0)
    assert finite.any() and not finite.all()
    np.testing.assert_array_equal(
        out_gapped[:, finite], out_clean[:, finite]
    )
    # pixels well clear of the gap (different chunks entirely) survive
    assert finite[: max(1, (128 - 50) // factor)].all()
    assert finite[-5:].all()


# -- end-to-end stored pyramid ----------------------------------------------

def test_build_pyramid_stored_levels_bit_exact(tmp_path):
    vca = make_vca(str(tmp_path))
    levels = build_pyramid(vca, PyramidConfig(factor=4, min_samples=32))
    assert [lvl.factor for lvl in levels] == [4, 16]
    with File(vca, "r") as f:
        raw = np.asarray(f["VCA"][:, :], dtype=np.float64)
        for lvl in levels:
            stored = np.asarray(f[lvl.path][:, :], dtype=np.float64)
            # this record fits one auto-sized chunk, so the build and the
            # whole-record reference run the identical computation
            np.testing.assert_array_equal(
                stored, whole_record_reference(raw, lvl.factor)
            )
            assert lvl.codec == "delta-zlib:1"
            assert lvl.base_samples == raw.shape[1]


def test_build_pyramid_verify_and_describe(tmp_path):
    vca = make_vca(str(tmp_path))
    build_pyramid(vca, PyramidConfig(factor=4, min_samples=32))
    with File(vca, "r") as f:
        assert verify(f) == []
        listing = describe(f)
        assert "pyramid[level=1 factor=4]" in listing
        assert "pyramid[level=2 factor=16]" in listing
        assert pyramid_levels(f) == pyramid_levels(f)


def test_verify_catches_tampered_factor(tmp_path):
    vca = make_vca(str(tmp_path))
    build_pyramid(vca, PyramidConfig(factor=4, min_samples=32))
    with File(vca, "r+") as f:
        f["pyramid/level1"].attrs[FACTOR_ATTR] = 8  # lies about the rate
    with File(vca, "r") as f:
        messages = [p.message for p in verify(f)]
    assert any("base factor" in m for m in messages)
    assert any("level length" in m for m in messages)


def test_build_twice_rejected(tmp_path):
    vca = make_vca(str(tmp_path))
    build_pyramid(vca, PyramidConfig(factor=4, min_samples=32))
    with pytest.raises(ServeError):
        build_pyramid(vca, PyramidConfig(factor=4, min_samples=32))


def test_too_short_record_rejected(tmp_path):
    vca = make_vca(str(tmp_path), minutes=1, spm=60)
    with pytest.raises(ServeError):
        build_pyramid(vca, PyramidConfig(factor=4, min_samples=1000))


# -- level selection ---------------------------------------------------------

def _lvl(level: int, factor: int) -> PyramidLevel:
    return PyramidLevel(
        level=level,
        factor=factor,
        path=f"/pyramid/level{level}",
        shape=(4, 1000),
        dtype="float64",
        codec=None,
        base_samples=1000 * factor,
        base_dataset="VCA",
        fs=0.0,
    )


def test_select_level_picks_coarsest_fitting():
    levels = [_lvl(1, 4), _lvl(2, 16), _lvl(3, 64)]
    assert select_level(levels, span=64_000, width=100).factor == 64
    # exactly one stored sample per pixel still fits
    assert select_level(levels, span=6_400, width=100).factor == 64
    assert select_level(levels, span=3_200, width=100).factor == 16
    assert select_level(levels, span=800, width=100).factor == 4
    # pixel pitch finer than the finest level: read raw
    assert select_level(levels, span=300, width=100) is None
    assert select_level([], span=10_000, width=100) is None


def test_select_level_validates():
    with pytest.raises(ConfigError):
        select_level([], span=0, width=10)
    with pytest.raises(ConfigError):
        select_level([], span=100, width=0)


@settings(max_examples=60, deadline=None)
@given(
    factor=st.integers(1, 64),
    t0=st.integers(0, 5000),
    span=st.integers(1, 5000),
)
def test_level_slice_matches_lattice_membership(factor, t0, span):
    t1 = t0 + span
    j0, j1 = level_slice(factor, t0, t1)
    lattice = [j for j in range((t1 // factor) + 2) if t0 <= j * factor < t1]
    assert (j0, j1) == ((lattice[0], lattice[-1] + 1) if lattice else (j0, j0))
