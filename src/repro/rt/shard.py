"""One shard of the sharded RT service: an RTService wrapped in a rank.

Topology (see DESIGN.md §16): rank 0 is the supervisor + catalog
aggregator; rank ``1 + shard_id`` runs one :class:`ShardRuntime` — an
:class:`~repro.rt.service.RTService` over that shard's own spool and
channel range, plus the messaging glue: heartbeats to the supervisor,
event forwarding, and command handling (restart / stop).

Crash semantics: a shard "process" is the in-memory ``RTService``
instance.  A simulated crash (:class:`~repro.errors.InjectedFaultError`
from the chaos ``on_file`` hook) drops the instance without flushing —
exactly what ``SIGKILL`` leaves behind — and marks the rank failed on
the fabric, so in-flight messages to it are lost like a real dead
process's socket buffers.  Recovery is driven by the supervisor: it
restores the rank and sends ``restart``; the shard rebuilds from its
own atomic checkpoint under :func:`~repro.faults.policy.retry_call`
with the configured :class:`~repro.faults.policy.FailurePolicy`
backoff, then **re-sends its entire local event log** — idempotent
re-ingestion, deduped by the aggregator on
``(shard, record, j_start, j_end)`` — so a replayed tail can never
double-count events.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError, DegradedReadError, InjectedFaultError
from repro.faults.chaos import ChaosAction, restore_dir, tear_file, vanish_dir
from repro.faults.policy import FailurePolicy, retry_call
from repro.rt.events import EventPolicy
from repro.rt.scheduler import DetectorConfig
from repro.rt.service import RTService, ServiceConfig

__all__ = [
    "TAG_HEARTBEAT",
    "TAG_EVENTS",
    "TAG_COMMAND",
    "SUPERVISOR_RANK",
    "ShardSpec",
    "ShardChaos",
    "ShardRuntime",
    "shard_main",
]

TAG_HEARTBEAT = 101
TAG_EVENTS = 102
TAG_COMMAND = 103
SUPERVISOR_RANK = 0


@dataclass(frozen=True)
class ShardSpec:
    """Static description of one shard: which spool it ingests, where
    its durable state lives (outside the spool, so a vanished spool
    volume cannot take the checkpoint with it), and which global
    channel range it owns (``channel_base`` rebases local detections
    into the merged catalog's frame).

    ``expected_files`` makes drain-style runs self-terminating: the
    shard reports ``complete`` once every expected file is ingested or
    quarantined.  ``None`` means free-running (the CLI watch mode).
    """

    shard_id: int
    spool: str
    state_dir: str
    channel_base: int = 0
    expected_files: int | None = None

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ConfigError("shard_id must be >= 0")
        if self.channel_base < 0:
            raise ConfigError("channel_base must be >= 0")

    @property
    def rank(self) -> int:
        return self.shard_id + 1


class ShardChaos:
    """Interprets a shard's :class:`~repro.faults.chaos.ChaosAction`
    list against the running service.

    The ``on_file`` hook fires after each fully-ingested file; when the
    count hits an action's trigger point, the action's side effects run
    (tear the checkpoint, vanish the spool, set the hang flag) and an
    :class:`~repro.errors.InjectedFaultError` aborts the tick — the
    simulated crash.  Each action fires exactly once.
    """

    def __init__(self, spec: ShardSpec, actions: list[ChaosAction]):
        self.spec = spec
        self._pending = sorted(actions, key=lambda a: a.at_file)
        self.files = 0
        self.hang = False
        self.tear_on_crash: ChaosAction | None = None
        self.vanish_attempts_left: int | None = None
        self.fired: list[ChaosAction] = []

    def on_file(self, path: str) -> None:
        self.files += 1
        if not self._pending or self._pending[0].at_file != self.files:
            return
        action = self._pending.pop(0)
        self.fired.append(action)
        if action.kind == "hang":
            self.hang = True
        elif action.kind == "torn-checkpoint":
            self.tear_on_crash = action
        elif action.kind == "spool-vanish":
            vanish_dir(self.spec.spool)
            self.vanish_attempts_left = action.down_ticks
        raise InjectedFaultError(
            f"shard {self.spec.shard_id}: injected {action.kind} "
            f"after file {self.files}"
        )

    def on_crash(self, checkpoint_path: str) -> None:
        """Post-crash damage: the torn-mid-rename checkpoint write."""
        action, self.tear_on_crash = self.tear_on_crash, None
        if action is not None and os.path.exists(checkpoint_path):
            tear_file(checkpoint_path, keep_fraction=action.keep_fraction)

    def before_rebuild_attempt(self) -> None:
        """Called once per restart attempt; brings a vanished spool back
        after ``down_ticks`` failed attempts, so the bounded-retry
        rebuild first fails against the missing volume and then
        succeeds — the vanish/reappear cycle."""
        if self.vanish_attempts_left is None:
            return
        self.vanish_attempts_left -= 1
        if self.vanish_attempts_left <= 0:
            restore_dir(self.spec.spool)
            self.vanish_attempts_left = None


@dataclass
class ShardOptions:
    """Everything a shard rank needs beyond its spec."""

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    event_policy: EventPolicy = field(default_factory=EventPolicy)
    service_config: ServiceConfig = field(default_factory=ServiceConfig)
    restart_policy: FailurePolicy = field(
        default_factory=lambda: FailurePolicy(retries=5, backoff=0.01)
    )
    idle_sleep: float = 0.002


class ShardRuntime:
    """The shard rank's event loop around one (replaceable) RTService."""

    def __init__(self, comm, spec: ShardSpec, options: ShardOptions,
                 actions: list[ChaosAction] | None = None):
        self.comm = comm
        self.spec = spec
        self.options = options
        self.chaos = ShardChaos(spec, list(actions or []))
        self.incarnation = 0
        self.restarts = 0
        self.service: RTService | None = None
        self._sent_rows = 0
        self._checkpoint_path = ""
        self._stopped = False
        self.checkpoint_fallbacks: list[str] = []
        self.resume_errors: list[str] = []

    # -- service lifecycle ----------------------------------------------------
    def _make_service(self) -> RTService:
        os.makedirs(self.spec.state_dir, exist_ok=True)
        service = RTService(
            self.spec.spool,
            detector=self.options.detector,
            policy=self.options.event_policy,
            config=self.options.service_config,
            state_dir=self.spec.state_dir,
            on_file=self._on_file,
        )
        self._checkpoint_path = service.checkpoints.path
        return service

    def _on_file(self, path: str) -> None:
        """Per-file hook inside the tick: chaos first (a fired action
        aborts the tick before any beat), then a heartbeat — a tick can
        drain many files, and without mid-tick beats a merely *busy*
        shard would exceed the dead deadline and get restarted."""
        self.chaos.on_file(path)
        if self.service is not None:
            self._beat()

    def _build(self, first: bool) -> None:
        """(Re)build the service; a dirty resume is a retryable failure."""

        def attempt() -> RTService:
            self.chaos.before_rebuild_attempt()
            if not os.path.isdir(self.spec.spool):
                # A vanished spool volume: starting now would scan
                # nothing and (with a checkpoint) drop carried state.
                # Fail the attempt and let the backoff wait it out.
                raise DegradedReadError(self.spec.spool, reason="spool vanished")
            service = self._make_service()
            if service.resume_error is not None:
                # The checkpointed tail is unreadable right now (e.g. the
                # spool is still vanished).  Resuming would silently drop
                # carried detector state, so treat it as a failed start
                # and let the bounded backoff wait the outage out.
                reason = service.resume_error
                self.resume_errors.append(reason)
                raise DegradedReadError(self.spec.spool, reason=reason)
            return service

        policy = self.options.restart_policy
        self.service = retry_call(
            attempt, retries=policy.retries, backoff=policy.backoff
        )
        if self.service.checkpoint_fallback is not None:
            self.checkpoint_fallbacks.append(self.service.checkpoint_fallback)
        if not first:
            self.incarnation += 1
            self.restarts += 1
        # Idempotent re-ingestion: everything in the local log is
        # (re)offered to the aggregator; it dedups on the event key, so
        # rows that made it across before the crash are absorbed.
        self._sent_rows = 0

    def _crash(self) -> None:
        """Drop the service exactly as a SIGKILL would: no flush, no
        checkpoint, volatile queue/announce state gone; then mark the
        rank dead on the fabric so the supervisor's detector sees it."""
        self.service = None
        self.chaos.on_crash(self._checkpoint_path)
        self.comm.fabric.fail_rank(self.comm.rank)

    # -- messaging ------------------------------------------------------------
    def _forward_events(self) -> None:
        service = self.service
        if service is None or service.sink.count <= self._sent_rows:
            return
        rows = service.sink.load_records()[self._sent_rows:]
        self._sent_rows += len(rows)
        self.comm.send(
            {
                "shard": self.spec.shard_id,
                "incarnation": self.incarnation,
                "rows": rows,
            },
            dest=SUPERVISOR_RANK,
            tag=TAG_EVENTS,
        )

    def _complete(self) -> bool:
        service, spec = self.service, self.spec
        if service is None or spec.expected_files is None:
            return False
        seen = len(service.files_seen) + len(service.quarantine)
        return seen >= spec.expected_files

    def _beat(self, stopped: bool = False) -> None:
        service = self.service
        self.comm.send(
            {
                "shard": self.spec.shard_id,
                "incarnation": self.incarnation,
                "ingested": len(service.files_seen) if service else 0,
                "events": service.sink.count if service else 0,
                "quarantined": len(service.quarantine) if service else 0,
                "complete": self._complete(),
                "restarts": self.restarts,
                "stopped": stopped,
            },
            dest=SUPERVISOR_RANK,
            tag=TAG_HEARTBEAT,
        )

    def _poll_command(self) -> dict | None:
        msg = self.comm.fabric.match_nowait(
            self.comm.rank, SUPERVISOR_RANK, TAG_COMMAND
        )
        return None if msg is None else msg.payload

    # -- the loop -------------------------------------------------------------
    def run(self) -> dict:
        self._build(first=True)
        while not self._stopped:
            if self.comm.fabric.is_failed(self.comm.rank):
                # Crashed: a dead process does nothing until the
                # supervisor restores the rank and commands a restart.
                time.sleep(self.options.idle_sleep)
                continue
            command = self._poll_command()
            if command is not None:
                if command.get("cmd") == "stop":
                    self._stop()
                    break
                if command.get("cmd") == "restart":
                    self.chaos.hang = False
                    self._build(first=False)
            if self.chaos.hang or self.service is None:
                # Hung: the process is alive but wedged — no ticks, no
                # heartbeats.  Only the supervisor's missed-deadline
                # detector can get it restarted.
                time.sleep(self.options.idle_sleep)
                continue
            try:
                processed = self.service.tick()
            except InjectedFaultError:
                if self.chaos.hang:
                    # A hang is a wedge, not a death: keep the rank
                    # reachable so the restart command arrives.
                    time.sleep(self.options.idle_sleep)
                else:
                    self._crash()
                continue
            self._forward_events()
            self._beat()
            if not processed:
                time.sleep(self.options.idle_sleep)
        return {
            "shard": self.spec.shard_id,
            "incarnation": self.incarnation,
            "restarts": self.restarts,
            "ingested": len(self.service.files_seen) if self.service else 0,
            "events": self.service.sink.count if self.service else 0,
            "checkpoint_fallbacks": list(self.checkpoint_fallbacks),
            "resume_errors": list(self.resume_errors),
            "chaos_fired": [a.kind for a in self.chaos.fired],
        }

    def _stop(self) -> None:
        """Graceful stop: finalise the record, ship the tail, ack."""
        if self.service is not None:
            self.service.flush()
            self._forward_events()
        self._beat(stopped=True)
        self._stopped = True


def shard_main(comm, spec: ShardSpec, options: ShardOptions,
               actions: list[ChaosAction] | None = None) -> dict:
    """Entry point for a shard rank under ``run_spmd``."""
    return ShardRuntime(comm, spec, options, actions).run()
