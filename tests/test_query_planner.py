"""The lazy query planner: graph construction, rewrite rules, and the
bit-exactness contract.

The contract under test: **every optimized plan produces byte-identical
output to its unoptimized reference execution.**  For single-output
plans the reference is the eager legacy ``StreamPipeline`` run of the
same operator list; for multi-output plans it is the same union-interval
plan with the shared prefix recomputed per branch (``naive=True``),
unfused and without pushdown.  A hypothesis sweep drives the equivalence
across chunk-boundary geometries for all four analysis algorithms, and a
storage-level test asserts that pushdown strictly reduces the bytes read
from the backend.

Comparisons always hand the eager reference the *same* raw-level chunk
the optimized run resolves (``_resolve_execution`` rounds the chunk up
to a multiple of the pushed stride so both runs tile identical core
targets); chunk sizes in the sweeps are pre-rounded the same way.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.signal import butter

from repro.core.graph import (
    CoordFrame,
    Query,
    SubsampleOp,
    verify_geometry,
)
from repro.core.interferometry import InterferometryConfig
from repro.core.local_similarity import LocalSimilarityConfig, LocalSimilarityOp
from repro.core.operators import DetrendOp, FiltFiltOp, TaperOp
from repro.core.optimizer import (
    FusedOp,
    execute,
    explain,
    fuse_operators,
    optimize,
    plan_incremental,
)
from repro.core.pipeline import Operator, StreamPipeline
from repro.core.planner import tune_stream
from repro.core.stalta import StaLtaOp
from repro.errors import ConfigError
from repro.faults.inject import FaultInjector, clear_read_faults
from repro.storage.chunks import open_stream
from repro.storage.dasfile import das_filename, write_das_file
from repro.storage.metadata import DASMetadata, timestamp_add_seconds
from repro.storage.vca import create_vca
from repro.utils.iostats import IOStats


@pytest.fixture(scope="module")
def noise():
    rng = np.random.default_rng(11)
    return rng.normal(size=(16, 4800))


@pytest.fixture(autouse=True)
def _clean_fault_hooks():
    yield
    clear_read_faults()


@pytest.fixture
def vca_setup(tmp_path):
    """Six checksummed per-minute files (16 ch x 120 samples) in a VCA;
    file index 2 covers VCA samples [240, 360)."""
    directory = tmp_path / "das"
    directory.mkdir()
    rng = np.random.default_rng(7)
    stamp = "170620100545"
    paths, blocks = [], []
    for _ in range(6):
        data = rng.normal(size=(16, 120)).astype(np.float32)
        metadata = DASMetadata(
            sampling_frequency=2.0,
            spatial_resolution=2.0,
            timestamp=stamp,
            n_channels=16,
        )
        path = str(directory / das_filename(stamp))
        write_das_file(path, data, metadata, channel_groups=False, checksum=True)
        paths.append(path)
        blocks.append(data)
        stamp = timestamp_add_seconds(stamp, 60)
    vca = create_vca(str(tmp_path / "v.h5"), paths)
    return {"vca": vca, "paths": paths, "full": np.concatenate(blocks, axis=1)}


def _band(lo, hi, fs):
    return butter(2, [lo, hi], btype="band", fs=fs)


def _round_chunk(chunk, step):
    return -(-chunk // step) * step


def _legacy(q, source, chunk, fs=None, threads=1):
    return StreamPipeline(q.operators()).run(
        source, chunk_samples=chunk, fs=fs, threads=threads
    )


# ---------------------------------------------------------------------------
# graph construction
# ---------------------------------------------------------------------------


class TestQueryGraph:
    def test_chain_orders_source_to_tip(self, noise):
        q = Query.scan(noise).select_channels(1, 9).decimate(2)
        kinds = [n.kind for n in q.chain()]
        assert kinds == ["source", "map", "map"]
        names = [op.name for op in q.operators()]
        assert names == ["select[1:9]", "subsample[2]"]

    def test_branching_shares_nodes_by_identity(self, noise):
        base = Query.scan(noise).then(StaLtaOp(4, 16))
        q1 = base.then(SubsampleOp(2))
        q2 = base.then(SubsampleOp(3))
        assert q1.chain()[1] is q2.chain()[1]
        assert q1.chain()[2] is not q2.chain()[2]

    def test_post_after_sink(self, noise):
        from repro.core.operators import CorrelateOp, FFTSink

        q = Query.scan(noise).then(FFTSink()).then(CorrelateOp(np.ones(5)))
        kinds = [n.kind for n in q.chain()]
        assert kinds == ["source", "sink", "post"]

    def test_two_sinks_rejected(self, noise):
        from repro.core.operators import FFTSink

        with pytest.raises(ConfigError):
            Query.scan(noise).then(FFTSink()).then(FFTSink())

    def test_subsample_lattice_is_absolute(self):
        """ctx.start-anchored offsets keep the kept lattice {0, q, 2q, …}
        regardless of chunking — the property the pushdown relies on."""
        data = np.arange(100, dtype=np.float64)[None, :]
        op = SubsampleOp(7)
        sp = StreamPipeline([op])
        for chunk in (100, 31, 14, 7, 5):
            out = sp.run(data, chunk_samples=chunk).output
            np.testing.assert_array_equal(out, data[:, ::7])


class TestVerifyGeometry:
    def test_real_operators_pass(self):
        b, a = _band(0.5, 10.0, 100.0)
        for op in (
            DetrendOp(),
            TaperOp(0.05),
            FiltFiltOp(b, a),
            StaLtaOp(5, 20),
            SubsampleOp(8),
            LocalSimilarityOp(
                LocalSimilarityConfig(half_window=10, half_lag=3, stride=25)
            ),
        ):
            verify_geometry(op, 1000)

    def test_bad_tiling_rejected(self):
        class BadCore(Operator):
            name = "bad-core"

            def out_core(self, lo, hi):
                return lo, max(lo, hi - 1)  # drops a sample per chunk

            def out_full(self, a, b):
                return a, b

            def in_needed(self, lo, hi):
                return lo, hi

            def out_total(self, total_in):
                return total_in

            def apply(self, data, ctx):
                return data

        with pytest.raises(ConfigError, match="tile|covers"):
            verify_geometry(BadCore(), 100)

    def test_bad_containment_rejected(self):
        class Starved(Operator):
            name = "starved"
            halo = (0, 0)

            def in_needed(self, lo, hi):
                return lo + 1, hi  # reads one sample too few

            def apply(self, data, ctx):
                return data

        with pytest.raises(ConfigError, match="containment"):
            verify_geometry(Starved(), 100, chunk_sizes=[10])


# ---------------------------------------------------------------------------
# rewrite rules
# ---------------------------------------------------------------------------


class TestRewrites:
    def test_pushdown_composes_selects_and_steps(self, noise):
        q = (
            Query.scan(noise)
            .select_channels(2, 14)
            .decimate(2)
            .select_channels(1, 9)
            .decimate(3)
            .then(StaLtaOp(4, 16))
        )
        plan = optimize(q)
        assert plan.select == (3, 11)
        assert plan.step == 6
        assert plan.pushed_ops == 4
        assert [op.name for op in plan.branches[0].maps] == ["sta_lta"]

    def test_pushdown_stops_at_first_opaque_op(self, noise):
        q = (
            Query.scan(noise)
            .decimate(2)
            .then(StaLtaOp(4, 16))
            .select_channels(0, 4)  # behind sta_lta: not pushable
        )
        plan = optimize(q)
        assert plan.step == 2
        assert plan.select is None
        names = [op.name for op in plan.branches[0].maps]
        assert names == ["sta_lta", "select[0:4]"]

    def test_fusion_groups_default_algebra_runs(self):
        b, a = _band(0.5, 10.0, 100.0)
        ops = [DetrendOp(), TaperOp(0.05), FiltFiltOp(b, a), StaLtaOp(4, 16)]
        fused = fuse_operators(ops)
        # detrend needs a prepass, so the fusable run is taper+filtfilt+sta_lta
        assert [type(o) for o in fused] == [DetrendOp, FusedOp]
        assert fused[1].name == "fused(taper+filtfilt+sta_lta)"
        assert fused[1].halo == (
            sum(o.halo[0] for o in ops[1:]),
            sum(o.halo[1] for o in ops[1:]),
        )

    def test_custom_grid_operator_never_fused(self):
        cfg = LocalSimilarityConfig(half_window=10, half_lag=3, stride=25)
        ops = [TaperOp(0.05), LocalSimilarityOp(cfg)]
        fused = fuse_operators(ops)
        assert [type(o) for o in fused] == [TaperOp, LocalSimilarityOp]

    def test_queries_must_share_scan(self, noise):
        q1 = Query.scan(noise).then(StaLtaOp(4, 16))
        q2 = Query.scan(noise).then(StaLtaOp(4, 16))
        with pytest.raises(ConfigError, match="same scan"):
            optimize([q1, q2])

    def test_explain_shows_before_and_after(self, noise):
        b, a = _band(0.5, 10.0, 100.0)
        base = Query.scan(noise).select_channels(0, 8).then(FiltFiltOp(b, a))
        q1 = base.then(StaLtaOp(4, 16)).with_label("trig")
        q2 = base.then(SubsampleOp(4)).with_label("thin")
        text = explain(optimize([q1, q2]))
        assert "== logical plan" in text and "== physical plan" in text
        assert "SlicedSource" in text and "pushdown" in text
        assert "branch trig" in text and "branch thin" in text
        assert "cse:" in text

    def test_chunk_rounded_to_step_multiple(self, noise):
        q = Query.scan(noise).decimate(8).then(StaLtaOp(4, 16))
        plan = optimize(q, chunk_samples=1001)  # rounds up to 1008
        opt = execute(plan)[0]
        ref = execute(plan, naive=True)[0]
        np.testing.assert_array_equal(opt.output, ref.output)
        legacy = _legacy(q, noise, 1008).output
        np.testing.assert_array_equal(ref.output, legacy)


# ---------------------------------------------------------------------------
# the bit-exactness contract
# ---------------------------------------------------------------------------


class TestBitExactness:
    """Optimized == naive == legacy eager, byte for byte."""

    @pytest.mark.parametrize("chunk", [4800, 1700, 640, 480])
    @pytest.mark.parametrize("step", [1, 2, 8])
    def test_sta_lta_chain(self, noise, chunk, step):
        chunk = _round_chunk(chunk, step)
        b, a = _band(0.1, 0.4, 1.0)
        q = (
            Query.scan(noise)
            .select_channels(3, 13)
            .decimate(step)
            .then(FiltFiltOp(b, a))
            .then(StaLtaOp(4, 16))
        )
        plan = optimize(q, chunk_samples=chunk)
        opt = execute(plan)[0].output
        naive = execute(plan, naive=True)[0].output
        legacy = _legacy(q, noise, chunk).output
        np.testing.assert_array_equal(opt, naive)
        np.testing.assert_array_equal(naive, legacy)

    @pytest.mark.parametrize("chunk", [4800, 1100])
    def test_local_similarity_chain(self, noise, chunk):
        chunk = _round_chunk(chunk, 2)
        cfg = LocalSimilarityConfig(half_window=10, half_lag=3, stride=25)
        q = (
            Query.scan(noise)
            .decimate(2)
            .then(TaperOp(0.05))
            .then(LocalSimilarityOp(cfg))
        )
        plan = optimize(q, chunk_samples=chunk)
        opt = execute(plan)[0].output
        legacy = _legacy(q, noise, chunk).output
        np.testing.assert_array_equal(opt, legacy)

    @pytest.mark.parametrize("chunk", [4800, 900])
    def test_interferometry_chain(self, noise, chunk):
        from repro.core.interferometry import (
            interferometry_operators,
            master_spectrum,
        )

        chunk = _round_chunk(chunk, 2)
        cfg = InterferometryConfig(fs=50.0, band=(0.5, 10.0), resample_q=2)

        def build():
            master = noise[:1, ::2].astype(np.float64)
            mfft = master_spectrum(master, cfg)
            q = Query.scan(noise, fs=100.0).decimate(2)
            for op in interferometry_operators(cfg, master_fft=mfft):
                q = q.then(op)
            return q

        plan = optimize(build(), chunk_samples=chunk)
        opt = execute(plan)[0].output
        legacy = _legacy(build(), noise, chunk, fs=100.0).output
        np.testing.assert_array_equal(opt, legacy)

    @pytest.mark.parametrize("chunk", [4800, 1300])
    def test_ncf_stacking_chain(self, noise, chunk):
        from repro.core.stacking import NCFStackSink

        chunk = _round_chunk(chunk, 2)
        cfg = InterferometryConfig(fs=50.0, band=(0.5, 10.0), resample_q=2)

        def build():
            sink = NCFStackSink(cfg, window_seconds=20.0)
            return Query.scan(noise, fs=100.0).decimate(2).then(sink)

        plan = optimize(build(), chunk_samples=chunk)
        lags_o, st_o = execute(plan)[0].output
        lags_l, st_l = _legacy(build(), noise, chunk, fs=100.0).output
        np.testing.assert_array_equal(lags_o, lags_l)
        np.testing.assert_array_equal(st_o, st_l)

    def test_multi_branch_shared_prefix(self, noise):
        b, a = _band(0.1, 0.4, 1.0)
        base = Query.scan(noise).select_channels(1, 15).then(FiltFiltOp(b, a))
        cfg = LocalSimilarityConfig(half_window=10, half_lag=3, stride=25)
        q1 = base.then(StaLtaOp(4, 16)).with_label("trig")
        q2 = base.then(LocalSimilarityOp(cfg)).with_label("simi")
        plan = optimize([q1, q2], chunk_samples=900)
        opt = execute(plan)
        naive = execute(plan, naive=True)
        for o, n in zip(opt, naive):
            np.testing.assert_array_equal(o.output, n.output)
        assert getattr(opt[0].profile, "cse_hits", 0) > 0
        assert getattr(naive[0].profile, "cse_hits", 1) == 0

    def test_single_chunk_detrend_whole_record(self, noise):
        """n_chunks == 1 skips the pre-pass; every operator sees
        ctx.whole — the materialised semantics must survive pushdown."""
        q = Query.scan(noise).decimate(2).then(DetrendOp())
        plan = optimize(q, chunk_samples=noise.shape[1])
        opt = execute(plan)[0].output
        legacy = _legacy(q, noise, noise.shape[1]).output
        np.testing.assert_array_equal(opt, legacy)

    def test_threaded_naive_channel_select(self, noise):
        """Eager ChannelSelectOp under threading exercises the per-level
        row-offset plumbing in the chain runner."""
        q = Query.scan(noise).select_channels(2, 14).then(StaLtaOp(4, 16))
        plan = optimize(q, chunk_samples=1100, threads=4)
        opt = execute(plan)[0].output
        naive = execute(plan, naive=True)[0].output
        legacy = _legacy(q, noise, 1100, threads=4).output
        np.testing.assert_array_equal(opt, naive)
        np.testing.assert_array_equal(naive, legacy)


class TestHypothesisEquivalence:
    """Property sweep: the contract holds for arbitrary chunk/stride/
    selection geometry, including ragged final chunks and chunks smaller
    than the composed halo."""

    @settings(max_examples=40, deadline=None)
    @given(
        chunk=st.integers(min_value=37, max_value=2600),
        step=st.sampled_from([1, 2, 3, 4, 8]),
        lo=st.integers(min_value=0, max_value=6),
        width=st.integers(min_value=3, max_value=10),
        total=st.integers(min_value=700, max_value=2400),
    )
    def test_sta_lta_sweep(self, chunk, step, lo, width, total):
        chunk = _round_chunk(chunk, step)
        rng = np.random.default_rng(chunk * 1009 + total)
        data = rng.normal(size=(16, total))
        q = (
            Query.scan(data)
            .select_channels(lo, lo + width)
            .decimate(step)
            .then(StaLtaOp(3, 11))
        )
        plan = optimize(q, chunk_samples=chunk)
        opt = execute(plan)[0].output
        legacy = _legacy(q, data, chunk).output
        np.testing.assert_array_equal(opt, legacy)

    @settings(max_examples=15, deadline=None)
    @given(
        chunk=st.integers(min_value=150, max_value=2600),
        step=st.sampled_from([1, 2, 4]),
    )
    def test_filtered_similarity_sweep(self, chunk, step):
        chunk = _round_chunk(chunk, step)
        rng = np.random.default_rng(chunk * 7 + step)
        data = rng.normal(size=(12, 2400))
        b, a = _band(0.1, 0.4, 1.0)
        cfg = LocalSimilarityConfig(half_window=8, half_lag=2, stride=20)
        q = (
            Query.scan(data)
            .decimate(step)
            .then(FiltFiltOp(b, a))
            .then(LocalSimilarityOp(cfg))
        )
        plan = optimize(q, chunk_samples=chunk)
        opt = execute(plan)[0].output
        legacy = _legacy(q, data, chunk).output
        np.testing.assert_array_equal(opt, legacy)


# ---------------------------------------------------------------------------
# storage: pushdown must strictly reduce backend bytes
# ---------------------------------------------------------------------------


class TestPushdownBytes:
    """Backend byte accounting needs *non-checksummed* source files:
    CRC-verified reads are served at whole-block granularity, which wipes
    out stride savings on files smaller than one block (the ``das_dir``
    conftest fixture is unchecksummed; ``vca_setup`` is not)."""

    def _backend_bytes(self, vca, query):
        stats = IOStats()
        with open_stream(vca, iostats=stats) as src:
            plan = optimize(query, chunk_samples=240)
            out = execute(plan, source=src, iostats=stats)[0]
        return out.output, stats.full_snapshot()["bytes_read"]

    def test_decimation_reads_fewer_backend_bytes(self, das_dir, tmp_path):
        vca = create_vca(str(tmp_path / "b.h5"), das_dir["paths"])
        q_full = Query.scan(None).then(StaLtaOp(3, 11))
        q_thin = Query.scan(None).decimate(8).then(StaLtaOp(3, 11))
        _, full_bytes = self._backend_bytes(vca, q_full)
        thin_out, thin_bytes = self._backend_bytes(vca, q_thin)
        assert thin_bytes < full_bytes
        # and the strided read equals the eager subsample of the stream
        with open_stream(vca) as src:
            ref = _legacy(q_thin, src, 240).output
        np.testing.assert_array_equal(thin_out, ref)

    def test_channel_selection_reads_fewer_backend_bytes(self, das_dir, tmp_path):
        vca = create_vca(str(tmp_path / "b2.h5"), das_dir["paths"])
        _, full_bytes = self._backend_bytes(
            vca, Query.scan(None).then(StaLtaOp(3, 11))
        )
        sel_out, sel_bytes = self._backend_bytes(
            vca, Query.scan(None).select_channels(2, 6).then(StaLtaOp(3, 11))
        )
        assert sel_bytes < full_bytes
        assert sel_out.shape[0] == 4


# ---------------------------------------------------------------------------
# absolute coordinates under pushdown (degraded reads)
# ---------------------------------------------------------------------------

VICTIM = 2  # source file index; covers VCA samples [240, 360)
V0, V1 = 240, 360


class TestPushdownCoordinates:
    def test_masked_gap_stays_in_raw_coordinates(self, vca_setup):
        """A degraded read through an optimized (selected + decimated)
        plan reports its gap span in raw source coordinates, and the
        facade frame maps output columns back onto it."""
        from repro.core import DASSA

        FaultInjector(seed=13).inject("vanish", vca_setup["paths"][VICTIM])
        dassa = DASSA(threads=1, on_error="mask", chunk_samples=200)
        ap = dassa.plan(vca_setup["vca"], channels=(2, 12), decimate=4)
        ap.sta_lta(3, 11, label="trig")
        out = ap.run()["trig"]

        gaps = dassa.last_gaps
        assert gaps is not None and len(gaps.spans) > 0
        assert all(s.t0 >= V0 and s.t1 <= V1 for s in gaps.spans)

        frame = dassa.last_frame
        assert frame == CoordFrame(channel_lo=2, channel_hi=12, sample_step=4)
        # Output columns whose raw sample falls in the masked span are
        # NaN-poisoned; columns before its lookback cone are clean.
        raw_cols = frame.raw_sample(np.arange(out.shape[1]))
        in_gap = (raw_cols >= V0) & (raw_cols < V1)
        assert in_gap.any()
        assert np.isnan(out[:, in_gap]).all()
        before = raw_cols < V0 - (11 - 1) * 4  # outside the LTA lookback
        assert np.isfinite(out[:, before]).all()

    def test_optimized_matches_naive_through_masked_source(self, vca_setup):
        """Bit-exactness holds on degraded sources too: the optimized
        strided read masks exactly the samples the eager run masks."""
        FaultInjector(seed=13).inject("vanish", vca_setup["paths"][3])
        q = (
            Query.scan(None)
            .select_channels(1, 13)
            .decimate(2)
            .then(StaLtaOp(3, 11))
        )
        plan = optimize(q, chunk_samples=150)
        with open_stream(vca_setup["vca"], on_error="mask") as src:
            opt = execute(plan, source=src)[0].output
        with open_stream(vca_setup["vca"], on_error="mask") as src:
            naive = execute(plan, source=src, naive=True)[0].output
        np.testing.assert_array_equal(opt, naive)


# ---------------------------------------------------------------------------
# auto-tuning and incremental fusion
# ---------------------------------------------------------------------------


class TestTuning:
    def test_tune_stream_is_deterministic(self):
        from repro.cluster.machine import ClusterSpec, NodeSpec

        cluster = ClusterSpec(nodes=1, node=NodeSpec(cores=16))
        a = tune_stream(cluster, 500, 10_000_000, halo=(200, 200))
        b = tune_stream(cluster, 500, 10_000_000, halo=(200, 200))
        assert a == b
        assert a.chunk_samples >= 1 and a.threads >= 1

    def test_memory_bound_forces_smaller_chunks(self):
        from repro.cluster.machine import ClusterSpec, NodeSpec

        small = ClusterSpec(nodes=1, node=NodeSpec(cores=8, memory=256 * 2**20))
        t = tune_stream(small, 4000, 50_000_000)
        assert t.chunk_samples * 4000 * 8 <= small.node.memory * 0.25

    def test_tuned_plan_executes_and_notes(self, noise):
        from repro.cluster.presets import laptop

        q = Query.scan(noise).then(StaLtaOp(4, 16))
        plan = optimize(q, cluster=laptop(), tune=True)
        out = execute(plan)[0]
        assert out.output.shape == noise.shape
        assert any(n.startswith("tuned:") for n in plan.notes)


class TestIncrementalFusion:
    def test_plan_incremental_fuses_streamable_run(self):
        b, a = _band(0.1, 0.4, 1.0)
        ops = plan_incremental([FiltFiltOp(b, a), StaLtaOp(4, 16)])
        assert len(ops) == 1 and isinstance(ops[0], FusedOp)
        assert ops[0].stream_safe

    def test_fused_incremental_seam_equivalence(self, noise):
        """Identical push pattern through fused and unfused incremental
        runners: fusion must not move a single bit (bit-exactness only
        holds at identical chunk geometry — FiltFilt's halo is
        tolerance-bounded, not chunk-invariant)."""
        b, a = _band(0.1, 0.4, 1.0)
        ops = [FiltFiltOp(b, a), StaLtaOp(4, 16)]

        def run(chain):
            runner = StreamPipeline(chain).incremental(noise.shape[0], fs=0.0)
            pieces = []
            for lo in range(0, noise.shape[1], 700):
                for (_j0, _j1), block in runner.push(noise[:, lo : lo + 700]):
                    pieces.append(block)
            for (_j0, _j1), block in runner.flush():
                pieces.append(block)
            return np.concatenate(pieces, axis=-1)

        np.testing.assert_array_equal(run(plan_incremental(ops)), run(ops))
