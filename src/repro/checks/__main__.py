"""Entry point: ``python -m repro.checks``."""

import sys

from repro.checks.cli import main

if __name__ == "__main__":
    sys.exit(main())
