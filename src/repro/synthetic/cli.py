"""``das_generate`` — write a synthetic DAS dataset to disk.

Example::

    das_generate -o data/ -m 6 -n 256 --spm 3000
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.synthetic.generator import (
    drip_feed_dataset,
    fig1b_scene,
    generate_dataset,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="das_generate", description="Generate synthetic per-minute DAS files."
    )
    parser.add_argument("-o", "--output", required=True, help="output directory")
    parser.add_argument("-m", "--minutes", type=int, default=6)
    parser.add_argument("-n", "--channels", type=int, default=256)
    parser.add_argument(
        "--spm", type=int, default=None, help="samples per minute (default 60*fs)"
    )
    parser.add_argument("--fs", type=float, default=500.0, help="sampling rate (Hz)")
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--start", default="170620100545", help="timestamp of the first file"
    )
    parser.add_argument(
        "--channel-groups",
        action="store_true",
        help="write per-channel Measurement/<i> metadata groups",
    )
    parser.add_argument(
        "--codec",
        default=None,
        metavar="SPEC",
        help="per-chunk compression of DataCT, e.g. 'transpose-zlib', "
        "'delta-zlib' or 'quantize:1e-3' (default: raw)",
    )
    parser.add_argument(
        "--drip",
        type=float,
        default=None,
        metavar="SECONDS",
        help="drip-feed mode: atomically land one file every SECONDS "
        "(emulates a live acquisition for `python -m repro.rt watch`)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        scene = fig1b_scene(
            n_channels=args.channels,
            fs=args.fs,
            minutes=args.minutes,
            samples_per_minute=args.spm,
            seed=args.seed,
        )
        if args.drip is not None:
            for path in drip_feed_dataset(
                args.output,
                args.minutes,
                scene=scene,
                samples_per_minute=args.spm,
                start_timestamp=args.start,
                channel_groups=args.channel_groups,
                interval_seconds=args.drip,
                codec=args.codec,
            ):
                print(path, flush=True)
        else:
            paths = generate_dataset(
                args.output,
                args.minutes,
                scene=scene,
                samples_per_minute=args.spm,
                start_timestamp=args.start,
                channel_groups=args.channel_groups,
                codec=args.codec,
            )
            for path in paths:
                print(path)
    except ReproError as exc:
        print(f"das_generate: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
