"""Tests for per-chunk CRC32 checksum sidecars: creation, verified reads
on every layout/path, corruption detection, and sidecar maintenance
under partial writes."""

import numpy as np
import pytest

from repro.errors import CorruptDataError, FormatError
from repro.faults.inject import FaultInjector
from repro.hdf5lite import BlockCache, File, FilePool, add_checksums, checksum_info
from repro.hdf5lite.checksum import (
    CRC_ATTR,
    DEFAULT_CHECKSUM_BLOCK,
    checksum_dataset,
    verify_dataset,
)
from repro.hdf5lite.inspect import verify


def _write(path, data, checksum=True, chunks=None, block=None):
    with File(str(path), "w") as f:
        f.create_dataset(
            "d", data=data, chunks=chunks, checksum=checksum,
            checksum_block=block,
        )
    return str(path)


class TestSidecarCreation:
    def test_contiguous_sidecar_written(self, tmp_path):
        data = np.arange(1000, dtype=np.float64).reshape(10, 100)
        path = _write(tmp_path / "c.h5", data, block=512)
        with File(path, "r") as f:
            ds = f.dataset("d")
            info = checksum_info(ds)
            assert info is not None and not info.chunked
            assert info.block_size == 512
            assert len(info.crcs) >= 1
            assert np.array_equal(ds.read(), data)

    def test_chunked_sidecar_written(self, tmp_path):
        data = np.arange(600, dtype=np.float32).reshape(6, 100)
        path = _write(tmp_path / "k.h5", data, chunks=(3, 40))
        with File(path, "r") as f:
            info = checksum_info(f.dataset("d"))
            assert info is not None and info.chunked
            assert len(info.chunk_crcs) == 2 * 3
            assert np.array_equal(f.dataset("d").read(), data)

    def test_no_checksum_by_default(self, tmp_path):
        path = _write(tmp_path / "n.h5", np.zeros(8), checksum=False)
        with File(path, "r") as f:
            assert checksum_info(f.dataset("d")) is None
            assert CRC_ATTR not in f.dataset("d").attrs

    def test_add_checksums_retrofits_a_file(self, tmp_path):
        path = _write(tmp_path / "r.h5", np.arange(64.0), checksum=False)
        with File(path, "r+") as f:
            added = add_checksums(f)
            assert added == 1
        with File(path, "r") as f:
            assert checksum_info(f.dataset("d")) is not None


class TestCorruptionDetection:
    def _flipped(self, tmp_path, **kwargs):
        data = np.random.default_rng(5).normal(size=(8, 256))
        path = _write(tmp_path / "f.h5", data, **kwargs)
        FaultInjector(seed=1).bit_flip(path)
        return path, data

    def test_uncached_read_raises_corrupt(self, tmp_path):
        path, _ = self._flipped(tmp_path)
        with pytest.raises(CorruptDataError) as err:
            with File(path, "r") as f:
                f.dataset("d").read()
        assert path in str(err.value)
        assert "crc32" in str(err.value).lower()

    def test_cached_read_raises_corrupt(self, tmp_path):
        path, _ = self._flipped(tmp_path)
        with FilePool(cache=BlockCache()) as pool:
            with pytest.raises(CorruptDataError):
                pool.acquire(path).dataset("d").read()

    def test_chunked_read_raises_corrupt(self, tmp_path):
        path, _ = self._flipped(tmp_path, chunks=(4, 64))
        with pytest.raises(CorruptDataError):
            with File(path, "r") as f:
                f.dataset("d").read()

    def test_verify_checksums_off_reads_silently(self, tmp_path):
        path, data = self._flipped(tmp_path)
        with File(path, "r", verify_checksums=False) as f:
            wrong = f.dataset("d").read()
        assert wrong.shape == data.shape
        assert not np.array_equal(wrong, data)

    def test_partial_read_of_clean_region_ok(self, tmp_path):
        # Corrupt only the tail block; reads confined to clean leading
        # blocks still verify and succeed.
        data = np.arange(1 << 16, dtype=np.float64)
        path = _write(tmp_path / "p.h5", data, block=4096)
        size = data.nbytes
        import os

        with open(path, "r+b") as fh:
            fh.seek(32 + size - 8)
            fh.write(b"\xff" * 8)
        with File(path, "r") as f:
            head = f.dataset("d")[: 4096 // 8]
            assert np.array_equal(head, data[: 4096 // 8])
            with pytest.raises(CorruptDataError):
                f.dataset("d").read()

    def test_verify_dataset_lists_without_raising(self, tmp_path):
        path, _ = self._flipped(tmp_path)
        with File(path, "r") as f:
            problems = verify_dataset(f.dataset("d"))
        assert problems
        offset, message = problems[0]
        assert isinstance(offset, int) and "crc" in message.lower()

    def test_inspect_verify_reports_crc_mismatch(self, tmp_path):
        path, _ = self._flipped(tmp_path)
        with File(path, "r", verify_checksums=False) as f:
            problems = verify(f)
        assert any("crc" in p.message.lower() for p in problems)

    def test_clean_file_verifies_clean(self, tmp_path):
        path = _write(tmp_path / "ok.h5", np.arange(512.0))
        with File(path, "r") as f:
            assert verify(f) == []


class TestSidecarMaintenance:
    def test_write_hyperslab_updates_crcs(self, tmp_path):
        data = np.zeros((4, 1024))
        path = _write(tmp_path / "w.h5", data, block=2048)
        with File(path, "r+") as f:
            ds = f.dataset("d")
            ds[1:3, 100:200] = 7.5
            expected = data.copy()
            expected[1:3, 100:200] = 7.5
        with File(path, "r") as f:
            assert np.array_equal(f.dataset("d").read(), expected)
            assert verify_dataset(f.dataset("d")) == []

    def test_default_block_size(self, tmp_path):
        path = _write(tmp_path / "b.h5", np.zeros(64))
        with File(path, "r") as f:
            assert checksum_info(f.dataset("d")).block_size == DEFAULT_CHECKSUM_BLOCK

    def test_bad_sidecar_is_format_error(self, tmp_path):
        from repro.hdf5lite.checksum import CRC_BLOCK_ATTR

        path = _write(tmp_path / "bad.h5", np.zeros(64))
        with File(path, "r+") as f:
            # Claim a chunked sidecar (block 0) without the key list.
            f.dataset("d").attrs[CRC_BLOCK_ATTR] = 0
        with File(path, "r") as f:
            with pytest.raises(FormatError):
                checksum_info(f.dataset("d"))

    def test_stale_sidecar_length_reported(self, tmp_path):
        path = _write(tmp_path / "stale.h5", np.zeros(64))
        with File(path, "r+") as f:
            f.dataset("d").attrs[CRC_ATTR] = [1, 2, 3, 4, 5]
        with File(path, "r") as f:
            problems = verify_dataset(f.dataset("d"))
        assert problems and "expected" in problems[0][1]

    def test_virtual_dataset_skips_checksum(self, tmp_path):
        # checksum_dataset declines virtual layouts (sources carry their
        # own sidecars); no sidecar is written.
        src = _write(tmp_path / "s.h5", np.ones((2, 8)))
        from repro.hdf5lite.dataset import VirtualSource

        vpath = str(tmp_path / "v.h5")
        with File(vpath, "w") as f:
            ds = f.create_dataset(
                "v",
                shape=(2, 8),
                dtype=np.float64,
                virtual_sources=[
                    VirtualSource(
                        file=src, dataset="/d", src_start=(0, 0),
                        dst_start=(0, 0), count=(2, 8),
                    )
                ],
            )
            assert checksum_dataset(ds) is False
        with File(vpath, "r") as f:
            assert checksum_info(f.dataset("v")) is None
