#!/usr/bin/env python
"""Scaling study: the paper's Fig. 8 and Fig. 11 experiments, evaluated
against the Cori machine model.

Prints (a) pure-MPI ArrayUDF vs the Hybrid engine at 91-728 nodes over
the 1.9 TB workload, including the 91-node OOM; (b) strong/weak-scaling
parallel efficiency at 91-1456 nodes.

Run:  python examples/scaling_study.py
"""

from repro.arrayudf.engine import HybridEngine, MPIEngine, WorkloadSpec
from repro.cluster import cori_haswell

WORKLOAD = WorkloadSpec(
    total_bytes=int(1.9 * 2**40),
    n_files=2880,
    master_bytes=30000 * 1440 * 2 * 8,
)


def fig8() -> None:
    print("=== Fig. 8: MPI ArrayUDF (16 ranks/node) vs HAEE (16 threads/node) ===")
    header = f"{'nodes':>6} {'engine':<16} {'read(s)':>9} {'compute(s)':>11} {'write(s)':>9} {'total(s)':>9}"
    print(header)
    for nodes in (91, 182, 364, 728):
        cluster = cori_haswell(nodes)
        for engine in (
            MPIEngine(cluster, nodes, ranks_per_node=16),
            HybridEngine(cluster, nodes, threads_per_rank=16),
        ):
            report = engine.estimate(WORKLOAD)
            if report.failed:
                print(f"{nodes:>6} {engine.name:<16} {'-- ' + report.failed}")
            else:
                print(
                    f"{nodes:>6} {engine.name:<16} {report.read_time:>9.1f} "
                    f"{report.compute_time:>11.1f} {report.write_time:>9.1f} "
                    f"{report.total_time:>9.1f}"
                )
    print()


def fig11() -> None:
    print("=== Fig. 11: strong & weak scaling, 8 threads/node ===")
    nodes_list = (91, 182, 364, 728, 1456)

    def efficiency(report0, n0, report, n, strong: bool) -> tuple[float, float]:
        if strong:
            compute = report0.compute_time / (report.compute_time * (n / n0))
            io = (report0.read_time + report0.write_time) / (
                (report.read_time + report.write_time) * (n / n0)
            )
        else:
            compute = report0.compute_time / report.compute_time
            io = (report0.read_time + report0.write_time) / (
                report.read_time + report.write_time
            )
        return compute * 100, io * 100

    for strong in (True, False):
        label = "strong (1.9 TB fixed)" if strong else "weak (171 MB/core)"
        print(f"-- {label}")
        print(f"{'nodes':>6} {'compute eff %':>14} {'I/O eff %':>11}")
        base = None
        for nodes in nodes_list:
            cluster = cori_haswell(nodes)
            engine = HybridEngine(cluster, nodes, threads_per_rank=8)
            if strong:
                workload = WORKLOAD
            else:
                per_core = 171 * 2**20
                workload = WorkloadSpec(
                    total_bytes=per_core * nodes * 8,
                    n_files=max(1, per_core * nodes * 8 // (700 * 2**20)),
                    master_bytes=WORKLOAD.master_bytes,
                )
            report = engine.estimate(workload)
            if base is None:
                base = (report, nodes)
                print(f"{nodes:>6} {'100.0':>14} {'100.0':>11}")
            else:
                comp, io = efficiency(base[0], base[1], report, nodes, strong)
                print(f"{nodes:>6} {comp:>14.1f} {io:>11.1f}")
        print()


if __name__ == "__main__":
    fig8()
    fig11()
