"""Tests for repro.utils.iostats."""

import threading

from repro.utils.iostats import IOStats


class TestIOStats:
    def test_initial_state(self):
        s = IOStats()
        assert s.opens == 0
        assert s.requests == 0
        assert s.bytes_read == 0

    def test_record_read(self):
        s = IOStats()
        s.record_read(100)
        s.record_read(50)
        assert s.reads == 2
        assert s.bytes_read == 150

    def test_record_write(self):
        s = IOStats()
        s.record_write(64)
        assert s.writes == 1
        assert s.bytes_written == 64

    def test_requests_is_reads_plus_writes(self):
        s = IOStats()
        s.record_read(1)
        s.record_write(1)
        s.record_write(1)
        assert s.requests == 3

    def test_open_close_seek(self):
        s = IOStats()
        s.record_open()
        s.record_seek()
        s.record_close()
        assert (s.opens, s.seeks, s.closes) == (1, 1, 1)

    def test_merge(self):
        a = IOStats()
        a.record_read(10)
        b = IOStats()
        b.record_read(5)
        b.record_open()
        a.merge(b)
        assert a.reads == 2
        assert a.bytes_read == 15
        assert a.opens == 1

    def test_reset(self):
        s = IOStats()
        s.record_read(10)
        s.record_open()
        s.reset()
        assert s.snapshot() == {
            "opens": 0,
            "closes": 0,
            "seeks": 0,
            "reads": 0,
            "writes": 0,
            "bytes_read": 0,
            "bytes_written": 0,
        }

    def test_snapshot_keys(self):
        snap = IOStats().snapshot()
        assert set(snap) == {
            "opens",
            "closes",
            "seeks",
            "reads",
            "writes",
            "bytes_read",
            "bytes_written",
        }

    def test_thread_safety(self):
        s = IOStats()
        n = 200

        def worker():
            for _ in range(n):
                s.record_read(1)
                s.record_write(2)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.reads == 8 * n
        assert s.writes == 8 * n
        assert s.bytes_read == 8 * n
        assert s.bytes_written == 16 * n


class TestCacheCounters:
    def test_record_cache_and_pool_counters(self):
        s = IOStats()
        s.record_cache_hit()
        s.record_cache_hit()
        s.record_cache_miss()
        s.record_cache_eviction()
        s.record_cache_eviction(3)
        s.record_pool_hit()
        s.record_pool_miss()
        assert s.cache_snapshot() == {
            "cache_hits": 2,
            "cache_misses": 1,
            "cache_evictions": 4,
            "pool_hits": 1,
            "pool_misses": 1,
        }

    def test_snapshot_keeps_seven_key_shape(self):
        """The historical backend-only snapshot must not grow keys — model
        code and experiment scripts compare these dicts directly."""
        s = IOStats()
        s.record_cache_hit()
        assert set(s.snapshot()) == {
            "opens",
            "closes",
            "seeks",
            "reads",
            "writes",
            "bytes_read",
            "bytes_written",
        }

    def test_full_snapshot_is_union(self):
        s = IOStats()
        s.record_read(4)
        s.record_cache_miss()
        full = s.full_snapshot()
        assert full["reads"] == 1
        assert full["cache_misses"] == 1
        assert set(full) == set(s.snapshot()) | set(s.cache_snapshot())

    def test_merge_and_reset_cover_cache_counters(self):
        a = IOStats()
        b = IOStats()
        b.record_cache_hit()
        b.record_pool_miss()
        a.merge(b)
        assert a.cache_hits == 1
        assert a.pool_misses == 1
        a.reset()
        assert a.full_snapshot() == IOStats().full_snapshot()


class TestConcurrentMerge:
    def test_merge_while_source_mutates_never_tears(self):
        """Regression: merge() used to read the source's counters without
        its lock, so a merge racing a record_read() could observe `reads`
        incremented but not `bytes_read` (a torn read).  Merging from a
        consistent snapshot makes reads/bytes_read move in lockstep: with
        every read recording exactly 2 bytes, any observed pair must
        satisfy bytes == 2 * count."""
        src = IOStats()
        stop = threading.Event()

        def mutate():
            while not stop.is_set():
                src.record_read(2)

        t = threading.Thread(target=mutate)
        t.start()
        try:
            for _ in range(300):
                dst = IOStats()
                dst.merge(src)
                assert dst.bytes_read == 2 * dst.reads, (
                    f"torn merge: reads={dst.reads} bytes_read={dst.bytes_read}"
                )
        finally:
            stop.set()
            t.join()

    def test_concurrent_merges_and_records_accumulate_exactly(self):
        """Stress: writers record into per-thread stats while a merger
        repeatedly folds them into a total; the final fold must account
        for every operation exactly once."""
        n_threads, n_ops = 6, 400
        sources = [IOStats() for _ in range(n_threads)]
        total = IOStats()

        def writer(s):
            for _ in range(n_ops):
                s.record_read(3)
                s.record_open()

        def merger():
            # Merges of in-flight sources into a throwaway accumulator:
            # exercises lock interleaving without double counting `total`.
            for _ in range(50):
                scratch = IOStats()
                for s in sources:
                    scratch.merge(s)
                assert scratch.bytes_read == 3 * scratch.reads

        threads = [threading.Thread(target=writer, args=(s,)) for s in sources]
        threads.append(threading.Thread(target=merger))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for s in sources:
            total.merge(s)
        assert total.reads == n_threads * n_ops
        assert total.bytes_read == 3 * n_threads * n_ops
        assert total.opens == n_threads * n_ops

    def test_merge_both_directions_no_deadlock(self):
        """a.merge(b) concurrent with b.merge(a) must not deadlock (the
        snapshot-based merge never holds both locks at once)."""
        a = IOStats()
        b = IOStats()
        a.record_read(1)
        b.record_write(1)
        done = []

        def ab():
            for _ in range(200):
                a.merge(b)
            done.append("ab")

        def ba():
            for _ in range(200):
                b.merge(a)
            done.append("ba")

        t1, t2 = threading.Thread(target=ab), threading.Thread(target=ba)
        t1.start()
        t2.start()
        t1.join(timeout=30)
        t2.join(timeout=30)
        assert done.count("ab") == 1 and done.count("ba") == 1
