"""Tests for filter design and application (butter/lfilter/filtfilt),
cross-validated against scipy.signal."""

import numpy as np
import pytest
import scipy.signal as sps

from repro.daslib import butter, filtfilt, lfilter, lfilter_zi
from repro.daslib.butterworth import bilinear_zpk, buttap, zpk2tf


class TestButtap:
    def test_poles_on_unit_circle(self):
        _, p, k = buttap(5)
        np.testing.assert_allclose(np.abs(p), 1.0, atol=1e-12)
        assert k == 1.0

    def test_poles_left_half_plane(self):
        for order in (1, 2, 3, 7):
            _, p, _ = buttap(order)
            assert np.all(p.real < 1e-12)

    def test_matches_scipy(self):
        z, p, k = buttap(4)
        z_s, p_s, k_s = sps.buttap(4)
        np.testing.assert_allclose(sorted(p, key=lambda c: (c.real, c.imag)),
                                   sorted(p_s, key=lambda c: (c.real, c.imag)),
                                   atol=1e-12)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            buttap(0)


class TestButter:
    @pytest.mark.parametrize("order", [1, 2, 4, 6])
    @pytest.mark.parametrize("wn", [0.1, 0.35, 0.8])
    def test_lowpass_matches_scipy(self, order, wn):
        b, a = butter(order, wn, "low")
        b_s, a_s = sps.butter(order, wn, "low")
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        np.testing.assert_allclose(a, a_s, atol=1e-10)

    @pytest.mark.parametrize("order", [1, 3, 5])
    def test_highpass_matches_scipy(self, order):
        b, a = butter(order, 0.25, "high")
        b_s, a_s = sps.butter(order, 0.25, "high")
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        np.testing.assert_allclose(a, a_s, atol=1e-10)

    @pytest.mark.parametrize("band", [(0.1, 0.4), (0.05, 0.15)])
    def test_bandpass_matches_scipy(self, band):
        b, a = butter(3, band, "bandpass")
        b_s, a_s = sps.butter(3, band, "bandpass")
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        np.testing.assert_allclose(a, a_s, atol=1e-10)

    def test_bandstop_matches_scipy(self):
        b, a = butter(2, (0.2, 0.5), "bandstop")
        b_s, a_s = sps.butter(2, (0.2, 0.5), "bandstop")
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        np.testing.assert_allclose(a, a_s, atol=1e-10)

    def test_fs_argument(self):
        # 0.5-12 Hz bandpass at 500 Hz sampling (the interferometry band)
        b, a = butter(4, (0.5, 12.0), "bandpass", fs=500.0)
        b_s, a_s = sps.butter(4, (0.5, 12.0), "bandpass", fs=500.0)
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        np.testing.assert_allclose(a, a_s, atol=1e-10)

    def test_dc_gain_lowpass_unity(self):
        b, a = butter(4, 0.3, "low")
        assert np.sum(b) / np.sum(a) == pytest.approx(1.0)

    def test_nyquist_gain_highpass_unity(self):
        b, a = butter(4, 0.3, "high")
        alt = np.power(-1.0, np.arange(len(b)))
        assert abs(np.sum(b * alt) / np.sum(a * alt)) == pytest.approx(1.0)

    def test_invalid_cutoffs(self):
        with pytest.raises(ValueError):
            butter(2, 0.0)
        with pytest.raises(ValueError):
            butter(2, 1.5)
        with pytest.raises(ValueError):
            butter(2, (0.4, 0.2), "bandpass")
        with pytest.raises(ValueError):
            butter(2, 0.5, "nonsense")
        with pytest.raises(ValueError):
            butter(2, (0.1, 0.2), "low")

    def test_bilinear_preserves_stability(self):
        _, p, k = buttap(6)
        z, p_d, _ = bilinear_zpk(np.zeros(0, dtype=complex), p, k, 2.0)
        assert np.all(np.abs(p_d) < 1.0)

    def test_zpk2tf_real_output(self):
        z, p, k = buttap(3)
        b, a = zpk2tf(z, p, k)
        assert b.dtype == np.float64
        assert a.dtype == np.float64


class TestLfilter:
    def test_fir_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        b = [0.25, 0.5, 0.25]
        got = lfilter(b, [1.0], x, engine="numpy")
        np.testing.assert_allclose(got, sps.lfilter(b, [1.0], x), atol=1e-12)

    def test_iir_matches_scipy(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=300)
        b, a = sps.butter(4, 0.2)
        got = lfilter(b, a, x, engine="numpy")
        np.testing.assert_allclose(got, sps.lfilter(b, a, x), atol=1e-10)

    def test_2d_axis_handling(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(5, 120))
        b, a = sps.butter(3, 0.3)
        got = lfilter(b, a, x, axis=-1, engine="numpy")
        np.testing.assert_allclose(got, sps.lfilter(b, a, x, axis=-1), atol=1e-10)
        got0 = lfilter(b, a, x.T, axis=0, engine="numpy")
        np.testing.assert_allclose(got0, sps.lfilter(b, a, x.T, axis=0), atol=1e-10)

    def test_zi_streaming_equivalence(self):
        """Filtering a stream in two blocks with carried state equals
        filtering it whole."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=400)
        b, a = sps.butter(2, 0.15)
        zi0 = np.zeros(max(len(a), len(b)) - 1)
        y1, zf = lfilter(b, a, x[:250], zi=zi0, engine="numpy")
        y2, _ = lfilter(b, a, x[250:], zi=zf, engine="numpy")
        whole = lfilter(b, a, x, engine="numpy")
        np.testing.assert_allclose(np.concatenate([y1, y2]), whole, atol=1e-12)

    def test_engines_agree(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(3, 257))
        b, a = sps.butter(5, 0.4)
        np.testing.assert_allclose(
            lfilter(b, a, x, engine="numpy"),
            lfilter(b, a, x, engine="scipy"),
            atol=1e-10,
        )

    def test_pure_gain(self):
        x = np.arange(10.0)
        np.testing.assert_allclose(lfilter([2.0], [1.0], x, engine="numpy"), 2 * x)

    def test_a0_scaling(self):
        x = np.arange(10.0)
        np.testing.assert_allclose(
            lfilter([2.0], [2.0], x, engine="numpy"), x, atol=1e-14
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            lfilter([1.0], [0.0], np.zeros(4))
        with pytest.raises(ValueError):
            lfilter([1.0], [1.0], np.zeros(4), engine="cuda")


class TestLfilterZi:
    @pytest.mark.parametrize("order,wn", [(2, 0.2), (4, 0.1), (5, 0.6)])
    def test_matches_scipy(self, order, wn):
        b, a = sps.butter(order, wn)
        np.testing.assert_allclose(lfilter_zi(b, a), sps.lfilter_zi(b, a), atol=1e-9)

    def test_step_response_steady_from_first_sample(self):
        b, a = sps.butter(3, 0.25)
        zi = lfilter_zi(b, a)
        y, _ = lfilter(b, a, np.ones(50), zi=zi, engine="numpy")
        np.testing.assert_allclose(y, 1.0, atol=1e-9)

    def test_fir_zi_shape(self):
        zi = lfilter_zi([0.5, 0.5], [1.0])
        assert zi.shape == (1,)


class TestFiltfilt:
    @pytest.mark.parametrize("order,wn", [(2, 0.2), (4, 0.3)])
    def test_matches_scipy(self, order, wn):
        rng = np.random.default_rng(5)
        x = rng.normal(size=500)
        b, a = sps.butter(order, wn)
        got = filtfilt(b, a, x, engine="numpy")
        expected = sps.filtfilt(b, a, x)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_2d_matches_scipy(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 300))
        b, a = sps.butter(3, (0.1, 0.4), "bandpass")
        got = filtfilt(b, a, x, axis=-1, engine="numpy")
        np.testing.assert_allclose(got, sps.filtfilt(b, a, x, axis=-1), atol=1e-8)

    def test_zero_phase_property(self):
        """A filtered sinusoid in the passband keeps its phase."""
        fs = 500.0
        t = np.arange(0, 4.0, 1 / fs)
        x = np.sin(2 * np.pi * 5.0 * t)
        b, a = butter(4, (1.0, 20.0), "bandpass", fs=fs)
        y = filtfilt(b, a, x)
        core = slice(200, -200)
        # Cross-correlation peak at zero lag => no phase shift.
        shift = np.argmax(np.correlate(y[core], x[core], "full")) - (len(x[core]) - 1)
        assert shift == 0

    def test_removes_out_of_band_energy(self):
        fs = 500.0
        t = np.arange(0, 4.0, 1 / fs)
        inband = np.sin(2 * np.pi * 5.0 * t)
        outband = np.sin(2 * np.pi * 60.0 * t)
        b, a = butter(4, (1.0, 12.0), "bandpass", fs=fs)
        y = filtfilt(b, a, inband + outband)
        core = slice(250, -250)
        residual = y[core] - inband[core]
        assert np.sqrt(np.mean(residual**2)) < 0.05

    def test_short_signal_rejected(self):
        b, a = butter(4, 0.2)
        with pytest.raises(ValueError):
            filtfilt(b, a, np.zeros(10))

    def test_padlen_zero(self):
        b, a = butter(2, 0.3)
        x = np.random.default_rng(7).normal(size=100)
        got = filtfilt(b, a, x, padlen=0, engine="numpy")
        np.testing.assert_allclose(got, sps.filtfilt(b, a, x, padlen=0), atol=1e-9)
