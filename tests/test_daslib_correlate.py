"""Tests for abscorr / xcorr and the MATLAB-style Das_* API."""

import numpy as np
import pytest

from repro.daslib import (
    Das_abscorr,
    Das_butter,
    Das_detrend,
    Das_fft,
    Das_filtfilt,
    Das_ifft,
    Das_interp1,
    Das_resample,
    abscorr,
    xcorr,
    xcorr_freq,
)


class TestAbscorr:
    def test_identical_is_one(self):
        x = np.random.default_rng(0).normal(size=100)
        assert abscorr(x, x) == pytest.approx(1.0)

    def test_negated_is_one(self):
        """|cos| makes polarity-flipped arrivals still match (DAS channels
        can record opposite strain signs)."""
        x = np.random.default_rng(1).normal(size=100)
        assert abscorr(x, -x) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        n = 256
        t = np.arange(n)
        a = np.sin(2 * np.pi * 4 * t / n)
        b = np.sin(2 * np.pi * 8 * t / n)
        assert abscorr(a, b) == pytest.approx(0.0, abs=1e-10)

    def test_range_zero_one(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b = rng.normal(size=(2, 50))
            value = abscorr(a, b)
            assert 0.0 <= value <= 1.0 + 1e-12

    def test_scale_invariant(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(2, 64))
        assert abscorr(a, b) == pytest.approx(abscorr(5 * a, 0.1 * b))

    def test_zero_window_returns_zero(self):
        assert abscorr(np.zeros(10), np.ones(10)) == 0.0

    def test_tiny_live_window_is_not_dead(self):
        """Regression: the dead-window gate used to compare the *product*
        of the two norms against the epsilon, so any window with norm
        between ~1e-290 and ~1e-150 (product underflows the threshold
        even though each norm clears it) was wrongly scored 0.0."""
        x = np.full(4, 1.63830412e-151)
        assert abscorr(x, x) == pytest.approx(1.0, abs=1e-9)

    def test_tiny_window_precision_survives_denormal_energy(self):
        """Windows whose squared energy lands in the denormal range must
        still score like their full-scale copies (peak rescaling)."""
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=(2, 64))
        assert abscorr(1e-160 * a, 1e-160 * b) == pytest.approx(abscorr(a, b))

    def test_complex_spectra(self):
        rng = np.random.default_rng(4)
        spec = rng.normal(size=32) + 1j * rng.normal(size=32)
        assert abscorr(spec, spec) == pytest.approx(1.0)
        assert abscorr(spec, 1j * spec) == pytest.approx(1.0)

    def test_batched_axis(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(8, 40))
        b = rng.normal(size=(8, 40))
        batch = abscorr(a, b, axis=-1)
        assert batch.shape == (8,)
        for i in range(8):
            assert batch[i] == pytest.approx(abscorr(a[i], b[i]))

    def test_matches_cos_theta_definition(self):
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=(2, 128))
        cos_theta = np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert abscorr(a, b) == pytest.approx(abs(cos_theta))


class TestXcorr:
    def test_peak_at_true_lag(self):
        rng = np.random.default_rng(7)
        sig = rng.normal(size=500)
        shift = 37
        delayed = np.roll(sig, shift)
        lags, cc = xcorr(delayed, sig)
        assert lags[np.argmax(cc)] == shift

    def test_normalized_autocorr_peak_is_one(self):
        x = np.random.default_rng(8).normal(size=300)
        lags, cc = xcorr(x, x)
        assert cc[lags == 0][0] == pytest.approx(1.0)
        assert np.max(cc) <= 1.0 + 1e-9

    def test_max_lag_trims(self):
        x = np.random.default_rng(9).normal(size=100)
        lags, cc = xcorr(x, x, max_lag=10)
        assert lags.min() == -10 and lags.max() == 10
        assert len(cc) == 21

    def test_matches_numpy_correlate(self):
        rng = np.random.default_rng(10)
        a = rng.normal(size=64)
        b = rng.normal(size=64)
        lags, cc = xcorr(a, b, normalize=False)
        expected = np.correlate(a, b, "full")[::-1]
        # numpy's "full" runs lag from -(len-1) on reversed convention;
        # compare by aligning zero lag.
        zero_np = len(a) - 1
        np.testing.assert_allclose(cc[lags == 0][0], expected[zero_np], atol=1e-9)
        np.testing.assert_allclose(
            cc[lags == 5][0], np.dot(a[5:], b[:-5]), atol=1e-9
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            xcorr(np.zeros((2, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            xcorr(np.zeros(4), np.zeros(4), max_lag=-1)

    def test_xcorr_freq_is_cross_spectrum(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=32) + 1j * rng.normal(size=32)
        b = rng.normal(size=32) + 1j * rng.normal(size=32)
        np.testing.assert_allclose(xcorr_freq(a, b), a * np.conj(b))


class TestMatlabStyleAPI:
    """The Table II surface: Das_* names behave like their implementations."""

    def test_das_abscorr(self):
        x = np.random.default_rng(12).normal(size=50)
        assert Das_abscorr(x, x) == pytest.approx(1.0)

    def test_das_detrend(self):
        t = np.arange(100.0)
        np.testing.assert_allclose(Das_detrend(2 * t + 3), 0.0, atol=1e-9)

    def test_das_butter_and_filtfilt(self):
        import scipy.signal as sps

        b, a = Das_butter(4, 0.25)
        b_s, a_s = sps.butter(4, 0.25)
        np.testing.assert_allclose(b, b_s, atol=1e-10)
        x = np.random.default_rng(13).normal(size=200)
        np.testing.assert_allclose(
            Das_filtfilt(b, a, x), sps.filtfilt(b_s, a_s, x), atol=1e-8
        )

    def test_das_resample(self):
        x = np.random.default_rng(14).normal(size=100)
        assert Das_resample(x, 1, 4).shape == (25,)

    def test_das_interp1(self):
        x0 = np.arange(4.0)
        assert Das_interp1(x0, 2 * x0, np.array([1.5]))[0] == pytest.approx(3.0)

    def test_das_fft_roundtrip(self):
        x = np.random.default_rng(15).normal(size=64)
        np.testing.assert_allclose(Das_ifft(Das_fft(x)).real, x, atol=1e-12)
