"""File inspection and integrity checking (an ``h5ls``/``h5check`` lite).

``describe`` renders a file's tree; ``verify`` walks every object and
checks the structural invariants a reader relies on — dataset extents
inside the data region, chunk indexes complete, virtual sources
resolvable, checksum sidecars matching the stored bytes — returning a
list of problems instead of raising, so operators can triage a damaged
acquisition directory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import FormatError
from repro.hdf5lite.binary import HEADER_SIZE
from repro.hdf5lite.checksum import _chunk_stored_nbytes, verify_dataset
from repro.hdf5lite.codecs import CODEC_ATTR, resolve_codec
from repro.hdf5lite.dataset import (
    LAYOUT_CHUNKED,
    LAYOUT_CONTIGUOUS,
    LAYOUT_VIRTUAL,
    Dataset,
)
from repro.hdf5lite.file import File, Group
from repro.hdf5lite.pyramid import FACTOR_ATTR, LEVEL_ATTR, is_pyramid_level, pyramid_problems


@dataclass(frozen=True)
class Problem:
    """One integrity finding."""

    path: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}: {self.message}"


def describe(file: File, attrs: bool = False) -> str:
    """A human-readable tree listing of a file."""
    lines = [f"{file.filename} (hdf5lite)"]

    def emit_attrs(obj, indent: str) -> None:
        if attrs:
            for key in sorted(obj.attrs):
                lines.append(f"{indent}@ {key} = {obj.attrs[key]!r}")

    def walk(group: Group, indent: str) -> None:
        emit_attrs(group, indent)
        for name in group.keys():
            child = group[name]
            if isinstance(child, Dataset):
                extra = ""
                if is_pyramid_level(child):
                    extra += (
                        f" pyramid[level={int(child.attrs[LEVEL_ATTR])}"
                        f" factor={int(child.attrs[FACTOR_ATTR])}]"
                    )
                if child.layout == LAYOUT_CHUNKED:
                    extra += f" chunks={child.chunks}"
                    spec = child.attrs.get(CODEC_ATTR)
                    if spec is not None:
                        try:
                            kind = (
                                "lossless"
                                if resolve_codec(spec).lossless
                                else "lossy"
                            )
                            extra += f" codec={spec} ({kind})"
                        except FormatError:
                            extra += f" codec={spec} (unresolvable)"
                elif child.layout == LAYOUT_VIRTUAL:
                    extra += f" sources={len(child.virtual_sources)}"
                lines.append(
                    f"{indent}{name}  dataset {child.shape} {child.dtype}"
                    f" [{child.layout}]{extra}"
                )
                emit_attrs(child, indent + "  ")
            else:
                lines.append(f"{indent}{name}/")
                walk(child, indent + "  ")

    walk(file, "  ")
    return "\n".join(lines)


def verify(file: File, check_sources: bool = True) -> list[Problem]:
    """Check a file's structural integrity; returns found problems."""
    problems: list[Problem] = []
    file_size = file._backend.size()
    data_end = file._data_end

    def check_dataset(ds: Dataset) -> None:
        layout = ds.layout
        nbytes = ds.nbytes
        if layout == LAYOUT_CONTIGUOUS:
            offset = int(ds._meta["offset"])
            if offset < HEADER_SIZE:
                problems.append(Problem(ds.path, "data overlaps the header"))
            if offset + nbytes > data_end or offset + nbytes > file_size:
                problems.append(
                    Problem(
                        ds.path,
                        f"extent [{offset}, {offset + nbytes}) exceeds the "
                        f"data region (ends at {min(data_end, file_size)})",
                    )
                )
        elif layout == LAYOUT_CHUNKED:
            chunks = ds.chunks
            assert chunks is not None
            grid = [
                (dim + c - 1) // c for dim, c in zip(ds.shape, chunks)
            ]
            expected = 1
            for g in grid:
                expected *= g
            index = ds._meta.get("chunk_index", {})
            if len(index) != expected:
                problems.append(
                    Problem(
                        ds.path,
                        f"chunk index has {len(index)} entries, expected {expected}",
                    )
                )
            enc_sizes = ds._meta.get("chunk_enc")
            spec = ds.attrs.get(CODEC_ATTR)
            if spec is not None:
                try:
                    resolve_codec(spec)
                except FormatError as exc:
                    problems.append(Problem(ds.path, f"bad codec: {exc}"))
                if enc_sizes is None:
                    problems.append(
                        Problem(ds.path, "codec dataset lacks a chunk_enc size map")
                    )
                else:
                    for key in index:
                        if key not in enc_sizes:
                            problems.append(
                                Problem(
                                    ds.path,
                                    f"chunk {key} missing from the chunk_enc size map",
                                )
                            )
            elif enc_sizes is not None:
                problems.append(
                    Problem(ds.path, "chunk_enc size map without a codec attribute")
                )
            for key, offset in index.items():
                if not (HEADER_SIZE <= int(offset) < data_end):
                    problems.append(
                        Problem(ds.path, f"chunk {key} offset {offset} out of range")
                    )
                    continue
                try:
                    stored = _chunk_stored_nbytes(ds, key)
                except FormatError:
                    continue
                if int(offset) + stored > min(data_end, file_size):
                    problems.append(
                        Problem(
                            ds.path,
                            f"chunk {key} extent [{offset}, {int(offset) + stored}) "
                            f"exceeds the data region",
                        )
                    )
        elif layout == LAYOUT_VIRTUAL:
            for source in ds.virtual_sources:
                if not check_sources:
                    continue
                path = source.file
                if not os.path.isabs(path):
                    path = os.path.join(os.path.dirname(file.filename), path)
                if not os.path.exists(path):
                    problems.append(
                        Problem(ds.path, f"missing source file {source.file!r}")
                    )
                    continue
                try:
                    with File(path, "r") as src:
                        src_ds = src.dataset(source.dataset)
                        for dim in range(source.ndim):
                            if (
                                source.src_start[dim] + source.count[dim]
                                > src_ds.shape[dim]
                            ):
                                problems.append(
                                    Problem(
                                        ds.path,
                                        f"source {source.file!r} region exceeds "
                                        f"its shape {src_ds.shape}",
                                    )
                                )
                                break
                except (FormatError, KeyError) as exc:
                    problems.append(
                        Problem(ds.path, f"unreadable source {source.file!r}: {exc}")
                    )
        else:
            problems.append(Problem(ds.path, f"unknown layout {layout!r}"))
        if layout in (LAYOUT_CONTIGUOUS, LAYOUT_CHUNKED):
            try:
                for _offset, message in verify_dataset(ds):
                    problems.append(Problem(ds.path, message))
            except FormatError as exc:
                problems.append(Problem(ds.path, f"bad checksum sidecar: {exc}"))

    def walk(group: Group) -> None:
        for name in group.keys():
            child = group[name]
            if isinstance(child, Dataset):
                check_dataset(child)
            else:
                walk(child)

    walk(file)
    for path, message in pyramid_problems(file):
        problems.append(Problem(path, message))
    return problems
