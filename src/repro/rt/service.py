"""The monitoring service: watcher → queue → seam scheduler → event log.

One :meth:`RTService.tick` is one poll of the spool plus processing of
everything queued: each complete file is read, pushed through the
incremental detector chain (carried state threading the halo across the
file seam), the emitted columns are assembled into events, and new
events are appended to the JSONL log and the storage catalog is
refreshed.  Failures never stop the loop — a file that cannot be read
is retried a bounded number of times and then quarantined with its
reason, and the service moves on to the next file.

A checkpoint is taken after every ``checkpoint_every`` processed files
(and on :meth:`close`); constructing the service over a spool with a
checkpoint resumes from it — the carried tail is re-read from the
processed files and digest-verified, the event sink dedups anything
that was finalised between the checkpoint and the kill, so the resumed
log equals an uninterrupted run's.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import CheckpointCorruptError, ConfigError, ReproError
from repro.rt.checkpoint import CHECKPOINT_NAME, CheckpointStore, read_sample_range
from repro.rt.events import EventAssembler, EventPolicy, EventSink
from repro.rt.ingest import Quarantine, SpoolWatcher, WorkQueue
from repro.rt.metrics import RTMetrics
from repro.rt.scheduler import DetectorConfig, SeamScheduler
from repro.storage.catalog import Catalog
from repro.storage.dasfile import read_das_file
from repro.storage.metadata import parse_timestamp, timestamp_add_seconds

EVENTS_NAME = "events.jsonl"


@dataclass(frozen=True)
class ServiceConfig:
    """Loop behaviour knobs (detection itself lives in DetectorConfig)."""

    poll_interval: float = 1.0
    settle_seconds: float = 1.0
    stable_polls: int = 2
    queue_capacity: int = 64
    max_retries: int = 3
    checkpoint_every: int = 1  # processed files between checkpoints; 0 = off
    stamp_tolerance_seconds: float = 1.0
    update_catalog: bool = True

    def __post_init__(self) -> None:
        if self.poll_interval < 0:
            raise ConfigError("poll_interval must be >= 0")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")
        if self.checkpoint_every < 0:
            raise ConfigError("checkpoint_every must be >= 0")
        if self.stamp_tolerance_seconds < 0:
            raise ConfigError("stamp_tolerance_seconds must be >= 0")


class RTService:
    """A continuously-running detector over a spool directory."""

    def __init__(
        self,
        spool: str,
        detector: DetectorConfig | None = None,
        policy: EventPolicy | None = None,
        config: ServiceConfig | None = None,
        events_path: str | None = None,
        checkpoint_path: str | None = None,
        clock=time.time,
        on_event=None,
        state_dir: str | None = None,
        on_file=None,
    ):
        self.spool = os.fspath(spool)
        # Durable state (events log, checkpoint, quarantine) defaults to
        # living inside the spool; a sharded deployment points it at a
        # separate directory so a vanished/remounted spool cannot take
        # the recovery state down with it.
        self.state_dir = (
            os.fspath(state_dir) if state_dir is not None else self.spool
        )
        self.detector = detector if detector is not None else DetectorConfig()
        self.policy = policy if policy is not None else EventPolicy()
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock
        self.on_event = on_event
        self.on_file = on_file
        self.metrics = RTMetrics()
        self.watcher = SpoolWatcher(
            self.spool,
            settle_seconds=self.config.settle_seconds,
            stable_polls=self.config.stable_polls,
            clock=clock,
        )
        self.queue = WorkQueue(self.config.queue_capacity)
        self.quarantine = Quarantine(self.spool, state_dir=self.state_dir)
        self.scheduler = SeamScheduler(self.detector)
        self.sink = EventSink(
            events_path
            if events_path is not None
            else os.path.join(self.state_dir, EVENTS_NAME)
        )
        self.checkpoints = CheckpointStore(
            checkpoint_path
            if checkpoint_path is not None
            else os.path.join(self.state_dir, CHECKPOINT_NAME)
        )
        self.assembler: EventAssembler | None = None
        self.files_done: list[tuple[str, int]] = []
        self.files_seen: set[str] = set()
        self._attempts: dict[str, int] = {}
        self._overflow: list[str] = []
        self._record: str = ""  # base timestamp naming the current record
        self._expected_stamp: str | None = None
        self._since_checkpoint = 0
        self.resume_error: str | None = None
        self.checkpoint_fallback: str | None = None
        self.catalog: Catalog | None = None
        self.watcher.mark_known(self.quarantine.paths())
        try:
            payload = self.checkpoints.load()
        except CheckpointCorruptError as exc:
            # No verifiable checkpoint generation at all.  Resuming from
            # bytes we cannot trust could corrupt the catalog silently;
            # starting from scratch merely replays work the event sink's
            # dedup absorbs.  The typed failure is surfaced, not hidden.
            self.checkpoint_fallback = str(exc)
            payload = None
        if payload is not None:
            if self.checkpoints.last_error is not None:
                # Primary checkpoint was torn/corrupt; we resumed from
                # the previous generation.  Replayed work dedups in the
                # sink, but the degradation is surfaced for supervision.
                self.checkpoint_fallback = str(self.checkpoints.last_error)
            self._resume(payload)

    # -- resume -------------------------------------------------------------
    def _resume(self, payload: dict) -> None:
        """Rebuild carried state from a checkpoint (tail digest-verified).

        A tail file that turned unreadable (corrupted, truncated,
        vanished) between checkpoint and resume must not kill the
        service: the carried detector state is dropped — the record is
        started fresh at the next file — and the failure is kept in
        :attr:`resume_error`.  Already-processed files stay marked as
        known either way, so nothing is double-ingested.
        """
        self.files_done = [
            (str(name), int(n)) for name, n in payload.get("files_done", [])
        ]
        # files_seen outlives record finalisation (files_done is cleared
        # when a record ends) — it is what keeps finalised-record files
        # from being re-announced after a restart.  Older checkpoints
        # without the field fall back to files_done.
        self.files_seen = {str(name) for name in payload.get("files_seen", [])}
        self.files_seen.update(name for name, _ in self.files_done)
        self._record = str(payload.get("record", ""))
        self._expected_stamp = payload.get("expected_stamp")
        self._attempts = {
            str(name): int(n) for name, n in payload.get("attempts", {}).items()
        }
        self.watcher.mark_known(self._seen_paths())
        runner_state = payload.get("runner")
        if runner_state is not None:
            lo = int(runner_state["buf_start"])
            hi = int(runner_state["seen"])
            try:
                tail = read_sample_range(
                    [(path, n) for path, n in self._file_spans()], lo, hi
                )
            except (ReproError, OSError) as exc:
                # Unreadable tail: degrade, don't die.  A *readable* tail
                # whose samples changed still fails the digest check in
                # import_state below — tampering raises, loss degrades.
                self.resume_error = f"{type(exc).__name__}: {exc}"
                self.scheduler.reset()
                self.assembler = None
                self.files_done = []
                self._record = ""
                self._expected_stamp = None
                return
            self.scheduler.import_state(runner_state, tail)
        assembler_state = payload.get("assembler")
        if assembler_state is not None:
            self._ensure_assembler()
            self.assembler.import_state(assembler_state)

    def _done_paths(self) -> list[str]:
        return [os.path.join(self.spool, name) for name, _ in self.files_done]

    def _seen_paths(self) -> list[str]:
        return [os.path.join(self.spool, name) for name in self.files_seen]

    def _file_spans(self) -> list[tuple[str, int]]:
        return [
            (os.path.join(self.spool, name), n) for name, n in self.files_done
        ]

    # -- event assembly -----------------------------------------------------
    def _ensure_assembler(self) -> None:
        if self.assembler is not None:
            return
        if self.scheduler.fs is None:
            raise ConfigError("assembler needs the scheduler's geometry first")
        self.assembler = EventAssembler(
            self.policy,
            self.scheduler.fs,
            self.scheduler.n_channels,
            channel_lo=self.detector.channel_lo,
        )

    def _assemble(self, pieces) -> list:
        """Feed emitted column intervals to the assembler; returns the
        events newly written to the log."""
        if not pieces:
            return []
        self._ensure_assembler()
        events = []
        for (j_lo, j_hi), block in pieces:
            centers = self.detector.centers(j_lo, j_hi)
            events.extend(self.assembler.feed(j_lo, centers, block))
            self.metrics.columns_out += j_hi - j_lo
        written = self.sink.emit(events, record=self._record)
        self.metrics.events_emitted += len(written)
        if self.on_event is not None:
            for seam_event in written:
                self.on_event(seam_event)
        return written

    # -- record lifecycle ---------------------------------------------------
    def _finalize_record(self) -> list:
        """Flush the live record (gap or shutdown): clamp the right edge,
        emit the deferred tail, close the open event run."""
        written = []
        if self.scheduler.started:
            written.extend(self._assemble(self.scheduler.flush()))
            if self.assembler is not None:
                tail_events = self.assembler.flush()
                emitted = self.sink.emit(tail_events, record=self._record)
                self.metrics.events_emitted += len(emitted)
                if self.on_event is not None:
                    for seam_event in emitted:
                        self.on_event(seam_event)
                written.extend(emitted)
            self.metrics.records_finished += 1
        self.scheduler.reset()
        self.assembler = None
        self.files_done = []
        self._record = ""
        self._expected_stamp = None
        return written

    def flush(self) -> list:
        """Public record finalisation (drain/shutdown); checkpoint after."""
        written = self._finalize_record()
        self.save_checkpoint()
        return written

    # -- per-file processing ------------------------------------------------
    def _fail(
        self,
        path: str,
        reason: str,
        permanent: bool,
        error: BaseException | None = None,
    ) -> None:
        attempts = self._attempts.get(path, 0) + 1
        self._attempts[path] = attempts
        if permanent or attempts >= self.config.max_retries:
            self.quarantine.add(path, reason, attempts, error=error)
            self.metrics.files_quarantined += 1
            self._attempts.pop(path, None)
        else:
            self._overflow.append(path)  # retry on a later tick
            self.metrics.files_requeued += 1

    def _process(self, path: str) -> bool:
        """One file end to end; ``True`` when it was fully consumed."""
        t0 = self.metrics.clock()
        try:
            mtime = os.stat(path).st_mtime
            read_t0 = self.metrics.clock()
            data, meta = read_das_file(path)
            self.metrics.stage("read").record(self.metrics.clock() - read_t0)
            if data.size == 0:
                raise ConfigError("file holds no samples")
        except FileNotFoundError as exc:
            self._fail(
                path, "file vanished before it could be read", True, error=exc
            )
            return False
        except (ReproError, OSError) as exc:
            self._fail(path, str(exc), False, error=exc)
            return False

        stamp = meta.timestamp
        expected = self._expected_stamp
        if expected is not None and stamp:
            try:
                gap = abs(
                    (parse_timestamp(stamp) - parse_timestamp(expected))
                    .total_seconds()
                )
            except ReproError:
                gap = None
            if gap is not None and gap > self.config.stamp_tolerance_seconds:
                # Acquisition gap: the record ended; start a new one.
                self._finalize_record()

        try:
            pipe_t0 = self.metrics.clock()
            pieces = self.scheduler.process(data, meta.sampling_frequency)
            self.metrics.stage("pipeline").record(
                self.metrics.clock() - pipe_t0
            )
        except ReproError as exc:
            # Geometry mismatch is permanent.
            self._fail(path, str(exc), True, error=exc)
            return False

        if not self._record:
            self._record = stamp or os.path.basename(path)
        events_t0 = self.metrics.clock()
        self._assemble(pieces)
        self.metrics.stage("events").record(self.metrics.clock() - events_t0)

        n_samples = data.shape[1]
        if meta.sampling_frequency > 0 and stamp:
            self._expected_stamp = timestamp_add_seconds(
                stamp, n_samples / meta.sampling_frequency
            )
        self.files_done.append((os.path.basename(path), int(n_samples)))
        self.files_seen.add(os.path.basename(path))
        self._attempts.pop(path, None)
        self.metrics.files_ingested += 1
        self.metrics.samples_in += int(n_samples)
        self.metrics.ingest_lag.record(max(self.clock() - mtime, 0.0))
        self.metrics.stage("total").record(self.metrics.clock() - t0)
        if self.config.update_catalog:
            self._refresh_catalog()
        if self.on_file is not None:
            # Chaos hook: fires after the file is fully consumed but
            # (possibly) before the next checkpoint — it may raise
            # InjectedFaultError to simulate a crash at exactly this
            # point, which propagates out of tick() like a real death.
            self.on_file(path)
        return True

    def _refresh_catalog(self) -> None:
        try:
            if self.catalog is None:
                self.catalog = Catalog.open(self.spool)
            else:
                self.catalog.refresh()
                self.catalog.save()
        except ReproError:
            self.catalog = None  # the catalog must never stall detection

    # -- the loop -----------------------------------------------------------
    def tick(self) -> int:
        """One poll + drain of the queue; returns files fully processed."""
        self.metrics.ticks += 1
        incoming = self._overflow
        self._overflow = []
        incoming.extend(
            path
            for path in self.watcher.scan()
            if path not in self.quarantine
        )
        for path in incoming:
            if not self.queue.offer(path):
                self._overflow.append(path)
        self.metrics.backlog = len(self._overflow)
        processed = 0
        while True:
            path = self.queue.pop()
            if path is None:
                break
            if self._process(path):
                processed += 1
        self.metrics.queue_depth = len(self.queue)
        self._since_checkpoint += processed
        if (
            self.config.checkpoint_every
            and self._since_checkpoint >= self.config.checkpoint_every
        ):
            self.save_checkpoint()
        return processed

    def drain(self, max_ticks: int = 1000) -> int:
        """Tick until the spool is quiet (tests and ``--drain`` mode)."""
        total = 0
        for _ in range(max_ticks):
            total += self.tick()
            # Probe with a real scan: anything it announces is kept (an
            # announcement is one-shot, so a discarded result would lose
            # the file forever).
            fresh = [
                path
                for path in self.watcher.scan()
                if path not in self.quarantine
            ]
            self._overflow.extend(fresh)
            if (
                not fresh
                and not self._overflow
                and not len(self.queue)
                and not self.watcher.pending
            ):
                break
        return total

    def run(self, stop_check=None, max_ticks: int | None = None) -> None:
        """The blocking service loop (the CLI's engine)."""
        ticks = 0
        while True:
            if stop_check is not None and stop_check():
                break
            if max_ticks is not None and ticks >= max_ticks:
                break
            processed = self.tick()
            ticks += 1
            if not processed and self.config.poll_interval > 0:
                time.sleep(self.config.poll_interval)
        self.save_checkpoint()

    # -- checkpointing ------------------------------------------------------
    def save_checkpoint(self) -> None:
        """Atomically persist everything a resume needs."""
        if not self.config.checkpoint_every:
            return
        payload = {
            "files_done": [[name, n] for name, n in self.files_done],
            "files_seen": sorted(self.files_seen),
            "record": self._record,
            "expected_stamp": self._expected_stamp,
            "runner": self.scheduler.export_state(),
            "assembler": (
                self.assembler.export_state()
                if self.assembler is not None
                else None
            ),
            "attempts": dict(self._attempts),
            "queue": [os.path.basename(p) for p in self.queue.items()],
            "events_logged": self.sink.count,
        }
        self.checkpoints.save(payload)
        self._since_checkpoint = 0

    def close(self) -> None:
        """Checkpoint without finalising the record (a paused acquisition
        resumes mid-record; use :meth:`flush` for a true end-of-record)."""
        self.save_checkpoint()
