"""Tests for repro.utils.timer."""

import pytest

from repro.utils.timer import Timer, VirtualTimer, timed


class TestTimer:
    def test_phase_accumulates(self):
        t = Timer()
        with t.phase("read"):
            pass
        with t.phase("read"):
            pass
        assert t.phases["read"] >= 0.0
        assert set(t.phases) == {"read"}

    def test_total_sums_phases(self):
        t = Timer()
        t.phases = {"a": 1.0, "b": 2.0}
        assert t.total == pytest.approx(3.0)

    def test_merge(self):
        a = Timer()
        a.phases = {"read": 1.0, "compute": 2.0}
        b = Timer()
        b.phases = {"read": 0.5, "write": 0.25}
        a.merge(b)
        assert a.phases == {"read": 1.5, "compute": 2.0, "write": 0.25}

    def test_phase_records_on_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t.phase("boom"):
                raise RuntimeError("x")
        assert "boom" in t.phases


class TestVirtualTimer:
    def test_starts_at_zero(self):
        assert VirtualTimer().now == 0.0

    def test_advance(self):
        clock = VirtualTimer()
        clock.advance(1.5, phase="io")
        assert clock.now == pytest.approx(1.5)
        assert clock.phases["io"] == pytest.approx(1.5)

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualTimer().advance(-1.0)

    def test_synchronize_forward_only(self):
        clock = VirtualTimer()
        clock.advance(2.0)
        clock.synchronize(5.0)
        assert clock.now == pytest.approx(5.0)
        clock.synchronize(1.0)  # never goes backwards
        assert clock.now == pytest.approx(5.0)

    def test_synchronize_does_not_charge_phase(self):
        clock = VirtualTimer()
        clock.synchronize(10.0)
        assert clock.phases == {}

    def test_phase_accumulation(self):
        clock = VirtualTimer()
        clock.advance(1.0, "io")
        clock.advance(2.0, "io")
        clock.advance(3.0, "compute")
        assert clock.phases == {"io": pytest.approx(3.0), "compute": pytest.approx(3.0)}


def test_timed_context():
    with timed() as elapsed:
        pass
    assert elapsed[0] >= 0.0
