"""Planner-geometry analyzer (``PLN``).

The query planner (:mod:`repro.core.optimizer`) composes each
operator's declared interval algebra — ``out_total`` / ``out_core`` /
``out_full`` / ``in_needed`` — to decide what to read, what to fuse,
and what each chunk owns.  A declaration that is internally inconsistent
produces plans that read too little or trim the wrong samples, failing
either loudly at :func:`repro.core.graph.verify_geometry` time or — the
case a linter exists for — silently at a chunk seam the test data never
exercises.  These checks are the static half of ``verify_geometry``:
they flag declaration *shapes* that cannot be consistent, at review
time.

Checks (on :class:`~repro.core.pipeline.Operator` subclasses, resolved
by name across the project like the ``OPC`` series):

``PLN001`` — the time-grid trio ``out_core`` / ``out_full`` /
    ``in_needed`` is partially overridden: the three methods define one
    output grid, so overriding a strict subset mixes a custom grid with
    the affine default and the composed plan cannot tile.  Override all
    three (plus ``out_total``) or none.
``PLN002`` — ``out_total`` and ``out_core`` disagree about who defines
    the output grid: a custom output length without a custom ownership
    mapping (or the converse) leaves the planner pairing a bespoke grid
    with the default affine one.
``PLN003`` — a literal ``decimate`` != 1 combined with a time-grid
    override: the default algebra already derives the grid from
    ``decimate``; declaring both makes fusion eligibility and the
    override disagree about the sample lattice.
``PLN004`` — a literal non-zero ``halo`` combined with an ``in_needed``
    override: ``in_needed`` *is* the halo declaration, so the literal is
    either redundant or (if they differ) silently double-counted by
    halo-summing rewrites such as operator fusion.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.contracts import _ClassInfo, _FlatView, _resolve_kinds
from repro.checks.findings import Finding
from repro.checks.registry import Analyzer, register
from repro.checks.source import Project

__all__ = ["PlannerGeometryAnalyzer"]

_GRID_TRIO = ("out_core", "out_full", "in_needed")


@register
class PlannerGeometryAnalyzer(Analyzer):
    name = "planner-geometry"
    description = "Operator interval declarations compose consistently"
    codes = {
        "PLN001": "partial override of the out_core/out_full/in_needed trio",
        "PLN002": "out_total and out_core disagree about the output grid",
        "PLN003": "literal decimate != 1 alongside a time-grid override",
        "PLN004": "literal non-zero halo alongside an in_needed override",
    }

    def run(self, project: Project) -> Iterator[Finding]:
        classes: dict[str, list[_ClassInfo]] = {}
        for mod in project.modules:
            if mod.tree is None:
                continue
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, []).append(_ClassInfo(mod, node))
        kinds = _resolve_kinds(classes)
        for infos in classes.values():
            for info in infos:
                if kinds.get(id(info)) != "operator":
                    continue
                # the class map is whole-program; reporting honours scope
                if not project.in_scope(info.mod):
                    continue
                yield from self._check(info, _FlatView(info, classes))

    def _check(self, info: _ClassInfo, view: _FlatView) -> Iterator[Finding]:
        mod, cls = info.mod, info.node
        # _FlatView excludes the Operator root, so "has_method" means the
        # class (or a concrete ancestor) overrides the default algebra.
        trio = [m for m in _GRID_TRIO if view.has_method(m)]
        has_total = view.has_method("out_total")

        if trio and len(trio) < len(_GRID_TRIO):
            missing = [m for m in _GRID_TRIO if m not in trio]
            line = self._method_line(info, trio[0])
            if not mod.is_suppressed(line, "PLN001"):
                yield self.finding(
                    "PLN001", mod, line,
                    f"{cls.name} overrides {', '.join(trio)} but not "
                    f"{', '.join(missing)} — the trio defines one output "
                    f"grid and must move together",
                    hint="override out_core, out_full, and in_needed "
                         "(and out_total) together, or none of them",
                )

        full_trio = len(trio) == len(_GRID_TRIO)
        # Only when the trio itself is coherent (all or none) — a partial
        # trio is already PLN001 and would double-report here.
        if (not trio or full_trio) and has_total != full_trio and (
            trio or has_total
        ):
            which = "out_total" if has_total else "out_core/out_full/in_needed"
            other = "out_core/out_full/in_needed" if has_total else "out_total"
            line = self._method_line(
                info, "out_total" if has_total else trio[0]
            )
            if not mod.is_suppressed(line, "PLN002"):
                yield self.finding(
                    "PLN002", mod, line,
                    f"{cls.name} overrides {which} but not {other}: a "
                    f"custom output grid needs both its length and its "
                    f"ownership mapping",
                )

        literals = self._literal_attrs(info)
        if trio and "decimate" in literals:
            value, line = literals["decimate"]
            if (
                isinstance(value, int)
                and value != 1
                and not mod.is_suppressed(line, "PLN003")
            ):
                yield self.finding(
                    "PLN003", mod, line,
                    f"{cls.name} declares decimate = {value} and also "
                    f"overrides {', '.join(trio)}: the default algebra "
                    f"derives the grid from decimate, so the two "
                    f"declarations will disagree",
                    hint="keep decimate = 1 when the interval methods "
                         "define the grid",
                )
        if view.has_method("in_needed") and "halo" in literals:
            value, line = literals["halo"]
            nonzero = (
                isinstance(value, tuple)
                and len(value) == 2
                and any(isinstance(v, int) and v != 0 for v in value)
            )
            if nonzero and not mod.is_suppressed(line, "PLN004"):
                yield self.finding(
                    "PLN004", mod, line,
                    f"{cls.name} declares halo = {value} and also "
                    f"overrides in_needed — in_needed is the halo "
                    f"declaration; halo-summing rewrites (fusion) would "
                    f"double-count it",
                    hint="fold the halo into in_needed and declare "
                         "halo = (0, 0), or drop the override",
                )

    @staticmethod
    def _method_line(info: _ClassInfo, method: str) -> int:
        fn = info.methods.get(method)
        return fn.lineno if fn is not None else info.node.lineno

    @staticmethod
    def _literal_attrs(info: _ClassInfo) -> dict[str, tuple[object, int]]:
        out: dict[str, tuple[object, int]] = {}
        for attr in ("decimate", "halo"):
            if attr in info.class_attrs:
                out[attr] = (
                    info.class_attrs[attr], info.class_attr_lines[attr]
                )
        for attr, pair in info.init_literal_attrs().items():
            if attr in ("decimate", "halo"):
                out[attr] = pair
        return out
