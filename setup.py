"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires the PEP 517 build_editable hook, which needs
`wheel`; on offline machines without it, run `python setup.py develop`
instead (all metadata lives in pyproject.toml / here).
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={
        "console_scripts": [
            "das_search = repro.storage.cli:main",
            "das_generate = repro.synthetic.cli:main",
            "das_inspect = repro.hdf5lite.cli:main",
            "das_analyze = repro.core.cli:main",
        ]
    },
)
