"""Tests for the synthetic DAS data generator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.storage.search import scan_directory
from repro.synthetic import (
    ambient_noise,
    earthquake_signal,
    fig1b_scene,
    generate_dataset,
    persistent_vibration,
    ricker,
    synthesize_scene,
    vehicle_signal,
)
from repro.synthetic.cli import main as das_generate_main
from repro.synthetic.generator import SceneSpec


class TestRicker:
    def test_peak_at_zero(self):
        t = np.linspace(-1, 1, 1001)
        w = ricker(t, 5.0)
        assert np.argmax(w) == 500
        assert w[500] == pytest.approx(1.0)

    def test_zero_mean(self):
        t = np.linspace(-2, 2, 4001)
        w = ricker(t, 5.0)
        assert abs(np.trapezoid(w, t)) < 1e-6

    def test_decays(self):
        assert abs(ricker(np.array([3.0]), 5.0)[0]) < 1e-10


class TestAmbientNoise:
    def test_shape_and_unit_scale(self):
        noise = ambient_noise(8, 2000, rng=np.random.default_rng(0))
        assert noise.shape == (8, 2000)
        assert np.std(noise) == pytest.approx(1.0, rel=0.05)

    def test_band_limited(self):
        fs = 500.0
        noise = ambient_noise(
            4, 50000, fs=fs, band=(5.0, 20.0), rng=np.random.default_rng(1)
        )
        spec = np.abs(np.fft.rfft(noise, axis=-1)) ** 2
        freqs = np.fft.rfftfreq(noise.shape[-1], 1 / fs)
        inband = spec[:, (freqs > 5) & (freqs < 20)].mean()
        outband = spec[:, freqs > 100].mean()
        assert inband > 50 * outband

    def test_channels_independent(self):
        noise = ambient_noise(2, 5000, rng=np.random.default_rng(2))
        r = np.corrcoef(noise[0], noise[1])[0, 1]
        assert abs(r) < 0.1

    def test_amplitude_scaling(self):
        a = ambient_noise(2, 1000, amplitude=3.0, rng=np.random.default_rng(3))
        assert np.std(a) == pytest.approx(3.0, rel=0.1)


class TestEarthquake:
    def test_moveout_delays_far_channels(self):
        fs = 100.0
        sig = earthquake_signal(
            64, 4000, fs=fs, origin_time=10.0, epicenter_channel=0,
            apparent_velocity=500.0, channel_spacing=10.0, amplitude=1.0,
            rng=np.random.default_rng(4),
        )
        near_peak = np.argmax(np.abs(sig[1])) / fs
        far_peak = np.argmax(np.abs(sig[60])) / fs
        assert far_peak > near_peak
        # distance 590 m at 500 m/s = 1.18 s extra delay
        assert far_peak - near_peak == pytest.approx(59 * 10 / 500.0, abs=0.15)

    def test_quiet_before_origin(self):
        sig = earthquake_signal(
            8, 2000, fs=100.0, origin_time=10.0, rng=np.random.default_rng(5)
        )
        assert np.max(np.abs(sig[:, :800])) < 0.05 * np.max(np.abs(sig))

    def test_coherent_across_neighbours(self):
        sig = earthquake_signal(
            16, 4000, fs=100.0, origin_time=5.0, apparent_velocity=1e5,
            rng=np.random.default_rng(6),
        )
        r = np.corrcoef(sig[7], sig[8])[0, 1]
        assert r > 0.95  # nearly identical arrivals at huge velocity


class TestVehicle:
    def test_signal_follows_position(self):
        fs = 50.0
        sig = vehicle_signal(
            100, 3000, fs=fs, start_time=0.0, start_channel=0.0,
            speed_mps=10.0, channel_spacing=2.0, width_channels=3.0,
        )
        # at t=20s the car sits at channel 100... off array; at t=10s -> ch 50
        t_idx = int(10.0 * fs)
        profile = np.abs(sig[:, t_idx - 25 : t_idx + 25]).max(axis=1)
        assert abs(int(np.argmax(profile)) - 50) <= 3

    def test_moves_with_negative_speed(self):
        fs = 50.0
        sig = vehicle_signal(
            100, 3000, fs=fs, start_time=0.0, start_channel=99.0,
            speed_mps=-10.0, channel_spacing=2.0, width_channels=3.0,
        )
        t_idx = int(10.0 * fs)
        profile = np.abs(sig[:, t_idx - 25 : t_idx + 25]).max(axis=1)
        assert abs(int(np.argmax(profile)) - 49) <= 3

    def test_silent_before_start(self):
        sig = vehicle_signal(50, 1000, fs=50.0, start_time=10.0)
        assert np.all(sig[:, :499] == 0.0)

    def test_localised(self):
        sig = vehicle_signal(
            200, 500, fs=50.0, start_channel=100.0, speed_mps=0.0,
            width_channels=5.0,
        )
        assert np.max(np.abs(sig[0])) < 1e-6 * np.max(np.abs(sig[100]))


class TestVibration:
    def test_confined_to_neighbourhood(self):
        sig = persistent_vibration(
            100, 1000, center_channel=50, width=5, rng=np.random.default_rng(7)
        )
        assert np.abs(sig[50]).max() > 100 * np.abs(sig[0]).max()

    def test_narrowband(self):
        fs = 500.0
        sig = persistent_vibration(
            4, 50000, fs=fs, center_channel=2, width=5, freq=20.0,
            rng=np.random.default_rng(8),
        )
        spec = np.abs(np.fft.rfft(sig[2]))
        freqs = np.fft.rfftfreq(50000, 1 / fs)
        peak = freqs[np.argmax(spec)]
        assert peak == pytest.approx(20.0, abs=0.5)


class TestSceneAndDataset:
    def test_scene_reproducible(self):
        scene = fig1b_scene(n_channels=32, minutes=2, samples_per_minute=200)
        a = synthesize_scene(scene, 2, samples_per_minute=200)
        b = synthesize_scene(scene, 2, samples_per_minute=200)
        np.testing.assert_array_equal(a, b)

    def test_scene_has_earthquake_energy(self):
        scene = fig1b_scene(n_channels=64, minutes=2, samples_per_minute=1000, fs=50.0)
        data = synthesize_scene(scene, 2, samples_per_minute=1000)
        # the earthquake dominates the quiet start
        eq_window = data[:, 1100:1400]
        early = data[:, 0:100]
        assert np.abs(eq_window).max() > 2 * np.abs(early).max()

    def test_generate_dataset_files(self, tmp_path):
        scene = fig1b_scene(n_channels=16, minutes=3, samples_per_minute=100, fs=10.0)
        paths = generate_dataset(
            str(tmp_path / "d"), 3, scene=scene, samples_per_minute=100
        )
        assert len(paths) == 3
        catalog = scan_directory(str(tmp_path / "d"), read_shapes=True)
        assert [c.n_samples for c in catalog] == [100, 100, 100]
        assert catalog[1].timestamp == "170620100555"  # +10 s at 10 Hz

    def test_files_concatenate_to_scene(self, tmp_path):
        from repro.storage.dasfile import read_das_file

        scene = fig1b_scene(n_channels=8, minutes=2, samples_per_minute=50, fs=10.0)
        paths = generate_dataset(
            str(tmp_path / "d"), 2, scene=scene, samples_per_minute=50
        )
        full = synthesize_scene(scene, 2, samples_per_minute=50)
        blocks = [read_das_file(p)[0] for p in paths]
        np.testing.assert_array_equal(np.concatenate(blocks, axis=1), full)

    def test_unknown_event_kind(self):
        scene = SceneSpec(n_channels=4, events=[("tsunami", {})])
        with pytest.raises(ConfigError):
            synthesize_scene(scene, 1, samples_per_minute=10)

    def test_zero_minutes_rejected(self):
        with pytest.raises(ConfigError):
            synthesize_scene(SceneSpec(n_channels=4), 0, samples_per_minute=10)

    def test_cli(self, tmp_path, capsys):
        rc = das_generate_main(
            ["-o", str(tmp_path / "out"), "-m", "2", "-n", "8", "--spm", "50", "--fs", "10"]
        )
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
