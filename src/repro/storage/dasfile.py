"""Per-minute DAS file reader/writer.

One acquisition file holds a 2-D ``channel x time`` array (dataset
``DataCT``) plus the two-level metadata of Fig. 4: global KV pairs at the
root and one ``Measurement/<i>`` group per channel carrying per-channel
KV pairs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import StorageError
from repro.hdf5lite import File
from repro.storage.metadata import DASMetadata
from repro.utils.iostats import IOStats

DATASET_NAME = "DataCT"
CHANNEL_GROUP = "Measurement"


def das_filename(timestamp: str, prefix: str = "westSac") -> str:
    """Acquisition-style file name: ``<prefix>_<yymmddhhmmss>.h5``."""
    return f"{prefix}_{timestamp}.h5"


def write_das_file(
    path: str | os.PathLike,
    data: np.ndarray,
    metadata: DASMetadata,
    channel_groups: bool = True,
    dtype: object = np.float32,
    iostats: IOStats | None = None,
    checksum: bool = False,
    chunks: tuple[int, int] | None = None,
    codec: object = None,
) -> str:
    """Write one DAS file; returns the path.

    ``data`` is ``(channels, samples)``.  With ``channel_groups`` the
    per-channel ``Measurement/<i>`` metadata groups of Fig. 4 are
    written (1-based indices, as in the paper).  ``checksum=True`` stores
    a per-block CRC32 sidecar on ``DataCT`` so readers detect silent
    corruption (see :mod:`repro.hdf5lite.checksum`).

    ``codec`` selects per-chunk compression for ``DataCT`` (see
    :mod:`repro.hdf5lite.codecs`); codecs require a chunked layout, so
    when ``chunks`` is not given the data is chunked as all channels ×
    up to 8192 samples (whole-channel-block reads stay one chunk run).
    Readers need no flag — the codec rides in the file's attributes.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise StorageError(f"DAS data must be 2-D (channels, samples); got {data.shape}")
    n_channels, n_samples = data.shape
    if metadata.n_channels and metadata.n_channels != n_channels:
        raise StorageError(
            f"metadata says {metadata.n_channels} channels, data has {n_channels}"
        )
    meta = DASMetadata(
        sampling_frequency=metadata.sampling_frequency,
        spatial_resolution=metadata.spatial_resolution,
        timestamp=metadata.timestamp,
        n_channels=n_channels,
        extras=dict(metadata.extras),
    )
    if codec is not None and chunks is None:
        chunks = (n_channels, min(n_samples, 8192))
    path = os.fspath(path)
    with File(path, "w", iostats=iostats) as f:
        f.attrs.update_many(meta.to_attrs())
        f.create_dataset(
            DATASET_NAME,
            data=data.astype(dtype, copy=False),
            chunks=chunks,
            codec=codec,
            checksum=checksum,
        )
        if channel_groups:
            measurement = f.create_group(CHANNEL_GROUP)
            for ch in range(1, n_channels + 1):
                g = measurement.create_group(str(ch))
                g.attrs["Array dimension"] = 1
                g.attrs["Number of raw data values"] = n_samples
    return path


def read_das_file(
    path: str | os.PathLike, iostats: IOStats | None = None
) -> tuple[np.ndarray, DASMetadata]:
    """Read a whole DAS file: ``(data, metadata)``."""
    with File(path, "r", iostats=iostats) as f:
        metadata = DASMetadata.from_attrs(dict(f.attrs))
        data = f.dataset(DATASET_NAME).read()
    return data, metadata


def read_das_metadata(
    path: str | os.PathLike, iostats: IOStats | None = None
) -> tuple[DASMetadata, tuple[int, ...]]:
    """Read only the metadata (and dataset shape) — no array data I/O."""
    with File(path, "r", iostats=iostats) as f:
        metadata = DASMetadata.from_attrs(dict(f.attrs))
        shape = f.dataset(DATASET_NAME).shape
    return metadata, shape


class DASFile:
    """An open DAS file handle with typed accessors.

    Usage::

        with DASFile(path) as das:
            chunk = das.data[0:64, :]          # partial read
            fs = das.metadata.sampling_frequency
    """

    def __init__(self, path: str | os.PathLike, iostats: IOStats | None = None):
        self._file = File(path, "r", iostats=iostats)
        try:
            self.metadata = DASMetadata.from_attrs(dict(self._file.attrs))
        except StorageError:
            self._file.close()
            raise
        self.path = os.fspath(path)

    @property
    def data(self):
        """The ``DataCT`` dataset (lazily sliceable)."""
        return self._file.dataset(DATASET_NAME)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def n_channels(self) -> int:
        return self.data.shape[0]

    @property
    def n_samples(self) -> int:
        return self.data.shape[1]

    def channel_metadata(self, channel: int) -> dict:
        """Per-channel KV metadata (1-based channel index, as in Fig. 4)."""
        try:
            group = self._file[f"{CHANNEL_GROUP}/{channel}"]
        except KeyError:
            raise StorageError(
                f"no per-channel metadata for channel {channel} in {self.path}"
            ) from None
        return dict(group.attrs)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "DASFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
