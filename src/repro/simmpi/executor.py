"""SPMD launcher: run a function on P simulated ranks.

``run_spmd(fn, size)`` starts ``size`` threads, each with its own
:class:`~repro.simmpi.communicator.Communicator`, collects per-rank
return values, and converts any rank failure into a single raised
exception (aborting the fabric first so no other rank deadlocks in a
blocked receive or barrier).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.machine import ClusterSpec
from repro.errors import MPIError
from repro.simmpi.communicator import Communicator
from repro.simmpi.fabric import Fabric
from repro.simmpi.tracing import Tracer
from repro.utils.timer import VirtualTimer


@dataclass
class SPMDResult:
    """Outcome of an SPMD run."""

    results: list[Any]
    clocks: list[VirtualTimer]
    tracers: list[Tracer] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.results)

    @property
    def makespan(self) -> float:
        """Virtual completion time of the slowest rank."""
        return max((clock.now for clock in self.clocks), default=0.0)

    def phase_totals(self) -> dict[str, float]:
        """Max-over-ranks virtual time per phase (io / comm / compute)."""
        totals: dict[str, float] = {}
        for clock in self.clocks:
            for phase, seconds in clock.phases.items():
                totals[phase] = max(totals.get(phase, 0.0), seconds)
        return totals

    def schedules(self) -> list[list[tuple[str, int, int]]]:
        return [tracer.schedule() for tracer in self.tracers]


def run_spmd(
    fn: Callable[..., Any],
    size: int,
    cluster: ClusterSpec | None = None,
    ranks_per_node: int | None = None,
    args: tuple = (),
    kwargs: dict[str, Any] | None = None,
    trace: bool = True,
    recv_timeout: float = 60.0,
) -> SPMDResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` ranks; return results.

    ``cluster`` supplies the network cost model and the rank→node mapping
    (``ranks_per_node`` defaults to packing all ranks on one node when no
    cluster is given, or ``cluster.node.cores`` otherwise).  Raises
    :class:`MPIError` carrying the first rank failure.
    """
    if size < 1:
        raise MPIError("size must be >= 1")
    if kwargs is None:
        kwargs = {}
    if ranks_per_node is None:
        ranks_per_node = cluster.node.cores if cluster is not None else size

    fabric = Fabric(size)
    clocks = [VirtualTimer() for _ in range(size)]
    tracers = [Tracer(rank, enabled=trace) for rank in range(size)]
    comms = [
        Communicator(
            rank,
            size,
            fabric,
            clock=clocks[rank],
            cluster=cluster,
            ranks_per_node=ranks_per_node,
            tracer=tracers[rank],
            recv_timeout=recv_timeout,
        )
        for rank in range(size)
    ]

    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must not lose rank errors
            with errors_lock:
                errors.append((rank, exc))
            fabric.abort(exc)

    if size == 1:
        # Fast path: no threading needed for a single rank.
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"simmpi-rank-{rank}")
            for rank in range(size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    if errors:
        errors.sort(key=lambda pair: pair[0])
        rank, first = errors[0]
        # Prefer the root cause over secondary "aborted" errors on other ranks.
        primary = next(
            ((r, e) for r, e in errors if not isinstance(e, MPIError)),
            (rank, first),
        )
        raise MPIError(
            f"rank {primary[0]} failed: {type(primary[1]).__name__}: {primary[1]}"
        ) from primary[1]

    return SPMDResult(results=results, clocks=clocks, tracers=tracers)
