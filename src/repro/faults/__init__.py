"""Fault tolerance for the batch path: injection harness + runtime policy.

Two halves:

* :mod:`repro.faults.inject` — a deterministic, seeded fault-injection
  harness (bit-flip, truncate, vanish, slow-read, raise-on-nth-read)
  used by the fault-matrix tests and ``benchmarks/bench_faults.py``.
* :mod:`repro.faults.policy` — :class:`FailurePolicy` (fail-fast vs
  collect-and-continue, bounded retries, per-task timeout) and the
  shared :func:`retry_call` bounded-retry-with-backoff helper threaded
  through ``apply_mt``, ``StreamPipeline``, and the parallel readers.
* :mod:`repro.faults.chaos` — shard-level chaos: seeded
  :class:`ChaosSchedule` kill/hang/torn-checkpoint/spool-vanish
  actions plus the generic file/directory damage helpers, interpreted
  by ``repro.rt.shard``'s supervision loop.
"""

from repro.faults.chaos import (
    SHARD_FAULT_KINDS,
    ChaosAction,
    ChaosSchedule,
    flip_text_byte,
    restore_dir,
    tear_file,
    vanish_dir,
)
from repro.faults.inject import (
    FaultInjector,
    clear_read_faults,
    install_read_fault,
    read_faults,
)
from repro.faults.policy import FailurePolicy, TaskFailure, retry_call

__all__ = [
    "FaultInjector",
    "FailurePolicy",
    "TaskFailure",
    "retry_call",
    "install_read_fault",
    "clear_read_faults",
    "read_faults",
    "SHARD_FAULT_KINDS",
    "ChaosAction",
    "ChaosSchedule",
    "flip_text_byte",
    "restore_dir",
    "tear_file",
    "vanish_dir",
]
