"""Earthquake detection via local similarity (paper Algorithm 2).

For each channel and each time window, local similarity measures how
well the window correlates with the best-aligned window on each
neighbouring channel (±K channels, over ±L lags), averaging the two
sides:

    LS(c, t) = ( max_l |corr(W(c,t), W(c+K, t+l))|
               + max_l |corr(W(c,t), W(c-K, t+l))| ) / 2

Coherent signals (earthquake wavefronts, passing cars) light up; channel-
local noise does not.  Two implementations:

* :func:`local_similarity_udf` — the literal Algorithm 2 as an ArrayUDF
  user-defined function over a :class:`~repro.arrayudf.stencil.Stencil`,
* :func:`local_similarity_block` — a vectorised batch kernel computing
  the same map ~100x faster (what the engines call in production).

Tests assert the two agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.arrayudf.stencil import Stencil
from repro.core.pipeline import OpContext, Operator
from repro.daslib.correlate import abscorr
from repro.daslib.moving import sliding_windows
from repro.errors import ConfigError


@dataclass(frozen=True)
class LocalSimilarityConfig:
    """Algorithm 2 parameters.

    ``half_window`` is the paper's M (window width 2M+1); ``channel_offset``
    is K (neighbour distance); ``half_lag`` is L (2L+1 candidate
    alignments); ``stride`` is the hop between window centres (the paper
    samples a window per output cell; stride M keeps ~50 % overlap).
    """

    half_window: int = 25
    channel_offset: int = 1
    half_lag: int = 5
    stride: int = 25

    def __post_init__(self) -> None:
        if self.half_window < 1 or self.half_lag < 0:
            raise ConfigError("need half_window >= 1 and half_lag >= 0")
        if self.channel_offset < 1:
            raise ConfigError("channel_offset (K) must be >= 1")
        if self.stride < 1:
            raise ConfigError("stride must be >= 1")

    @property
    def window_len(self) -> int:
        return 2 * self.half_window + 1

    @property
    def time_halo(self) -> int:
        """Samples of time context a window centre needs on each side."""
        return self.half_window + self.half_lag

    @property
    def channel_halo(self) -> int:
        return self.channel_offset

    def centers(self, n_samples: int) -> np.ndarray:
        """Valid window-centre sample indices for a series of length n."""
        lo = self.time_halo
        hi = n_samples - self.time_halo
        if hi <= lo:
            return np.zeros(0, dtype=int)
        return np.arange(lo, hi, self.stride)


def local_similarity_udf(
    config: LocalSimilarityConfig,
) -> Callable[[Stencil], float]:
    """Algorithm 2, transcribed: the UDF DASSA hands to ApplyMT."""
    M = config.half_window
    K = config.channel_offset
    L = config.half_lag

    def LocalSimi(S: Stencil) -> float:
        W = S.window((0, 0), (-M, M))  # current window via S
        c_plus = 0.0
        c_minus = 0.0
        for lag in range(-L, L + 1):
            W1 = S.window(+K, (lag - M, lag + M))
            W2 = S.window(-K, (lag - M, lag + M))
            c_plus = max(c_plus, float(abscorr(W, W1)))
            c_minus = max(c_minus, float(abscorr(W, W2)))
        return 0.5 * (c_plus + c_minus)

    return LocalSimi


def similarity_at(
    data: np.ndarray,
    config: LocalSimilarityConfig,
    starts: np.ndarray,
    channel_range: tuple[int, int] | None = None,
) -> np.ndarray:
    """The vectorised similarity kernel at explicit window-start indices.

    ``starts`` are window start positions (centre − M) within ``data``;
    every shifted neighbour window (``start ± L``) must fit inside the
    block.  Shared by :func:`local_similarity_block` (whole-array grid)
    and :class:`LocalSimilarityOp` (a chunk's slice of the same grid),
    which is what makes streamed output identical to whole-array output.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("local similarity needs a 2-D (channels, time) block")
    n_channels, n_samples = data.shape
    K = config.channel_offset
    L = config.half_lag
    wlen = config.window_len
    c_lo, c_hi = channel_range if channel_range is not None else (K, n_channels - K)
    if not (0 <= c_lo - K and c_hi + K <= n_channels and c_lo <= c_hi):
        raise ConfigError(
            f"channel range ({c_lo}, {c_hi}) ±{K} outside block of {n_channels}"
        )
    starts = np.asarray(starts, dtype=int)
    if len(starts) == 0 or c_hi == c_lo:
        return np.zeros((max(0, c_hi - c_lo), len(starts)))
    if starts.min() - L < 0 or starts.max() + L + wlen > n_samples:
        raise ConfigError(
            f"window starts [{starts.min()}, {starts.max()}] ±{L} with width "
            f"{wlen} outside block of {n_samples} samples"
        )

    # All windows, every start position: (channels, n_samples - wlen + 1, wlen)
    windows = sliding_windows(data, wlen, axis=-1)
    norms = np.sqrt(np.einsum("ctw,ctw->ct", windows, windows))

    ref = windows[c_lo:c_hi][:, starts]  # (C_eval, n_starts, wlen)
    ref_norm = norms[c_lo:c_hi][:, starts]

    best_plus = np.zeros(ref.shape[:2])
    best_minus = np.zeros(ref.shape[:2])
    for lag in range(-L, L + 1):
        shifted = starts + lag
        for sign, best in ((+1, best_plus), (-1, best_minus)):
            neigh = windows[c_lo + sign * K : c_hi + sign * K][:, shifted]
            dots = np.abs(np.einsum("ctw,ctw->ct", ref, neigh))
            denom = ref_norm * norms[c_lo + sign * K : c_hi + sign * K][:, shifted]
            with np.errstate(invalid="ignore", divide="ignore"):
                corr = np.where(denom > 0, dots / np.where(denom > 0, denom, 1.0), 0.0)
            np.maximum(best, corr, out=best)
    return 0.5 * (best_plus + best_minus)


def local_similarity_block(
    data: np.ndarray,
    config: LocalSimilarityConfig,
    channel_range: tuple[int, int] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised local-similarity map.

    Returns ``(similarity, centers)`` where ``similarity`` has shape
    ``(channels_evaluated, len(centers))`` and ``channel_range`` bounds
    the evaluated channels (default: all channels with both ±K
    neighbours in the block).  Channels at the array edge are skipped
    exactly as the ghost-zone engine would.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ConfigError("local similarity needs a 2-D (channels, time) block")
    centers = config.centers(data.shape[-1])
    similarity = similarity_at(
        data, config, centers - config.half_window, channel_range=channel_range
    )
    return similarity, centers


# ---------------------------------------------------------------------------
# Algorithm 2 as a streaming operator
# ---------------------------------------------------------------------------


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class LocalSimilarityOp(Operator):
    """Algorithm 2 on the streaming executor.

    Output index ``j`` is the window centred at sample
    ``time_halo + j * stride`` — the exact whole-array grid of
    :meth:`LocalSimilarityConfig.centers` — so chunks tile the centre
    axis and streamed maps equal whole-array maps sample for sample.
    The operator also declares a ±K *channel* halo: output channel ``c``
    needs input channels ``c .. c + 2K`` (centre ``c + K``), which is
    how thread partitions of the output rows stay independent.
    """

    name = "local_similarity"

    def __init__(self, config: LocalSimilarityConfig):
        self.config = config
        self.channel_halo = config.channel_offset
        th = config.time_halo
        self.halo = (th, th)

    # -- geometry -----------------------------------------------------------
    def out_total(self, total_in: int) -> int:
        return len(self.config.centers(total_in))

    def out_fs(self, fs_in: float) -> float:
        return fs_in / self.config.stride if fs_in else fs_in

    def out_core(self, lo: int, hi: int) -> tuple[int, int]:
        th, s = self.config.time_halo, self.config.stride
        return _ceil_div(lo - th, s), _ceil_div(hi - th, s)

    def out_full(self, a: int, b: int) -> tuple[int, int]:
        th, s = self.config.time_halo, self.config.stride
        return _ceil_div(a, s), _ceil_div(b - 2 * th, s)

    def in_needed(self, lo: int, hi: int) -> tuple[int, int]:
        th, s = self.config.time_halo, self.config.stride
        return lo * s, (hi - 1) * s + 2 * th + 1

    # -- execution ----------------------------------------------------------
    def apply(self, data: np.ndarray, ctx: OpContext) -> np.ndarray:
        cfg = self.config
        th, s = cfg.time_halo, cfg.stride
        n_out = self.out_total(ctx.total)  # noqa: OPC001 - total is only the right-edge clamp; windows never read past their declared halo, so incremental execution stays exact
        j_lo = min(max(_ceil_div(ctx.start, s), 0), n_out)
        j_hi = min(max(_ceil_div(ctx.stop - 2 * th, s), j_lo), n_out)
        # Window start (centre − M) in block-local coordinates.
        starts = cfg.half_lag + np.arange(j_lo, j_hi) * s - ctx.start
        K = cfg.channel_offset
        return similarity_at(
            data, cfg, starts, channel_range=(K, data.shape[0] - K)
        )


def streamed_local_similarity(
    source: object,
    config: LocalSimilarityConfig | None = None,
    chunk_samples: int | None = None,
    threads: int = 1,
    timer: object = None,
    iostats: object = None,
    fs: float | None = None,
    policy: object = None,
):
    """Algorithm 2 over a chunk source, one overlap-padded block at a time.

    Returns ``(result, centers)`` with ``result`` a
    :class:`~repro.core.pipeline.PipelineResult` whose output matches
    :func:`local_similarity_block` on the materialised array.
    ``policy`` is an optional :class:`~repro.faults.policy.FailurePolicy`
    governing per-chunk retry and gap masking.
    """
    from repro.core.pipeline import StreamPipeline
    from repro.storage.chunks import as_source

    config = config if config is not None else LocalSimilarityConfig()
    src = as_source(source, fs=fs)
    result = StreamPipeline([LocalSimilarityOp(config)]).run(
        src,
        chunk_samples=chunk_samples,
        threads=threads,
        timer=timer,
        iostats=iostats,
        policy=policy,
    )
    return result, config.centers(src.n_samples)
