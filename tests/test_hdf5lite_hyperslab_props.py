"""Property-based tests (hypothesis) for hyperslab algebra.

Invariants:

* ``contiguous_runs`` materialisation equals numpy fancy slicing for every
  valid basic selection;
* runs are disjoint, ordered, and their total length equals the selection
  size;
* ``intersect`` is commutative and yields a region contained in both
  operands.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdf5lite.hyperslab import (
    Hyperslab,
    contiguous_runs,
    intersect,
    normalize_selection,
    selection_shape,
)


@st.composite
def shapes(draw, max_ndim=3, max_dim=12):
    ndim = draw(st.integers(1, max_ndim))
    return tuple(draw(st.integers(1, max_dim)) for _ in range(ndim))


@st.composite
def shape_and_selection(draw):
    shape = draw(shapes())
    sel = []
    for dim in shape:
        kind = draw(st.sampled_from(["int", "slice", "full"]))
        if kind == "int":
            sel.append(draw(st.integers(-dim, dim - 1)))
        elif kind == "full":
            sel.append(slice(None))
        else:
            start = draw(st.one_of(st.none(), st.integers(-dim - 2, dim + 2)))
            stop = draw(st.one_of(st.none(), st.integers(-dim - 2, dim + 2)))
            step = draw(st.integers(1, 4))
            sel.append(slice(start, stop, step))
    return shape, tuple(sel)


@st.composite
def unit_slabs(draw, shape):
    start = tuple(draw(st.integers(0, dim - 1)) for dim in shape)
    count = tuple(
        draw(st.integers(1, dim - s)) for s, dim in zip(start, shape)
    )
    return Hyperslab(start, count, tuple(1 for _ in shape))


@settings(max_examples=150, deadline=None)
@given(shape_and_selection())
def test_runs_match_numpy(case):
    shape, sel = case
    arr = np.arange(int(np.prod(shape))).reshape(shape)
    hs, squeeze = normalize_selection(sel, shape)
    flat = arr.reshape(-1)
    parts = [flat[off : off + n] for off, n in contiguous_runs(hs, shape)]
    got = (
        np.concatenate(parts) if parts else np.empty(0, dtype=arr.dtype)
    ).reshape(selection_shape(hs, squeeze))
    np.testing.assert_array_equal(got, arr[sel])


@settings(max_examples=150, deadline=None)
@given(shape_and_selection())
def test_runs_disjoint_ordered_and_sized(case):
    shape, sel = case
    hs, _ = normalize_selection(sel, shape)
    runs = list(contiguous_runs(hs, shape))
    total = 0
    prev_end = -1
    seen = set()
    for off, n in runs:
        assert n > 0
        assert off > prev_end or off not in seen
        for k in range(off, off + n):
            assert k not in seen
            seen.add(k)
        prev_end = off + n - 1
        total += n
    assert total == hs.size


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_intersect_commutative_and_contained(data):
    shape = data.draw(shapes())
    a = data.draw(unit_slabs(shape))
    b = data.draw(unit_slabs(shape))
    ab = intersect(a, b)
    ba = intersect(b, a)
    assert ab == ba
    if ab is not None:
        for dim in range(len(shape)):
            assert ab.start[dim] >= max(a.start[dim], b.start[dim])
            assert ab.start[dim] + ab.count[dim] <= min(
                a.start[dim] + a.count[dim], b.start[dim] + b.count[dim]
            )


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_intersect_with_self_is_identity(data):
    shape = data.draw(shapes())
    a = data.draw(unit_slabs(shape))
    assert intersect(a, a) == a


@settings(max_examples=100, deadline=None)
@given(st.data())
def test_full_selection_is_single_run(data):
    shape = data.draw(shapes())
    runs = list(contiguous_runs(Hyperslab.full(shape), shape))
    assert runs == [(0, int(np.prod(shape)))]
