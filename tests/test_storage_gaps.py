"""GapMap coalescing: the bridging-span regression and its invariant.

`GapMap.add` must coalesce *transitively*: a span that bridges two held
spans of the same (source, reason) collapses all three into one record.
The historical bug merged with only the first overlapping span, leaving
``record(0,10); record(20,30); record(10,20)`` as two touching spans.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.gaps import GapMap, GapSpan


def _spans_clash(a: GapSpan, b: GapSpan) -> bool:
    """True when two spans of the same (source, reason) overlap or touch."""
    return (
        a.source == b.source
        and a.reason == b.reason
        and a.t0 <= b.t1
        and b.t0 <= a.t1
    )


class TestBridgingSpan:
    def test_bridging_span_coalesces_all_three(self):
        gm = GapMap()
        gm.record("f", 0, 10, "io")
        gm.record("f", 20, 30, "io")
        gm.record("f", 10, 20, "io")
        assert [(s.t0, s.t1) for s in gm] == [(0, 30)]

    def test_bridge_keeps_max_attempts(self):
        gm = GapMap()
        gm.record("f", 0, 10, "io", attempts=1)
        gm.record("f", 20, 30, "io", attempts=3)
        gm.record("f", 10, 20, "io", attempts=2)
        (span,) = list(gm)
        assert span.attempts == 3

    def test_bridge_spanning_many(self):
        gm = GapMap()
        for k in range(5):
            gm.record("f", 10 * k, 10 * k + 4, "io")
        assert len(gm) == 5
        gm.record("f", 0, 100, "io")
        assert [(s.t0, s.t1) for s in gm] == [(0, 100)]

    def test_distinct_reason_or_source_stays_separate(self):
        gm = GapMap()
        gm.record("f", 0, 10, "io")
        gm.record("f", 20, 30, "crc")
        gm.record("g", 10, 20, "io")
        gm.record("f", 10, 20, "io")
        assert sorted((s.source, s.reason, s.t0, s.t1) for s in gm) == [
            ("f", "crc", 20, 30),
            ("f", "io", 0, 20),
            ("g", "io", 10, 20),
        ]

    def test_widened_inherits_coalescing(self):
        gm = GapMap()
        gm.record("f", 0, 10, "io")
        gm.record("f", 14, 20, "io")
        # A pad of 2 makes the padded spans touch: one record after widen.
        wide = gm.widened(2)
        assert [(s.t0, s.t1) for s in wide] == [(0, 22)]


@st.composite
def _span_batches(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    batches = []
    for _ in range(n):
        t0 = draw(st.integers(min_value=0, max_value=200))
        length = draw(st.integers(min_value=0, max_value=60))
        batches.append(
            (
                draw(st.sampled_from(["a", "b"])),
                t0,
                t0 + length,
                draw(st.sampled_from(["io", "crc"])),
                draw(st.integers(min_value=1, max_value=4)),
            )
        )
    return batches


class TestCoalescingInvariant:
    @settings(max_examples=200, deadline=None)
    @given(_span_batches())
    def test_no_two_spans_overlap_or_touch(self, batches):
        gm = GapMap()
        for source, t0, t1, reason, attempts in batches:
            gm.record(source, t0, t1, reason, attempts=attempts)
        spans = list(gm)
        for i, a in enumerate(spans):
            for b in spans[i + 1 :]:
                assert not _spans_clash(a, b), (a, b)
        # Coverage is preserved: every recorded sample is inside some span
        # of its (source, reason).
        for source, t0, t1, reason, _ in batches:
            for t in (t0, max(t0, t1 - 1)):
                if t1 > t0:
                    assert any(
                        s.source == source
                        and s.reason == reason
                        and s.t0 <= t < s.t1
                        for s in spans
                    )

    @settings(max_examples=100, deadline=None)
    @given(_span_batches())
    def test_total_samples_matches_union(self, batches):
        gm = GapMap()
        covered = set()
        for source, t0, t1, reason, attempts in batches:
            gm.record(source, t0, t1, reason, attempts=attempts)
            covered.update(range(t0, t1))
        assert gm.total_samples == len(covered)
