"""Runtime failure policy shared by the batch execution layers.

A :class:`FailurePolicy` says what an executor does when a unit of work
(an ApplyMT task, a streamed pipeline chunk, a parallel-read source)
fails: how many times to retry (with what backoff), how long a task may
run before a straggler copy is speculatively re-dispatched, and whether
a persistent failure kills the run (``fail_fast``) or yields a
fill-valued gap that is *reported* alongside the result (``continue``).

:func:`retry_call` is the one bounded-retry-with-backoff loop used by
every layer, so retry semantics (which exceptions are retryable, how
backoff grows) are identical from ``parallel_read`` up to ``apply_mt``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import ConfigError, ReproError

T = TypeVar("T")

FAIL_FAST = "fail_fast"
CONTINUE = "continue"

#: Exceptions worth retrying: framework-level failures and OS-level I/O
#: errors.  Programming errors (TypeError, ...) always propagate.
RETRYABLE = (ReproError, OSError)


@dataclass(frozen=True)
class FailurePolicy:
    """What to do when a unit of work fails.

    ``mode`` — ``"fail_fast"`` raises the typed error after retries are
    exhausted; ``"continue"`` fills the failed unit's output with
    ``fill`` and records the loss (a reported gap, not a crash).
    ``retries`` — re-executions after the first failure (0 = one shot).
    ``backoff`` — seconds slept before retry *k* is ``backoff * 2**k``
    (0 disables sleeping; tests use 0).
    ``timeout`` — seconds a task may run before an idle worker
    speculatively re-dispatches it (``None`` disables straggler copies).
    ``fill`` — the value written into outputs lost to a failed unit.
    """

    mode: str = FAIL_FAST
    retries: int = 1
    backoff: float = 0.0
    timeout: float | None = None
    fill: float = float("nan")

    def __post_init__(self) -> None:
        if self.mode not in (FAIL_FAST, CONTINUE):
            raise ConfigError(f"mode must be 'fail_fast' or 'continue', got {self.mode!r}")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        if self.backoff < 0:
            raise ConfigError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be > 0 (or None)")

    @property
    def fail_fast(self) -> bool:
        return self.mode == FAIL_FAST


@dataclass(frozen=True)
class TaskFailure:
    """One unit of work given up on under a ``continue`` policy."""

    unit: str
    attempts: int
    error: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.unit}: {self.error} (after {self.attempts} attempts)"


def retry_call(
    fn: Callable[[], T],
    retries: int = 1,
    backoff: float = 0.0,
    retry_on: tuple = RETRYABLE,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` with bounded retry and exponential backoff.

    Attempt *k* (0-based) failing with an exception in ``retry_on``
    sleeps ``backoff * 2**k`` and retries, up to ``retries`` re-runs;
    the final failure propagates unchanged (callers wrap it in the typed
    taxonomy with their own path/offset context).
    """
    if retries < 0:
        raise ConfigError("retries must be >= 0")
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on:
            if attempt >= retries:
                raise
            if backoff > 0:
                sleep(backoff * (2**attempt))
            attempt += 1
