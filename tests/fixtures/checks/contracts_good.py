"""Checks fixture: operator contracts done right — zero findings expected.

Local ``Operator``/``SinkOp`` stubs stand in for the real bases (the
analyzer resolves subclass membership by name); ``DerivedSink`` checks
that hooks inherited from a concrete ancestor count as implemented.
"""


class Operator:
    pass


class SinkOp:
    pass


class GoodOp(Operator):
    halo = (2, 2)
    decimate = 1
    channel_halo = 0
    stream_safe = True

    def apply(self, data, ctx):
        return data


class WholeRecordOp(Operator):
    stream_safe = False
    needs_prepass = True

    def prepass_init(self):
        pass

    def prepass_update(self, chunk):
        pass

    def prepass_finalize(self):
        pass

    def apply(self, data, ctx):
        return data * ctx.total


class GoodSink(SinkOp):
    def init(self, ctx):
        pass

    def consume(self, chunk):
        pass

    def finalize(self):
        return None


class DerivedSink(GoodSink):
    def consume(self, chunk):
        pass
