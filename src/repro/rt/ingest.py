"""Spool-directory ingest: complete-file detection, work queue, quarantine.

An acquisition system writes per-minute files *in place*, so a file
that merely exists in the spool is not necessarily finished.  The
watcher admits a file only once its size has held still across
consecutive scans and its mtime has settled; files that still fail to
parse are retried a bounded number of times and then quarantined — the
service records why and keeps going, because a monitoring service that
crashes on one truncated file misses every event after it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigError

QUARANTINE_NAME = ".das_quarantine.jsonl"


@dataclass
class PendingFile:
    """A spool file seen but not yet admitted as complete."""

    size: int
    mtime: float
    stable_polls: int


class SpoolWatcher:
    """Detects *complete* new DAS files in a spool directory.

    A file is ready when its size has been identical for
    ``stable_polls`` consecutive :meth:`scan` calls **and** its mtime is
    at least ``settle_seconds`` in the past — the two heuristics cover
    both slow writers (size still growing) and fast writers caught
    mid-``close``.  Each path is announced exactly once; use
    :meth:`mark_known` on resume so already-processed files stay silent.
    """

    def __init__(
        self,
        directory: str,
        settle_seconds: float = 1.0,
        stable_polls: int = 2,
        suffix: str = ".h5",
        clock=time.time,
    ):
        if stable_polls < 1:
            raise ConfigError("stable_polls must be >= 1")
        if settle_seconds < 0:
            raise ConfigError("settle_seconds must be >= 0")
        self.directory = os.fspath(directory)
        self.settle_seconds = float(settle_seconds)
        self.stable_polls = int(stable_polls)
        self.suffix = suffix
        self.clock = clock
        self._pending: dict[str, PendingFile] = {}
        self._announced: set[str] = set()

    def mark_known(self, paths) -> None:
        """Suppress announcements for already-processed paths (resume)."""
        self._announced.update(os.fspath(p) for p in paths)

    @property
    def pending(self) -> int:
        """Files seen but not yet admitted as complete."""
        return len(self._pending)

    def scan(self) -> list[str]:
        """One poll of the spool; returns newly-complete paths in
        filename (= acquisition timestamp) order."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []
        now = self.clock()
        ready: list[str] = []
        seen_paths: set[str] = set()
        for name in names:
            if not name.endswith(self.suffix) or name.startswith("."):
                continue
            path = os.path.join(self.directory, name)
            if path in self._announced:
                continue
            seen_paths.add(path)
            try:
                st = os.stat(path)
            except OSError:
                self._pending.pop(path, None)
                continue
            rec = self._pending.get(path)
            if rec is None or rec.size != st.st_size or rec.mtime != st.st_mtime:
                self._pending[path] = PendingFile(st.st_size, st.st_mtime, 1)
                rec = self._pending[path]
            else:
                rec.stable_polls += 1
            if (
                rec.stable_polls >= self.stable_polls
                and now - st.st_mtime >= self.settle_seconds
            ):
                ready.append(path)
        for path in list(self._pending):
            if path not in seen_paths:
                del self._pending[path]  # vanished while pending
        for path in ready:
            self._announced.add(path)
            self._pending.pop(path, None)
        return ready


class WorkQueue:
    """Bounded FIFO of file paths with backpressure accounting.

    :meth:`offer` refuses items beyond ``capacity`` instead of growing
    without bound — the caller keeps refused paths in its overflow list
    and re-offers next tick, so a slow pipeline throttles ingest rather
    than exhausting memory.

    Thread-safe: the watch loop enqueues from its tick thread while a
    status endpoint (or a detached drain) may inspect depth concurrently.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ConfigError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._items: deque[str] = deque()  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.peak_depth = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, item: str) -> bool:
        """Enqueue; returns ``False`` (and counts the rejection) when full."""
        with self._lock:
            if len(self._items) >= self.capacity:
                self.rejected += 1
                return False
            self._items.append(item)
            self.peak_depth = max(self.peak_depth, len(self._items))
            return True

    def pop(self) -> str | None:
        """Dequeue the oldest item, or ``None`` when empty."""
        with self._lock:
            return self._items.popleft() if self._items else None

    def items(self) -> list[str]:
        """Snapshot of queued paths (for checkpoints and status)."""
        with self._lock:
            return list(self._items)


class Quarantine:
    """Append-only record of files the service gave up on.

    Each entry is one JSONL line in ``<spool>/.das_quarantine.jsonl``
    (``name``, ``reason``, ``attempts``, and — when the failure was an
    exception — a structured ``error`` object carrying the exception
    type and its :class:`~repro.errors.ReproError` taxonomy chain);
    quarantined names are loaded back on restart so a poison file is
    never retried across runs.  Entries written before the structured
    ``error`` field existed load fine — the field is optional on read.

    ``state_dir`` relocates the JSONL out of the spool (sharded
    deployments keep durable state on a separate volume so a vanished
    spool cannot take the quarantine record with it);
    :attr:`directory` stays the spool so :meth:`paths` still names the
    condemned files where they live.
    """

    def __init__(self, directory: str, state_dir: str | None = None):
        self.directory = os.fspath(directory)
        base = os.fspath(state_dir) if state_dir is not None else self.directory
        self.path = os.path.join(base, QUARANTINE_NAME)
        self._lock = threading.Lock()
        self.reasons: dict[str, str] = {}  # guarded-by: _lock
        self.errors: dict[str, dict | None] = {}  # guarded-by: _lock
        if os.path.exists(self.path):
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    entry = json.loads(line)
                    self.reasons[entry["name"]] = entry.get("reason", "")
                    self.errors[entry["name"]] = entry.get("error")

    def __len__(self) -> int:
        with self._lock:
            return len(self.reasons)

    def __contains__(self, path: str) -> bool:
        with self._lock:
            return os.path.basename(os.fspath(path)) in self.reasons

    def paths(self) -> list[str]:
        """Full spool paths of every quarantined name."""
        with self._lock:
            return [os.path.join(self.directory, name) for name in self.reasons]

    @staticmethod
    def describe_error(error: BaseException) -> dict:
        """The shared-taxonomy description of a failure: the concrete
        exception type plus its :class:`~repro.errors.ReproError` ancestry
        (so tooling can group quarantines by ``StorageError`` vs
        ``ConfigError`` without string-matching messages)."""
        from repro.errors import ReproError

        taxonomy = [
            klass.__name__
            for klass in type(error).__mro__
            if issubclass(klass, ReproError)
        ]
        return {
            "type": type(error).__name__,
            "taxonomy": taxonomy,
            "message": str(error),
        }

    def add(
        self,
        path: str,
        reason: str,
        attempts: int,
        error: BaseException | None = None,
    ) -> None:
        """Record one given-up file with the failure that condemned it."""
        name = os.path.basename(os.fspath(path))
        entry = {"name": name, "reason": reason, "attempts": int(attempts)}
        if error is not None:
            entry["error"] = self.describe_error(error)
        with self._lock:
            self.reasons[name] = reason
            self.errors[name] = entry.get("error")
        # The append happens outside the lock: the JSONL is a rebuild
        # log keyed by name (load() just replays it into the maps), so
        # row order across threads doesn't matter — but holding the lock
        # across file I/O would stall every reader behind the disk.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
