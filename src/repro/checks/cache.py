"""Per-module result cache + the diff-aware incremental engine.

A full run stores, per scanned module, the content digest of its source
and the findings attributed to it.  An incremental run
(``--changed-since``) then re-analyzes only modules whose digest no
longer matches (or that the cache has never seen), widened to their
reverse import closure over the project call graph's module
dependencies: a whole-program analyzer's verdict on ``a.py`` can change
when ``b.py`` (which it imports) changes, so dependents are always
re-run.  Everything else is replayed verbatim from the cache —
byte-for-byte the findings a full run would produce, because analyzers
are deterministic functions of (module content, analyzer version).

Content digests — not ``git diff <rev>`` — decide staleness: a cached
entry is valid exactly when the module's bytes match what the cache was
primed on, regardless of what git thinks changed (mtime-only touches,
reverted edits, or a cache primed mid-history would all mislead a
line-level diff).  The ``rev`` argument names the tree state the caller
*believes* the cache represents; it is recorded in the report for
humans, while the digests keep the replay correct even when that belief
is wrong.

The cache key is the *engine signature*: a hash over every registered
analyzer's ``(name, version, codes)``.  Bumping an analyzer's
``version`` (or adding/removing one) invalidates the whole cache — per
analyzer-version keying at module granularity would save little and
complicate the merge, since a full run exercises every analyzer anyway.

The cache itself is throwaway state, but it is written with the same
tmp + fsync + ``os.replace`` discipline the ATM analyzer enforces — the
checks must pass their own checks.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.callgraph import build_callgraph
from repro.checks.findings import Finding
from repro.checks.source import Project

__all__ = [
    "ResultCache", "IncrementalResult", "engine_signature", "module_digest",
    "incremental_scope", "merge_incremental", "prime_cache", "DEFAULT_CACHE",
]

DEFAULT_CACHE = ".checks_cache.json"
_SCHEMA = 1


def engine_signature(analyzers) -> str:
    """Hash of every analyzer's identity — any change invalidates."""
    spec = sorted(
        (a.name, int(getattr(a, "version", 1)), tuple(sorted(a.codes)))
        for a in analyzers
    )
    raw = json.dumps([_SCHEMA, [list(map(str, (n, v))) + [list(c)] for n, v, c in spec]])
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]


def module_digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class ResultCache:
    """``modules``: rel -> {"digest": str, "findings": [finding dicts]}."""

    path: Path
    engine: str
    modules: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path, analyzers) -> "ResultCache":
        """Load when present *and* engine-compatible; else start empty
        (a stale cache is silently discarded, never trusted)."""
        path = Path(path)
        engine = engine_signature(analyzers)
        if not path.exists():
            return cls(path=path, engine=engine)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls(path=path, engine=engine)
        if raw.get("engine") != engine:
            return cls(path=path, engine=engine)
        modules = {
            rel: entry
            for rel, entry in raw.get("modules", {}).items()
            if isinstance(entry, dict) and "digest" in entry
        }
        return cls(path=path, engine=engine, modules=modules)

    def fresh(self, rel: str, digest: str) -> bool:
        entry = self.modules.get(rel)
        return entry is not None and entry.get("digest") == digest

    def findings_for(self, rel: str) -> list[Finding]:
        entry = self.modules.get(rel, {})
        return [Finding.from_dict(d) for d in entry.get("findings", [])]

    def store(self, rel: str, digest: str, findings: list[Finding]) -> None:
        self.modules[rel] = {
            "digest": digest,
            "findings": [f.to_dict() for f in sorted(findings, key=Finding.sort_key)],
        }

    def prune(self, live: set[str]) -> None:
        """Drop entries for modules no longer in the scan set."""
        for rel in list(self.modules):
            if rel not in live:
                del self.modules[rel]

    def save(self) -> None:
        doc = {"engine": self.engine, "modules": self.modules}
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


@dataclass
class IncrementalResult:
    findings: list[Finding]
    #: modules actually re-analyzed this run (digest-changed + dependents)
    reanalyzed: list[str]
    #: modules replayed from the cache
    replayed: int


def incremental_scope(
    project: Project, cache: ResultCache
) -> tuple[set[str], set[str]]:
    """(re-analysis scope, directly-changed set) for this tree state.

    Scope is the reverse import closure of every module whose content
    digest misses the cache.  A fresh digest means the cached findings
    were computed on these exact bytes, so replaying them is sound; a
    miss (changed, new, or never-cached module) forces re-analysis of
    the module and everything that imports it.
    """
    rels = {mod.rel for mod in project.modules}
    changed: set[str] = set()
    for mod in project.modules:
        if not cache.fresh(mod.rel, module_digest(mod.text)):
            changed.add(mod.rel)
    graph = build_callgraph(project)
    scope = graph.dependents_closure(changed) & rels
    return scope, changed


def merge_incremental(
    project: Project,
    cache: ResultCache,
    fresh_findings: list[Finding],
    scope: set[str],
) -> IncrementalResult:
    """Fold freshly-computed findings for ``scope`` into the cached
    results for everything else; updates (but does not save) the cache."""
    by_rel: dict[str, list[Finding]] = {rel: [] for rel in scope}
    for finding in fresh_findings:
        by_rel.setdefault(finding.path, []).append(finding)
    findings: list[Finding] = []
    replayed = 0
    for mod in project.modules:
        if mod.rel in scope:
            fresh = by_rel.get(mod.rel, [])
            cache.store(mod.rel, module_digest(mod.text), fresh)
            findings.extend(fresh)
        else:
            findings.extend(cache.findings_for(mod.rel))
            replayed += 1
    cache.prune({mod.rel for mod in project.modules})
    return IncrementalResult(
        findings=sorted(findings, key=Finding.sort_key),
        reanalyzed=sorted(scope),
        replayed=replayed,
    )


def prime_cache(project: Project, cache: ResultCache, findings: list[Finding]) -> None:
    """After a full run: record every module's digest and findings."""
    by_rel: dict[str, list[Finding]] = {mod.rel: [] for mod in project.modules}
    for finding in findings:
        by_rel.setdefault(finding.path, []).append(finding)
    for mod in project.modules:
        cache.store(mod.rel, module_digest(mod.text), by_rel.get(mod.rel, []))
    cache.prune({mod.rel for mod in project.modules})
