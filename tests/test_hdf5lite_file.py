"""Tests for hdf5lite File/Group/Attributes and the binary layer."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.hdf5lite import File
from repro.hdf5lite.binary import FileBackend, Header
from repro.utils.iostats import IOStats


@pytest.fixture
def tmpfile(tmp_path):
    return str(tmp_path / "test.h5")


class TestFileLifecycle:
    def test_create_and_reopen_empty(self, tmpfile):
        with File(tmpfile, "w"):
            pass
        with File(tmpfile, "r") as f:
            assert f.keys() == []

    def test_mode_a_creates_then_appends(self, tmpfile):
        with File(tmpfile, "a") as f:
            f.attrs["x"] = 1
        with File(tmpfile, "a") as f:
            assert f.attrs["x"] == 1
            f.attrs["y"] = 2
        with File(tmpfile, "r") as f:
            assert f.attrs["y"] == 2

    def test_bad_mode_rejected(self, tmpfile):
        with pytest.raises(ValueError):
            File(tmpfile, "z")

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            File(str(tmp_path / "missing.h5"), "r")

    def test_not_an_hdf5lite_file(self, tmpfile):
        with open(tmpfile, "wb") as fh:
            fh.write(b"this is not the right magic value at all")
        with pytest.raises(FormatError):
            File(tmpfile, "r")

    def test_context_manager_closes(self, tmpfile):
        with File(tmpfile, "w") as f:
            pass
        assert f.closed

    def test_double_close_is_safe(self, tmpfile):
        f = File(tmpfile, "w")
        f.close()
        f.close()

    def test_readonly_rejects_writes(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=np.zeros(4))
        with File(tmpfile, "r") as f:
            with pytest.raises(FormatError):
                f.create_dataset("e", data=np.zeros(4))
            with pytest.raises(FormatError):
                f.attrs["x"] = 1
            with pytest.raises(FormatError):
                f.dataset("d")[0:2] = [1, 2]


class TestHeader:
    def test_roundtrip(self):
        h = Header(1, 1234, 567)
        assert Header.unpack(h.pack()) == h

    def test_short_header_rejected(self):
        with pytest.raises(FormatError):
            Header.unpack(b"short")


class TestBackend:
    def test_read_write_at(self, tmpfile):
        stats = IOStats()
        with FileBackend(tmpfile, "w+b", stats) as be:
            be.write_at(0, b"hello world")
            assert be.read_at(6, 5) == b"world"
        assert stats.opens == 1
        assert stats.closes == 1
        assert stats.writes == 1
        assert stats.reads == 1

    def test_short_read_raises(self, tmpfile):
        with FileBackend(tmpfile, "w+b") as be:
            be.write_at(0, b"abc")
            with pytest.raises(FormatError):
                be.read_at(0, 100)

    def test_append_returns_offset(self, tmpfile):
        with FileBackend(tmpfile, "w+b") as be:
            assert be.append(b"aaaa") == 0
            assert be.append(b"bb") == 4

    def test_sequential_reads_skip_seeks(self, tmpfile):
        stats = IOStats()
        with FileBackend(tmpfile, "w+b", stats) as be:
            be.write_at(0, b"0123456789")
            stats.reset()
            be.read_at(0, 2)
            be.read_at(2, 2)  # sequential: no extra seek
            be.read_at(8, 2)  # jump: one seek
        assert stats.seeks == 2  # initial position + the jump


class TestGroups:
    def test_nested_group_creation(self, tmpfile):
        with File(tmpfile, "w") as f:
            g = f.create_group("a/b/c")
            assert g.path == "/a/b/c"
        with File(tmpfile, "r") as f:
            assert "a" in f
            assert "a/b/c" in f
            assert f["a/b"].groups() == ["c"]

    def test_require_group_idempotent(self, tmpfile):
        with File(tmpfile, "w") as f:
            g1 = f.require_group("x")
            g2 = f.require_group("x")
            assert g1.path == g2.path

    def test_require_group_on_dataset_fails(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=np.zeros(2))
            with pytest.raises(FormatError):
                f.require_group("d")

    def test_getitem_missing_raises_keyerror(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(KeyError):
                f["nope"]

    def test_visit_lists_descendants(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.create_group("g1/g2")
            f.create_dataset("g1/d", data=np.zeros(2))
            paths = set(f.visit())
        assert paths == {"/g1", "/g1/g2", "/g1/d"}

    def test_keys_sorted_union(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.create_group("zebra")
            f.create_dataset("alpha", data=np.zeros(1))
            assert f.keys() == ["alpha", "zebra"]

    def test_len_and_iter(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.create_group("a")
            f.create_dataset("b", data=np.zeros(1))
            assert len(f) == 2
            assert list(f) == ["a", "b"]

    def test_duplicate_dataset_rejected(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.create_dataset("d", data=np.zeros(1))
            with pytest.raises(FormatError):
                f.create_dataset("d", data=np.zeros(1))

    def test_invalid_path_component(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.create_group("a/../b")


class TestAttributes:
    def test_scalar_roundtrip(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.attrs["SamplingFrequency(HZ)"] = 500
            f.attrs["SpatialResolution(m)"] = 2.0
            f.attrs["TimeStamp(yymmddhhmmss)"] = "170620100545"
            f.attrs["flag"] = True
        with File(tmpfile, "r") as f:
            assert f.attrs["SamplingFrequency(HZ)"] == 500
            assert f.attrs["SpatialResolution(m)"] == 2.0
            assert f.attrs["TimeStamp(yymmddhhmmss)"] == "170620100545"
            assert f.attrs["flag"] is True

    def test_numpy_scalars_coerced(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.attrs["n"] = np.int64(11648)
            f.attrs["x"] = np.float32(1.5)
        with File(tmpfile, "r") as f:
            assert f.attrs["n"] == 11648
            assert isinstance(f.attrs["n"], int)

    def test_list_and_1d_array(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.attrs["lst"] = [1, 2, 3]
            f.attrs["arr"] = np.array([4.0, 5.0])
        with File(tmpfile, "r") as f:
            assert f.attrs["lst"] == [1, 2, 3]
            assert f.attrs["arr"] == [4.0, 5.0]

    def test_2d_array_rejected(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.attrs["bad"] = np.zeros((2, 2))

    def test_unstorable_rejected(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.attrs["bad"] = object()

    def test_non_string_key_rejected(self, tmpfile):
        with File(tmpfile, "w") as f:
            with pytest.raises(FormatError):
                f.attrs[3] = "x"

    def test_delete(self, tmpfile):
        with File(tmpfile, "w") as f:
            f.attrs["x"] = 1
            del f.attrs["x"]
            assert "x" not in f.attrs

    def test_dataset_attrs_persist(self, tmpfile):
        with File(tmpfile, "w") as f:
            ds = f.create_dataset("d", data=np.zeros(3))
            ds.attrs["Number of raw data values"] = 45
        with File(tmpfile, "r") as f:
            assert f.dataset("d").attrs["Number of raw data values"] == 45

    def test_group_attrs_persist(self, tmpfile):
        with File(tmpfile, "w") as f:
            g = f.create_group("Measurement/1")
            g.attrs["Array dimension"] = 1
        with File(tmpfile, "r") as f:
            assert f["Measurement/1"].attrs["Array dimension"] == 1


class TestDasMetadataLayout:
    """The two-level KV metadata structure of the paper's Fig. 4."""

    def test_fig4_structure(self, tmpfile):
        n_channels = 16
        with File(tmpfile, "w") as f:
            f.attrs["SamplingFrequency(HZ)"] = 500
            f.attrs["SpatialResolution(m)"] = 2
            f.attrs["TimeStamp(yymmddhhmmss)"] = "170620100545"
            f.attrs["Number of objects"] = n_channels
            for ch in range(1, n_channels + 1):
                g = f.create_group(f"Measurement/{ch}")
                g.attrs["Array dimension"] = 1
                g.attrs["Number of raw data values"] = 45
            f.create_dataset("DataCT", data=np.zeros((n_channels, 45), dtype=np.float32))
        with File(tmpfile, "r") as f:
            assert f.attrs["Number of objects"] == n_channels
            assert len(f["Measurement"]) == n_channels
            assert f.dataset("DataCT").shape == (n_channels, 45)
            assert f["Measurement/7"].attrs["Number of raw data values"] == 45
