"""Butterworth IIR filter design, from scratch.

Pipeline (the classic analog-prototype route MATLAB's ``butter`` uses):

1. analog lowpass prototype poles on the unit circle,
2. frequency transform in zero-pole-gain form
   (``lp2lp`` / ``lp2hp`` / ``lp2bp`` / ``lp2bs``) with pre-warped
   frequencies,
3. bilinear transform to the z-domain,
4. conversion to transfer-function ``(b, a)`` coefficients.
"""

from __future__ import annotations

import numpy as np

_BTYPES = {
    "low": "low",
    "lowpass": "low",
    "high": "high",
    "highpass": "high",
    "band": "bandpass",
    "bandpass": "bandpass",
    "stop": "bandstop",
    "bandstop": "bandstop",
}


def buttap(order: int) -> tuple[np.ndarray, np.ndarray, float]:
    """Analog Butterworth lowpass prototype: (zeros, poles, gain)."""
    if order < 1:
        raise ValueError("filter order must be >= 1")
    k = np.arange(1, order + 1)
    theta = np.pi * (2 * k + order - 1) / (2 * order)
    poles = np.exp(1j * theta)
    return np.zeros(0, dtype=complex), poles, 1.0


def _lp2lp(z: np.ndarray, p: np.ndarray, k: float, wo: float):
    degree = len(p) - len(z)
    return z * wo, p * wo, k * wo**degree


def _lp2hp(z: np.ndarray, p: np.ndarray, k: float, wo: float):
    degree = len(p) - len(z)
    z_hp = wo / z if len(z) else np.zeros(0, dtype=complex)
    p_hp = wo / p
    z_hp = np.append(z_hp, np.zeros(degree))
    k_hp = k * np.real(np.prod(-z) / np.prod(-p)) if len(z) else k * np.real(
        1.0 / np.prod(-p)
    )
    return z_hp, p_hp, k_hp


def _lp2bp(z: np.ndarray, p: np.ndarray, k: float, wo: float, bw: float):
    degree = len(p) - len(z)
    z_lp = z * bw / 2
    p_lp = p * bw / 2
    z_bp = np.concatenate(
        [z_lp + np.sqrt(z_lp**2 - wo**2), z_lp - np.sqrt(z_lp**2 - wo**2)]
    ) if len(z) else np.zeros(0, dtype=complex)
    p_bp = np.concatenate(
        [p_lp + np.sqrt(p_lp**2 - wo**2), p_lp - np.sqrt(p_lp**2 - wo**2)]
    )
    z_bp = np.append(z_bp, np.zeros(degree))
    return z_bp, p_bp, k * bw**degree


def _lp2bs(z: np.ndarray, p: np.ndarray, k: float, wo: float, bw: float):
    degree = len(p) - len(z)
    z_hp = (bw / 2) / z if len(z) else np.zeros(0, dtype=complex)
    p_hp = (bw / 2) / p
    z_bs = np.concatenate(
        [z_hp + np.sqrt(z_hp**2 - wo**2), z_hp - np.sqrt(z_hp**2 - wo**2)]
    ) if len(z) else np.zeros(0, dtype=complex)
    p_bs = np.concatenate(
        [p_hp + np.sqrt(p_hp**2 - wo**2), p_hp - np.sqrt(p_hp**2 - wo**2)]
    )
    z_bs = np.append(z_bs, np.full(degree, 1j * wo))
    z_bs = np.append(z_bs, np.full(degree, -1j * wo))
    num = np.prod(-z) if len(z) else 1.0
    k_bs = k * np.real(num / np.prod(-p))
    return z_bs, p_bs, k_bs


def bilinear_zpk(
    z: np.ndarray, p: np.ndarray, k: float, fs: float
) -> tuple[np.ndarray, np.ndarray, float]:
    """Bilinear (Tustin) transform of an analog zpk system."""
    degree = len(p) - len(z)
    if degree < 0:
        raise ValueError("improper transfer function (more zeros than poles)")
    fs2 = 2.0 * fs
    z_d = (fs2 + z) / (fs2 - z)
    p_d = (fs2 + p) / (fs2 - p)
    z_d = np.append(z_d, -np.ones(degree))
    num = np.prod(fs2 - z) if len(z) else 1.0
    k_d = k * np.real(num / np.prod(fs2 - p))
    return z_d, p_d, k_d


def zpk2tf(z: np.ndarray, p: np.ndarray, k: float) -> tuple[np.ndarray, np.ndarray]:
    """Zero-pole-gain → transfer-function coefficients (real-valued)."""
    b = k * np.poly(z) if len(z) else np.atleast_1d(k).astype(complex)
    a = np.poly(p)
    b = np.atleast_1d(b)
    a = np.atleast_1d(a)
    # Complex conjugate root sets produce real polynomials up to rounding.
    if np.allclose(b.imag, 0, atol=1e-10 * max(1.0, np.abs(b).max())):
        b = b.real
    if np.allclose(a.imag, 0, atol=1e-10 * max(1.0, np.abs(a).max())):
        a = a.real
    return np.asarray(b, dtype=np.float64), np.asarray(a, dtype=np.float64)


def butter(
    order: int,
    cutoff: float | tuple[float, float] | list[float] | np.ndarray,
    btype: str = "low",
    fs: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Digital Butterworth design (MATLAB/`Das_butter` semantics).

    ``cutoff`` is in half-cycles/sample (0..1 with 1 = Nyquist) unless
    ``fs`` is given, in which case it is in Hz.  Band filters take a
    ``(low, high)`` pair.  Returns ``(b, a)``.
    """
    try:
        kind = _BTYPES[btype.lower()]
    except KeyError:
        raise ValueError(f"unknown btype {btype!r}") from None

    wn = np.atleast_1d(np.asarray(cutoff, dtype=np.float64))
    if fs is not None:
        wn = 2.0 * wn / fs
    if np.any(wn <= 0) or np.any(wn >= 1):
        raise ValueError(
            f"cutoff must lie strictly inside (0, Nyquist); got {cutoff!r}"
        )

    z, p, k = buttap(order)
    fs_design = 2.0
    warped = 2 * fs_design * np.tan(np.pi * wn / fs_design)

    if kind in ("low", "high"):
        if wn.size != 1:
            raise ValueError(f"{kind}pass takes a single cutoff")
        wo = float(warped[0])
        z, p, k = (_lp2lp if kind == "low" else _lp2hp)(z, p, k, wo)
    else:
        if wn.size != 2 or wn[0] >= wn[1]:
            raise ValueError(f"{kind} takes an increasing (low, high) pair")
        bw = float(warped[1] - warped[0])
        wo = float(np.sqrt(warped[0] * warped[1]))
        z, p, k = (_lp2bp if kind == "bandpass" else _lp2bs)(z, p, k, wo, bw)

    z, p, k = bilinear_zpk(z, p, k, fs_design)
    return zpk2tf(z, p, k)
